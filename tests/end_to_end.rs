//! Cross-crate integration: the facade crate drives full experiments and
//! the physical invariants hold for every strategy.

use brb::core::config::{ExperimentConfig, SelectorKind, Strategy};
use brb::core::engine::EngineWorld;
use brb::core::experiment::run_experiment;
use brb::lab::registry;
use brb::sched::PolicyKind;
use brb::sim::Simulation;

fn small(strategy: Strategy, seed: u64, tasks: usize) -> ExperimentConfig {
    registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(tasks)
        .build_config(strategy, seed)
        .expect("valid scenario")
}

/// Every strategy (paper five + representative ablations) completes all
/// tasks and reports internally-consistent percentiles.
#[test]
fn all_strategies_complete_and_report_consistently() {
    let mut strategies = Strategy::figure2_set();
    strategies.push(Strategy::Direct {
        selector: SelectorKind::Random,
        policy: PolicyKind::Fifo,
        priority_queues: false,
    });
    strategies.push(Strategy::Direct {
        selector: SelectorKind::Oracle,
        policy: PolicyKind::EqualMax,
        priority_queues: true,
    });
    strategies.push(Strategy::Direct {
        selector: SelectorKind::LeastOutstanding,
        policy: PolicyKind::Edf,
        priority_queues: true,
    });
    for (i, strategy) in strategies.into_iter().enumerate() {
        let name = strategy.name();
        let r = run_experiment(small(strategy, 100 + i as u64, 1_200));
        assert_eq!(r.completed_tasks, 1_200, "{name}");
        assert!(r.task_latency_ms.p50 <= r.task_latency_ms.p95, "{name}");
        assert!(r.task_latency_ms.p95 <= r.task_latency_ms.p99, "{name}");
        assert!(r.task_latency_ms.p99 <= r.task_latency_ms.max, "{name}");
        // Physical floor: a task needs at least one network round trip.
        assert!(
            r.task_latency_ms.p50 >= 0.1,
            "{name}: p50 {} below network RTT",
            r.task_latency_ms.p50
        );
        assert!(r.utilization > 0.0 && r.utilization < 1.0, "{name}");
    }
}

/// A task's latency can never be below the 100µs round trip; check the
/// histogram minimum, not just the median.
#[test]
fn no_task_beats_the_network() {
    let world = EngineWorld::new(small(Strategy::equal_max_model(), 5, 2_000));
    let mut sim = Simulation::new(world);
    EngineWorld::prime(&mut sim);
    sim.run();
    let w = sim.world();
    assert!(w.is_finished());
    // min() reports the smallest recorded task latency in ns.
    assert!(
        w.task_latency.min() >= 100_000,
        "min task latency {}ns below the 2x50µs floor",
        w.task_latency.min()
    );
}

/// Identical seeds reproduce identical latency distributions end-to-end
/// (the property the paper's 6-seed methodology depends on).
#[test]
fn experiments_are_deterministic() {
    for strategy in [Strategy::c3(), Strategy::equal_max_credits()] {
        let a = run_experiment(small(strategy.clone(), 77, 1_500));
        let b = run_experiment(small(strategy, 77, 1_500));
        assert_eq!(a.task_latency_ms.p50, b.task_latency_ms.p50);
        assert_eq!(a.task_latency_ms.p99, b.task_latency_ms.p99);
        assert_eq!(a.events, b.events);
        assert_eq!(a.dispatched, b.dispatched);
    }
}

/// Common random numbers: under one seed, every strategy faces the exact
/// same trace (same request count), so differences are attributable to
/// scheduling alone.
#[test]
fn strategies_share_the_trace_under_a_seed() {
    let dispatched: Vec<u64> = Strategy::figure2_set()
        .into_iter()
        .map(|s| run_experiment(small(s, 3, 1_000)).dispatched)
        .collect();
    assert!(
        dispatched.windows(2).all(|w| w[0] == w[1]),
        "request counts diverged: {dispatched:?}"
    );
}

/// Results serialize to JSON and back (the bench harness depends on it).
#[test]
fn results_round_trip_json() {
    let r = run_experiment(small(Strategy::unif_incr_model(), 9, 800));
    let json = serde_json::to_string(&r).unwrap();
    let back: brb::core::experiment::RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.strategy, r.strategy);
    assert_eq!(back.task_latency_ms.p99, r.task_latency_ms.p99);
}
