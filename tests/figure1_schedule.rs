//! Integration test pinning the paper's Figure 1 worked example.

use brb_bench::figure1::{run_figure1, verify_figure1};
use brb_sched::PolicyKind;

#[test]
fn figure1_reproduces_exactly() {
    verify_figure1().expect("figure 1 claims");
}

#[test]
fn task_oblivious_delays_t2() {
    let o = run_figure1(PolicyKind::Fifo);
    assert_eq!((o.t1_completion, o.t2_completion), (2, 2));
}

#[test]
fn both_brb_policies_find_the_optimal_schedule() {
    for policy in [PolicyKind::EqualMax, PolicyKind::UnifIncr] {
        let o = run_figure1(policy);
        assert_eq!(
            (o.t1_completion, o.t2_completion),
            (2, 1),
            "{policy:?} must reach the paper's optimum"
        );
    }
}

#[test]
fn sjf_alone_also_solves_figure1_but_for_a_different_reason() {
    // Per-request SJF ties everything (all ops cost 1) and falls back to
    // FIFO insertion order — demonstrating that *task* structure, not
    // request cost, is what saves T2 here.
    let o = run_figure1(PolicyKind::Sjf);
    assert_eq!(o.t2_completion, 2, "size-only SJF cannot exploit slack");
}
