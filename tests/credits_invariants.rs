//! Integration invariants of the credits realization: the controller, the
//! demand loop and the client-side gating.

use brb::core::config::{ExperimentConfig, Strategy};
use brb::core::experiment::run_experiment;
use brb::lab::registry;
use brb::sched::{CreditsConfig, PolicyKind};

fn small(strategy: Strategy, seed: u64, tasks: usize) -> ExperimentConfig {
    registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(tasks)
        .build_config(strategy, seed)
        .expect("valid scenario")
}

fn credits_cfg(adapt_secs: f64) -> Strategy {
    Strategy::Credits {
        policy: PolicyKind::EqualMax,
        credits: CreditsConfig {
            adaptation_interval_ns: (adapt_secs * 1e9) as u64,
            ..Default::default()
        },
    }
}

/// The control loop actually runs: demand reports scale with clients ×
/// measurement windows, and grants are delivered each epoch.
#[test]
fn control_loop_traffic_scales_with_time() {
    let r = run_experiment(small(Strategy::equal_max_credits(), 1, 25_000));
    // ~2.4s of virtual time → ≥20 measurement windows × 18 clients, minus
    // the tail after completion.
    assert!(
        r.demand_reports >= 18 * 15,
        "only {} demand reports",
        r.demand_reports
    );
    assert!(r.sim_secs > 2.0, "{}", r.sim_secs);
}

/// A pathologically slow controller (10s adaptation on a ~2.5s run, so
/// grants never refresh) must still complete every task — the min-rate
/// floor and initial fair-share buckets guarantee progress.
#[test]
fn slow_controller_cannot_deadlock_the_system() {
    let r = run_experiment(small(credits_cfg(10.0), 2, 20_000));
    assert_eq!(r.completed_tasks, 20_000);
}

/// Faster adaptation should not be catastrophically worse than the
/// paper's 1s (sanity on the control loop's stability).
#[test]
fn fast_adaptation_remains_stable() {
    let slow = run_experiment(small(credits_cfg(1.0), 3, 20_000));
    let fast = run_experiment(small(credits_cfg(0.25), 3, 20_000));
    assert_eq!(fast.completed_tasks, slow.completed_tasks);
    assert!(
        fast.task_latency_ms.p99 < slow.task_latency_ms.p99 * 3.0,
        "0.25s adaptation p99 {:.2} vs 1s {:.2}",
        fast.task_latency_ms.p99,
        slow.task_latency_ms.p99
    );
}

/// Under heavy overload (120% of capacity) the credits system sheds the
/// excess into client hold queues but still finishes the bounded trace,
/// and congestion signals fire.
#[test]
fn overload_triggers_congestion_and_still_drains() {
    let cfg = registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(15_000)
        .load(1.2)
        .build_config(Strategy::equal_max_credits(), 4)
        .expect("valid scenario");
    let r = run_experiment(cfg);
    assert_eq!(r.completed_tasks, 15_000);
    assert!(
        r.congestion_signals > 0,
        "overload must raise congestion signals"
    );
    // Overload latencies must dwarf the 70%-load ones.
    assert!(r.task_latency_ms.p99 > 5.0);
}
