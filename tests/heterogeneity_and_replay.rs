//! Integration tests for the heterogeneity extension (per-server speed
//! factors) and the trace-replay path.

use brb::core::config::{ExperimentConfig, SelectorKind, Strategy};
use brb::core::experiment::{run_experiment, run_experiment_on_trace};
use brb::sched::PolicyKind;
use brb::sim::RngFactory;
use brb::workload::soundcloud::{SoundCloudConfig, SoundCloudModel};
use brb::workload::Trace;

/// A degraded server hurts a non-adaptive strategy more than an adaptive
/// one (directionally, at modest scale).
#[test]
fn adaptive_strategies_absorb_a_slow_server() {
    let run = |strategy: Strategy| {
        let mut cfg = ExperimentConfig::figure2_small(strategy, 11, 12_000);
        cfg.cluster.server_speed_factors = vec![0.4]; // server 0 at 40%
        cfg.workload.load = 0.6;
        run_experiment(cfg)
    };
    let random = run(Strategy::Direct {
        selector: SelectorKind::Random,
        policy: PolicyKind::Fifo,
        priority_queues: false,
    });
    let model = run(Strategy::equal_max_model());
    assert_eq!(random.completed_tasks, 12_000);
    assert_eq!(model.completed_tasks, 12_000);
    assert!(
        model.task_latency_ms.p99 < random.task_latency_ms.p99,
        "work-pulling must absorb the slow server: model {:.2} vs random {:.2}",
        model.task_latency_ms.p99,
        random.task_latency_ms.p99
    );
}

/// Speed factors below 1 strictly increase latencies vs the homogeneous
/// cluster under the same seed (common random numbers).
#[test]
fn slow_server_costs_latency_under_common_random_numbers() {
    let base = ExperimentConfig::figure2_small(Strategy::c3(), 21, 10_000);
    let healthy = run_experiment(base.clone());
    let mut degraded_cfg = base;
    degraded_cfg.cluster.server_speed_factors = vec![0.4];
    let degraded = run_experiment(degraded_cfg);
    assert!(
        degraded.task_latency_ms.p99 > healthy.task_latency_ms.p99,
        "degraded {:.2} must exceed healthy {:.2}",
        degraded.task_latency_ms.p99,
        healthy.task_latency_ms.p99
    );
}

/// Config validation rejects nonsense speed factors.
#[test]
fn speed_factor_validation() {
    let mut cfg = ExperimentConfig::figure2_small(Strategy::c3(), 1, 100);
    cfg.cluster.server_speed_factors = vec![0.0];
    assert!(cfg.validate().is_err());
    cfg.cluster.server_speed_factors = vec![1.0; 99];
    assert!(cfg.validate().is_err());
    cfg.cluster.server_speed_factors = vec![0.5, 1.0, 2.0];
    assert!(cfg.validate().is_ok());
}

/// A trace written to JSONL and read back replays bit-identically: the
/// replayed run equals the generated run under the same seed.
#[test]
fn replayed_trace_matches_generated_run() {
    let factory = RngFactory::new(33);
    let model = SoundCloudModel::build(
        SoundCloudConfig {
            num_tracks: 20_000,
            num_playlists: 2_000,
            ..Default::default()
        },
        &mut factory.stream("catalog"),
    );
    let trace = model.generate_trace(5_000, 8_000.0, &mut factory.stream("trace"));

    // Round-trip through the serialized format.
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let reloaded = Trace::read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(trace, reloaded);

    let cfg = ExperimentConfig::figure2_small(Strategy::equal_max_credits(), 33, 5_000);
    let a = run_experiment_on_trace(cfg.clone(), trace.tasks);
    let b = run_experiment_on_trace(cfg, reloaded.tasks);
    assert_eq!(a.task_latency_ms.p99, b.task_latency_ms.p99);
    assert_eq!(a.events, b.events);
    assert_eq!(a.completed_tasks, 5_000);
}

/// Replay rejects malformed traces loudly.
#[test]
#[should_panic(expected = "ordered by arrival")]
fn replay_rejects_unordered_traces() {
    use brb::workload::taskgen::{RequestSpec, TaskSpec};
    let bad = vec![
        TaskSpec {
            id: 0,
            arrival_ns: 100,
            requests: vec![RequestSpec {
                key: 1,
                value_bytes: 10,
            }],
        },
        TaskSpec {
            id: 1,
            arrival_ns: 50,
            requests: vec![RequestSpec {
                key: 2,
                value_bytes: 10,
            }],
        },
    ];
    let cfg = ExperimentConfig::figure2_small(Strategy::c3(), 1, 2);
    let _ = run_experiment_on_trace(cfg, bad);
}
