//! Integration tests for the heterogeneity extension (per-server speed
//! factors) and the trace-replay path, driven through the scenario API.

use brb::core::config::{SelectorKind, Strategy};
use brb::core::experiment::{run_experiment, run_experiment_on_trace};
use brb::lab::{registry, ScenarioBuilder, ScenarioError};
use brb::sched::PolicyKind;
use brb::sim::RngFactory;
use brb::workload::soundcloud::{SoundCloudConfig, SoundCloudModel};
use brb::workload::Trace;

/// A degraded server hurts a non-adaptive strategy more than an adaptive
/// one (directionally, at modest scale).
#[test]
fn adaptive_strategies_absorb_a_slow_server() {
    let run = |strategy: Strategy| {
        let cfg = ScenarioBuilder::new("slow-server")
            .tasks(12_000)
            .scale_catalog(true)
            .load(0.6)
            .degrade_server(0, 0.4)
            .build_config(strategy, 11)
            .expect("valid scenario");
        run_experiment(cfg)
    };
    let random = run(Strategy::Direct {
        selector: SelectorKind::Random,
        policy: PolicyKind::Fifo,
        priority_queues: false,
    });
    let model = run(Strategy::equal_max_model());
    assert_eq!(random.completed_tasks, 12_000);
    assert_eq!(model.completed_tasks, 12_000);
    assert!(
        model.task_latency_ms.p99 < random.task_latency_ms.p99,
        "work-pulling must absorb the slow server: model {:.2} vs random {:.2}",
        model.task_latency_ms.p99,
        random.task_latency_ms.p99
    );
}

/// Speed factors below 1 strictly increase latencies vs the homogeneous
/// cluster under the same seed (common random numbers).
#[test]
fn slow_server_costs_latency_under_common_random_numbers() {
    let base = |b: ScenarioBuilder| b.tasks(10_000).scale_catalog(true);
    let healthy = run_experiment(
        base(ScenarioBuilder::new("healthy"))
            .build_config(Strategy::c3(), 21)
            .expect("valid scenario"),
    );
    let degraded = run_experiment(
        base(ScenarioBuilder::new("degraded"))
            .degrade_server(0, 0.4)
            .build_config(Strategy::c3(), 21)
            .expect("valid scenario"),
    );
    assert!(
        degraded.task_latency_ms.p99 > healthy.task_latency_ms.p99,
        "degraded {:.2} must exceed healthy {:.2}",
        degraded.task_latency_ms.p99,
        healthy.task_latency_ms.p99
    );
}

/// The builder rejects nonsense speed factors with *typed* errors —
/// regression coverage for the silently-accepted shapes (too many
/// factors, non-positive or non-finite entries).
#[test]
fn speed_factor_validation_is_typed() {
    let build = |factors: Vec<f64>| {
        ScenarioBuilder::new("factors")
            .tasks(100)
            .scale_catalog(true)
            .speed_factors(factors)
            .build_config(Strategy::c3(), 1)
    };
    assert_eq!(
        build(vec![0.0]).unwrap_err(),
        ScenarioError::BadSpeedFactor {
            server: 0,
            speed: 0.0
        }
    );
    assert_eq!(
        build(vec![1.0, -2.0]).unwrap_err(),
        ScenarioError::BadSpeedFactor {
            server: 1,
            speed: -2.0
        }
    );
    assert_eq!(
        build(vec![1.0, f64::INFINITY]).unwrap_err(),
        ScenarioError::BadSpeedFactor {
            server: 1,
            speed: f64::INFINITY
        }
    );
    assert!(matches!(
        build(vec![f64::NAN]).unwrap_err(),
        ScenarioError::BadSpeedFactor { server: 0, .. }
    ));
    // A factors vector longer than the cluster.
    assert_eq!(
        build(vec![1.0; 99]).unwrap_err(),
        ScenarioError::SpeedFactorCount {
            given: 99,
            num_servers: 9
        }
    );
    assert!(build(vec![0.5, 1.0, 2.0]).is_ok());

    // The same shapes are also rejected by the core config layer (the
    // path spec files lowered through before the builder existed).
    let mut cfg = build(vec![]).unwrap();
    cfg.cluster.server_speed_factors = vec![f64::INFINITY];
    assert!(
        cfg.validate().is_err(),
        "core must reject non-finite factors"
    );
    cfg.cluster.server_speed_factors = vec![1.0; 99];
    assert!(
        cfg.validate().is_err(),
        "core must reject oversized factor vectors"
    );
}

/// A trace written to JSONL and read back replays bit-identically: the
/// replayed run equals the generated run under the same seed.
#[test]
fn replayed_trace_matches_generated_run() {
    let factory = RngFactory::new(33);
    let model = SoundCloudModel::build(
        SoundCloudConfig {
            num_tracks: 20_000,
            num_playlists: 2_000,
            ..Default::default()
        },
        &mut factory.stream("catalog"),
    );
    let trace = model.generate_trace(5_000, 8_000.0, &mut factory.stream("trace"));

    // Round-trip through the serialized format.
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let reloaded = Trace::read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(trace, reloaded);

    let cfg = registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(5_000)
        .build_config(Strategy::equal_max_credits(), 33)
        .expect("valid scenario");
    let a = run_experiment_on_trace(cfg.clone(), trace.tasks);
    let b = run_experiment_on_trace(cfg, reloaded.tasks);
    assert_eq!(a.task_latency_ms.p99, b.task_latency_ms.p99);
    assert_eq!(a.events, b.events);
    assert_eq!(a.completed_tasks, 5_000);
}

/// Replay rejects malformed traces loudly.
#[test]
#[should_panic(expected = "ordered by arrival")]
fn replay_rejects_unordered_traces() {
    use brb::workload::taskgen::{RequestSpec, TaskSpec};
    let bad = vec![
        TaskSpec {
            id: 0,
            arrival_ns: 100,
            requests: vec![RequestSpec {
                key: 1,
                value_bytes: 10,
            }],
        },
        TaskSpec {
            id: 1,
            arrival_ns: 50,
            requests: vec![RequestSpec {
                key: 2,
                value_bytes: 10,
            }],
        },
    ];
    let cfg = registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(2)
        .build_config(Strategy::c3(), 1)
        .expect("valid scenario");
    let _ = run_experiment_on_trace(cfg, bad);
}
