//! Property-based tests over the whole system: random (but sane) cluster
//! and workload shapes must preserve the engine's invariants for every
//! realization.

use brb::core::config::{SelectorKind, Strategy, WorkloadKind};
use brb::core::experiment::run_experiment;
use brb::lab::ScenarioBuilder;
use brb::sched::PolicyKind;
use brb::workload::FanoutDist;
use proptest::prelude::*;

fn strategy_strategy() -> impl proptest::strategy::Strategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::c3()),
        Just(Strategy::equal_max_credits()),
        Just(Strategy::equal_max_model()),
        Just(Strategy::unif_incr_credits()),
        Just(Strategy::unif_incr_model()),
        Just(Strategy::Direct {
            selector: SelectorKind::LeastOutstanding,
            policy: PolicyKind::Sjf,
            priority_queues: true,
        }),
        Just(Strategy::Direct {
            selector: SelectorKind::Random,
            policy: PolicyKind::Fifo,
            priority_queues: false,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // whole-system runs are expensive; keep the sweep tight
        .. ProptestConfig::default()
    })]

    /// Any sane configuration completes every task with ordered
    /// percentiles above the physical latency floor.
    #[test]
    fn any_sane_config_completes(
        strategy in strategy_strategy(),
        seed in 0u64..1_000,
        load in 0.2f64..0.85,
        clients in 2u32..24,
        servers in 3u32..12,
        cores in 1u32..6,
        replication in 1u32..4,
        fixed_fanout in 1u32..24,
    ) {
        let cfg = ScenarioBuilder::new("system-props")
            .tasks(400)
            .load(load)
            .clients(clients)
            .servers(servers)
            .partitions(servers)
            .cores(cores)
            .replication(replication.min(servers))
            .workload_kind(WorkloadKind::Synthetic {
                fanout: FanoutDist::Fixed(fixed_fanout),
                num_keys: 20_000,
                zipf_exponent: 0.9,
            })
            .build_config(strategy, seed);
        prop_assume!(cfg.is_ok());
        let cfg = cfg.unwrap();

        let r = run_experiment(cfg);
        prop_assert_eq!(r.completed_tasks, 400);
        prop_assert!(r.task_latency_ms.p50 <= r.task_latency_ms.p99);
        // Nothing beats one network round trip (0.1 ms).
        prop_assert!(r.task_latency_ms.p50 >= 0.1);
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        prop_assert_eq!(r.dispatched, 400 * fixed_fanout as u64);
    }
}
