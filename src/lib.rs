//! # brb — BetteR Batch scheduling for cloud data stores
//!
//! Facade crate re-exporting the whole workspace. Reproduction of
//! *BRB: BetteR Batch Scheduling to Reduce Tail Latencies in Cloud Data
//! Stores* (Reda, Suresh, Canini, Braithwaite — ACM SIGCOMM 2015).
//!
//! See the `README.md` for an architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `brb-sim` | deterministic discrete-event simulation kernel |
//! | [`metrics`] | `brb-metrics` | histograms, percentiles, summaries |
//! | [`workload`] | `brb-workload` | Pareto/Zipf/Poisson generators, traces |
//! | [`net`] | `brb-net` | simulated network fabric |
//! | [`store`] | `brb-store` | partitioning, service models, KV store |
//! | [`sched`] | `brb-sched` | EqualMax/UnifIncr policies, queues, credits |
//! | [`select`] | `brb-select` | replica selection incl. the C3 baseline |
//! | [`core`] | `brb-core` | the BRB engine and experiment runner |
//! | [`lab`] | `brb-lab` | declarative scenarios: specs, builder, registry, reports |
//! | [`rt`] | `brb-rt` | real-time threaded runtime |

pub use brb_core as core;
pub use brb_lab as lab;
pub use brb_metrics as metrics;
pub use brb_net as net;
pub use brb_rt as rt;
pub use brb_sched as sched;
pub use brb_select as select;
pub use brb_sim as sim;
pub use brb_store as store;
pub use brb_workload as workload;
