//! The declarative scenario pipeline end-to-end: load a hand-written
//! TOML spec, lower its sweep grid, run it, and emit the JSON-lines
//! report — everything `brb-lab run specs/load-sweep.toml` does, as
//! library calls.
//!
//! ```text
//! cargo run --release --example scenario_lab [-- --tasks N]
//! ```

use brb::lab::{report, runner, ScenarioSpec};

fn main() {
    let mut num_tasks = 6_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tasks" {
            num_tasks = args.next().unwrap().parse().expect("--tasks N");
        }
    }

    // 1. A scenario is a file, not code.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/load-sweep.toml");
    let mut spec = ScenarioSpec::load(path).expect("parse spec file");
    spec.workload.num_tasks = num_tasks; // same override `--tasks` applies
    spec.validate().expect("valid scenario");
    println!(
        "loaded {:?} from {path}:\n  {}\n  {} strategies x {} seeds, sweeping load over {:?}\n",
        spec.name,
        spec.description,
        spec.strategies.len(),
        spec.seeds.len(),
        spec.sweep.load
    );

    // 2. The sweep axes lower to a grid of concrete experiment cells...
    let cells = spec.lower().expect("lowerable scenario");
    println!(
        "lowered to {} cells; cell 0 runs {} tasks at load {}\n",
        cells.len(),
        cells[0].base.workload.num_tasks,
        cells[0].base.workload.load
    );

    // 3. ...which the parallel multi-seed runner executes cell by cell.
    let results = runner::run_spec(&spec).expect("scenario runs");
    print!("{}", report::render_table(&results));

    // 4. Reports are stable JSON lines: header + one line per
    //    (cell x strategy); pipe them to a file with `--out`.
    let jsonl = report::to_jsonl_string(&spec, &results);
    let header = jsonl.lines().next().unwrap();
    println!(
        "\nreport: {} lines, header starts {}...",
        jsonl.lines().count(),
        &header[..header.len().min(100)]
    );
}
