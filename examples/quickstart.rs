//! Quickstart: simulate a BRB cluster and print task latency percentiles.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Pulls the `figure2-small` scenario from the registry (the paper's
//! cluster — 18 clients, 9 servers × 4 cores, 50 µs network — at reduced
//! trace size), runs the practical BRB system (EqualMax priorities
//! through the credits realization) and reports the percentile triple
//! the paper plots. The same scenario is available from the shell:
//! `cargo run --release -p brb-lab -- run figure2-small`.

use brb::core::config::Strategy;
use brb::core::experiment::run_experiment;
use brb::lab::registry;

fn main() {
    // One seeded run, 30k tasks (the full paper scale is 500k; see the
    // `figure2` preset / binary for that).
    let config = registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(30_000)
        .build_config(Strategy::equal_max_credits(), 42)
        .expect("valid scenario");
    println!(
        "cluster : {} clients, {} servers x {} cores @ {:.0} req/s/core",
        config.cluster.num_clients,
        config.cluster.num_servers,
        config.cluster.cores_per_server,
        config.cluster.service_rate_per_core
    );
    println!(
        "workload: {} tasks, mean fan-out {:.1}, {:.0}% of capacity",
        config.workload.num_tasks,
        config.workload.mean_fanout(),
        config.workload.load * 100.0
    );
    println!("strategy: {}\n", config.strategy.name());

    let result = run_experiment(config);

    println!("task latency (ms):");
    println!("  median : {:>7.2}", result.task_latency_ms.p50);
    println!("  95th   : {:>7.2}", result.task_latency_ms.p95);
    println!("  99th   : {:>7.2}", result.task_latency_ms.p99);
    println!("  mean   : {:>7.2}", result.task_latency_ms.mean);
    println!();
    println!(
        "completed {} tasks over {:.2}s of virtual time ({} events, {:.0}% server utilization)",
        result.completed_tasks,
        result.sim_secs,
        result.events,
        result.utilization * 100.0
    );
}
