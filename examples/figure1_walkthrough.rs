//! A narrated walkthrough of the paper's Figure 1 — the two-task example
//! that motivates task-aware scheduling.
//!
//! ```text
//! cargo run --example figure1_walkthrough
//! ```

use brb::sched::{PolicyKind, Priority, PriorityPolicy, TaskView};
use brb_bench::figure1::{render_figure1, run_figure1};

fn main() {
    println!("== The setup ==\n");
    println!("Client C1 issues task T1 = [A, B, C]; client C2 issues T2 = [D, E].");
    println!("Placement: A,E -> S1;  B,C -> S2;  D -> S3. Every op costs 1 unit.\n");

    println!("== Step 1: clients split tasks into sub-tasks per replica group ==\n");
    let t1 = TaskView {
        arrival_ns: 0,
        request_costs: &[1, 1, 1],
        request_subtask: &[0, 1, 1],
        subtask_costs: &[1, 2],
    };
    let t2 = TaskView {
        arrival_ns: 0,
        request_costs: &[1, 1],
        request_subtask: &[0, 1],
        subtask_costs: &[1, 1],
    };
    println!(
        "T1 sub-tasks: {{A}} cost 1 on S1, {{B,C}} cost 2 on S2 -> bottleneck = {}",
        t1.bottleneck_cost()
    );
    println!(
        "T2 sub-tasks: {{D}} cost 1 on S3, {{E}} cost 1 on S1 -> bottleneck = {}\n",
        t2.bottleneck_cost()
    );

    println!("== Step 2: priority assignment ==\n");
    for (name, policy) in [
        ("EqualMax", PolicyKind::EqualMax),
        ("UnifIncr", PolicyKind::UnifIncr),
    ] {
        let p1: Vec<Priority> = policy.assign(&t1);
        let p2: Vec<Priority> = policy.assign(&t2);
        println!(
            "{name}: T1 A/B/C -> {}/{}/{};  T2 D/E -> {}/{}  (lower serves first)",
            p1[0], p1[1], p1[2], p2[0], p2[1]
        );
    }
    println!();
    println!("Key observation: A can be delayed one unit without hurting T1 (its");
    println!("bottleneck {{B,C}} takes 2 units anyway), so E should go first on S1.\n");

    println!("== Step 3: the schedules ==\n");
    print!("{}", render_figure1());

    let oblivious = run_figure1(PolicyKind::Fifo);
    let aware = run_figure1(PolicyKind::EqualMax);
    println!(
        "\nOutcome: T2 completes in {} unit(s) task-aware vs {} task-oblivious — \
         a {}x improvement for free.",
        aware.t2_completion,
        oblivious.t2_completion,
        oblivious.t2_completion / aware.t2_completion
    );
}
