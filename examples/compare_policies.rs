//! Every scheduling strategy on one workload: the paper's five plus the
//! ablation policies (SJF, EDF, sub-task-granular UnifIncr) and selector
//! baselines — expressed as one declarative scenario and run through the
//! sweep pipeline.
//!
//! ```text
//! cargo run --release --example compare_policies [-- --tasks N]
//! ```

use brb::core::config::{SelectorKind, Strategy};
use brb::lab::{report, runner, ScenarioBuilder};
use brb::sched::PolicyKind;

fn main() {
    let mut num_tasks = 40_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tasks" {
            num_tasks = args.next().unwrap().parse().expect("--tasks N");
        }
    }

    let strategies: Vec<Strategy> = vec![
        // The paper's five.
        Strategy::c3(),
        Strategy::equal_max_credits(),
        Strategy::equal_max_model(),
        Strategy::unif_incr_credits(),
        Strategy::unif_incr_model(),
        // Ablations: task-aware policies without the credits machinery.
        Strategy::Direct {
            selector: SelectorKind::LeastOutstanding,
            policy: PolicyKind::EqualMax,
            priority_queues: true,
        },
        Strategy::Direct {
            selector: SelectorKind::LeastOutstanding,
            policy: PolicyKind::Sjf,
            priority_queues: true,
        },
        Strategy::Direct {
            selector: SelectorKind::LeastOutstanding,
            policy: PolicyKind::Edf,
            priority_queues: true,
        },
        // Realization extremes.
        Strategy::Model {
            policy: PolicyKind::UnifIncrSubtask,
        },
        Strategy::Direct {
            selector: SelectorKind::Oracle,
            policy: PolicyKind::Fifo,
            priority_queues: false,
        },
        // The complementary baseline from the paper's intro: duplicate
        // slow requests instead of scheduling smarter.
        Strategy::hedged_default(),
    ];

    let spec = ScenarioBuilder::new("compare-policies")
        .describe("every strategy and ablation on the paper workload")
        .tasks(num_tasks)
        .scale_catalog(true)
        .strategies(strategies)
        .seeds(&[1])
        .build()
        .expect("valid scenario");

    println!("{num_tasks} tasks, paper cluster, seed 1 — lower is better\n");
    let results = runner::run_spec(&spec).expect("scenario runs");
    print!("{}", report::render_table(&results));
    println!(
        "\nreading guide: 'X - Model' rows are unrealizable lower bounds; \
         'oracle+FIFO' isolates perfect replica selection without task-awareness."
    );
}
