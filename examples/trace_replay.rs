//! Record once, replay everywhere: freeze a workload trace to disk, then
//! replay the identical byte stream through different schedulers.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```
//!
//! This is the workflow for driving the engine with a *production* trace:
//! convert it to the JSONL task format (`brb::workload::Trace`) and hand
//! it to `run_experiment_on_trace`. The registry's `trace-replay`
//! scenario (`brb-lab run trace-replay`) packages the same round trip
//! in-memory; this example shows the on-disk version.

use brb::core::config::Strategy;
use brb::core::experiment::run_experiment_on_trace;
use brb::lab::registry;
use brb::sim::RngFactory;
use brb::workload::soundcloud::{SoundCloudConfig, SoundCloudModel};
use brb::workload::Trace;

fn main() {
    // 1. Record: generate a playlist-model trace and freeze it.
    let factory = RngFactory::new(2026);
    let model = SoundCloudModel::build(
        SoundCloudConfig {
            num_tracks: 100_000,
            num_playlists: 10_000,
            ..Default::default()
        },
        &mut factory.stream("catalog"),
    );
    let trace = model.generate_trace(25_000, 10_255.0, &mut factory.stream("trace"));
    let path = std::env::temp_dir().join("brb_replay_demo.jsonl");
    {
        let file = std::fs::File::create(&path).expect("create trace file");
        trace
            .write_jsonl(std::io::BufWriter::new(file))
            .expect("write trace");
    }
    let stats = trace.stats().unwrap();
    println!(
        "recorded {} tasks ({} requests, mean fan-out {:.2}) to {}",
        stats.num_tasks,
        stats.num_requests,
        stats.mean_fanout,
        path.display()
    );

    // 2. Replay: reload from disk and drive two schedulers with the
    //    *identical* workload (not statistically similar — identical).
    let file = std::fs::File::open(&path).expect("open trace file");
    let reloaded = Trace::read_jsonl(std::io::BufReader::new(file)).expect("parse trace");
    assert_eq!(reloaded.len(), trace.len());

    println!(
        "\n{:<24} {:>10} {:>10} {:>10}",
        "strategy", "median(ms)", "95th(ms)", "99th(ms)"
    );
    for strategy in [Strategy::c3(), Strategy::equal_max_credits()] {
        let cfg = registry::builder("figure2-small")
            .expect("registry preset")
            .tasks(reloaded.len())
            .build_config(strategy, 2026)
            .expect("valid scenario");
        let r = run_experiment_on_trace(cfg, reloaded.tasks.clone());
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2}",
            r.strategy, r.task_latency_ms.p50, r.task_latency_ms.p95, r.task_latency_ms.p99
        );
    }
    println!(
        "\nany difference between the rows above is pure scheduling — the\n\
         request streams are byte-identical."
    );
    let _ = std::fs::remove_file(&path);
}
