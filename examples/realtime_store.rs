//! The threaded runtime in action: real worker threads, real queues,
//! wall-clock latencies — no simulation.
//!
//! ```text
//! cargo run --release --example realtime_store
//! ```
//!
//! Starts an in-process cluster whose workers wait out the size-derived
//! service time (a scale model of the paper's servers), then drives
//! playlist-style batch reads through the **open-loop** Poisson load
//! generator — latency is measured from each task's intended arrival,
//! so queueing delay is never coordinated-omitted — under FIFO and under
//! BRB's UnifIncr policy, and compares measured task latencies.

use brb::metrics::Percentiles;
use brb::rt::{run_load, LoadGenConfig, LoadMode, RtCluster, RtClusterConfig, WorkModel};
use brb::sched::PolicyKind;
use brb::store::service::{ServiceModel, ServiceNoise};
use brb::workload::taskgen::SizeModel;
use brb::workload::FanoutDist;

const KEYS: u64 = 20_000;
const TASKS: usize = 400;

fn run_policy(policy: PolicyKind) -> Percentiles {
    // Service times scaled down 10x from the paper so the demo finishes
    // quickly; the *relative* behaviour of the policies is unchanged.
    let service = ServiceModel::calibrated_size_linear(
        1e9 / 35_000.0,
        SizeModel::facebook_etc().mean_bytes(),
        0.2,
        ServiceNoise::None,
    );
    let cluster = RtCluster::start(RtClusterConfig {
        num_servers: 3,
        workers_per_server: 2,
        replication: 2,
        policy,
        work: WorkModel::SimulateService(service),
        store_shards: 32,
        ..Default::default()
    });
    cluster.populate_etc(KEYS);

    // Offer ~60% of the 6 x 35k req/s capacity as Poisson task arrivals.
    let report = run_load(
        &cluster,
        &LoadGenConfig {
            tasks: TASKS,
            mode: LoadMode::Open {
                task_rate_per_sec: 0.6 * 6.0 * 35_000.0 / FanoutDist::soundcloud_like().mean(),
            },
            fanout: FanoutDist::soundcloud_like(),
            key_range: KEYS,
            key_zipf: 0.0,
            seed: 99,
        },
    );

    println!(
        "  {policy:?}: served per server = {:?} (total {}), utilization {:.0}%",
        report.served_per_server,
        report.requests,
        report.utilization * 100.0
    );
    cluster.shutdown();
    report.task_latency_ms
}

fn main() {
    println!(
        "threaded cluster: 3 servers x 2 workers, R=2, {KEYS} ETC-sized keys, {TASKS} open-loop batch reads\n"
    );
    let fifo = run_policy(PolicyKind::Fifo);
    let brb = run_policy(PolicyKind::UnifIncr);

    println!("\nmeasured wall-clock task latency (ms):");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "policy", "median", "95th", "99th"
    );
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2}",
        "FIFO", fifo.p50, fifo.p95, fifo.p99
    );
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2}",
        "UnifIncr", brb.p50, brb.p95, brb.p99
    );
    println!("\n(priorities only matter when queues form; at low load the two converge)");
}
