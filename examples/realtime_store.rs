//! The threaded runtime in action: real worker threads, real queues,
//! wall-clock latencies — no simulation.
//!
//! ```text
//! cargo run --release --example realtime_store
//! ```
//!
//! Starts an in-process cluster whose workers sleep for the size-derived
//! service time (a scale model of the paper's servers), then fires
//! playlist-style batch reads under FIFO and under BRB's UnifIncr policy
//! and compares measured task latencies.

use brb::metrics::{Histogram, Percentiles};
use brb::rt::{RtCluster, RtClusterConfig, WorkModel};
use brb::sched::PolicyKind;
use brb::store::service::{ServiceModel, ServiceNoise};
use brb::workload::taskgen::SizeModel;
use brb::workload::FanoutDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYS: u64 = 20_000;
const TASKS: usize = 400;

fn run_policy(policy: PolicyKind) -> Percentiles {
    // Service times scaled down 10x from the paper so the demo finishes
    // quickly; the *relative* behaviour of the policies is unchanged.
    let service = ServiceModel::calibrated_size_linear(
        1e9 / 35_000.0,
        SizeModel::facebook_etc().mean_bytes(),
        0.2,
        ServiceNoise::None,
    );
    let cluster = RtCluster::start(RtClusterConfig {
        num_servers: 3,
        workers_per_server: 2,
        replication: 2,
        policy,
        work: WorkModel::SimulateService(service),
        store_shards: 32,
    });
    cluster.populate_etc(KEYS);

    let client = cluster.client();
    let fanout = FanoutDist::soundcloud_like();
    let mut rng = StdRng::seed_from_u64(99);
    let mut hist = Histogram::for_latency_ns();

    // Keep a window of tasks in flight, playlist-style.
    let mut inflight = std::collections::VecDeque::new();
    for _ in 0..TASKS {
        let n = fanout.sample(&mut rng) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..KEYS)).collect();
        inflight.push_back(client.fetch_async(&keys));
        if inflight.len() >= 16 {
            let resp = inflight.pop_front().unwrap().wait();
            hist.record(resp.latency.as_nanos() as u64);
        }
    }
    for ticket in inflight {
        let resp = ticket.wait();
        hist.record(resp.latency.as_nanos() as u64);
    }

    let served = cluster.served_per_server();
    println!(
        "  {policy:?}: served per server = {served:?} (total {})",
        served.iter().sum::<u64>()
    );
    cluster.shutdown();
    Percentiles::from_histogram_ns(&hist).expect("recorded tasks")
}

fn main() {
    println!(
        "threaded cluster: 3 servers x 2 workers, R=2, {KEYS} ETC-sized keys, {TASKS} batch reads\n"
    );
    let fifo = run_policy(PolicyKind::Fifo);
    let brb = run_policy(PolicyKind::UnifIncr);

    println!("\nmeasured wall-clock task latency (ms):");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "policy", "median", "95th", "99th"
    );
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2}",
        "FIFO", fifo.p50, fifo.p95, fifo.p99
    );
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>10.2}",
        "UnifIncr", brb.p50, brb.p95, brb.p99
    );
    println!(
        "\n(real threads and a real store — expect run-to-run variance; \
         the simulation crates are the controlled environment)"
    );
}
