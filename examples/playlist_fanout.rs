//! The motivating workload end-to-end: playlist fetches with large
//! fan-outs against a replicated data store.
//!
//! ```text
//! cargo run --release --example playlist_fanout
//! ```
//!
//! Builds the SoundCloud-substitute catalog (tracks with ETC-Pareto byte
//! sizes, playlists with the calibrated fan-out mixture), inspects the
//! generated trace, then runs the registry's `playlist` scenario — the
//! same trace structure under task-oblivious C3 versus task-aware BRB.

use brb::lab::{registry, runner};
use brb::sim::RngFactory;
use brb::workload::soundcloud::{SoundCloudConfig, SoundCloudModel};

fn main() {
    // --- 1. Build a catalog and look at what the generator produces. ---
    let factory = RngFactory::new(7);
    let sc = SoundCloudConfig {
        num_tracks: 200_000,
        num_playlists: 20_000,
        ..Default::default()
    };
    let model = SoundCloudModel::build(sc, &mut factory.stream("catalog"));
    println!(
        "catalog: {} playlists over {} tracks, mean playlist length {:.2}",
        model.num_playlists(),
        model.config().num_tracks,
        model.mean_playlist_len()
    );

    let trace = model.generate_trace(50_000, 10_000.0, &mut factory.stream("trace"));
    let stats = trace.stats().expect("non-empty trace");
    println!(
        "trace  : {} tasks, {} requests, mean fan-out {:.2} (max {}), mean value {:.0}B (max {}B)\n",
        stats.num_tasks,
        stats.num_requests,
        stats.mean_fanout,
        stats.max_fanout,
        stats.mean_value_bytes,
        stats.max_value_bytes
    );

    // --- 2. Same workload shape, two schedulers: the `playlist` preset.
    let spec = registry::spec("playlist").expect("registry preset");
    println!(
        "running {} ({} tasks) ...\n",
        spec.strategies
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(" vs "),
        spec.workload.num_tasks
    );
    let results = runner::run_spec(&spec).expect("scenario runs");
    let summaries = &results[0].summaries;

    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "strategy", "median(ms)", "95th(ms)", "99th(ms)"
    );
    for s in summaries {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2}",
            s.strategy, s.p50_ms.mean, s.p95_ms.mean, s.p99_ms.mean
        );
    }
    let speedup = summaries[0].p99_ms.mean / summaries[1].p99_ms.mean;
    println!(
        "\ntask-awareness cuts the 99th percentile by {speedup:.2}x on this workload \
         (large fan-outs make the task tail-bound; BRB schedules around the bottleneck)"
    );
}
