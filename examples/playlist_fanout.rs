//! The motivating workload end-to-end: playlist fetches with large
//! fan-outs against a replicated data store.
//!
//! ```text
//! cargo run --release --example playlist_fanout
//! ```
//!
//! Builds the SoundCloud-substitute catalog (tracks with ETC-Pareto byte
//! sizes, playlists with the calibrated fan-out mixture), inspects the
//! generated trace, then shows how the same trace fares under
//! task-oblivious C3 versus task-aware BRB.

use brb::core::config::{ExperimentConfig, Strategy, WorkloadKind};
use brb::core::experiment::run_experiment;
use brb::sim::RngFactory;
use brb::workload::soundcloud::{SoundCloudConfig, SoundCloudModel};

fn main() {
    // --- 1. Build a catalog and look at what the generator produces. ---
    let factory = RngFactory::new(7);
    let sc = SoundCloudConfig {
        num_tracks: 200_000,
        num_playlists: 20_000,
        ..Default::default()
    };
    let model = SoundCloudModel::build(sc, &mut factory.stream("catalog"));
    println!(
        "catalog: {} playlists over {} tracks, mean playlist length {:.2}",
        model.num_playlists(),
        model.config().num_tracks,
        model.mean_playlist_len()
    );

    let trace = model.generate_trace(50_000, 10_000.0, &mut factory.stream("trace"));
    let stats = trace.stats().expect("non-empty trace");
    println!(
        "trace  : {} tasks, {} requests, mean fan-out {:.2} (max {}), mean value {:.0}B (max {}B)\n",
        stats.num_tasks,
        stats.num_requests,
        stats.mean_fanout,
        stats.max_fanout,
        stats.mean_value_bytes,
        stats.max_value_bytes
    );

    // --- 2. Same workload, two schedulers. ---
    println!("running C3 (task-oblivious) vs BRB UniformIncr-Credits (task-aware) ...\n");
    let mut rows = Vec::new();
    for strategy in [Strategy::c3(), Strategy::unif_incr_credits()] {
        let mut cfg = ExperimentConfig::figure2_small(strategy, 7, 50_000);
        cfg.workload.kind = WorkloadKind::Playlist {
            num_tracks: 200_000,
            num_playlists: 20_000,
            playlist_zipf: 0.8,
        };
        let r = run_experiment(cfg);
        rows.push(r);
    }

    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "strategy", "median(ms)", "95th(ms)", "99th(ms)"
    );
    for r in &rows {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2}",
            r.strategy, r.task_latency_ms.p50, r.task_latency_ms.p95, r.task_latency_ms.p99
        );
    }
    let speedup = rows[0].task_latency_ms.p99 / rows[1].task_latency_ms.p99;
    println!(
        "\ntask-awareness cuts the 99th percentile by {speedup:.2}x on this workload \
         (large fan-outs make the task tail-bound; BRB schedules around the bottleneck)"
    );
}
