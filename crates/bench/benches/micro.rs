//! Microbenchmarks for the hot-path substrates: the calendar (timer
//! wheel vs. the `HeapCalendar` baseline — the headline comparison for
//! the kernel rework, also recorded by `--bin kernel_bench` into
//! `BENCH_kernel.json`), the stable priority queue, the samplers, the
//! histogram and priority assignment. These are the operations executed
//! millions of times per Figure 2 cell.

use brb_metrics::Histogram;
use brb_sched::{PolicyKind, Priority, PriorityPolicy, PriorityQueue, RequestQueue, TaskView};
use brb_sim::{Calendar, HeapCalendar, SimTime};
use brb_workload::{FanoutDist, GeneralizedPareto, PoissonProcess, Zipf};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.throughput(Throughput::Elements(1));
    // Steady-state window of 1k events with engine-like deltas (a 50µs
    // network hop up to ~450µs of service): the regime both
    // implementations live in during a figure2 run. The wheel must beat
    // the heap here.
    g.bench_function("push_pop_1k_window", |b| {
        let mut cal = Calendar::new();
        for i in 0..1_000u64 {
            cal.push(SimTime::from_nanos(i * 350), i);
        }
        let mut t = 100_000u64;
        b.iter(|| {
            let (when, _) = cal.pop().unwrap();
            t += 137;
            cal.push(
                SimTime::from_nanos(when.as_nanos() + 50_000 + t % 400_000),
                0,
            );
        });
    });
    g.bench_function("push_pop_1k_window_heap_baseline", |b| {
        let mut cal = HeapCalendar::new();
        for i in 0..1_000u64 {
            cal.push(SimTime::from_nanos(i * 350), i);
        }
        let mut t = 100_000u64;
        b.iter(|| {
            let (when, _) = cal.pop().unwrap();
            t += 137;
            cal.push(
                SimTime::from_nanos(when.as_nanos() + 50_000 + t % 400_000),
                0,
            );
        });
    });
    // Adversarial: every event inside one wheel bucket (deltas below the
    // 16µs slot width). The wheel's drain heap degenerates to exactly the
    // baseline's structure, so this documents near-parity, not a win.
    g.bench_function("push_pop_1k_subslot_adversarial", |b| {
        let mut cal = Calendar::new();
        for i in 0..1_000u64 {
            cal.push(SimTime::from_nanos(i * 100), i);
        }
        let mut t = 100_000u64;
        b.iter(|| {
            let (when, _) = cal.pop().unwrap();
            t += 137;
            cal.push(SimTime::from_nanos(when.as_nanos() + t % 10_000), 0);
        });
    });
    // Engine-realistic deltas: a mix of 50µs network hops, ~300µs service
    // times and occasional 100ms ticks, window of 4k in-flight events.
    g.bench_function("push_pop_4k_engine_mix", |b| {
        let mut cal = Calendar::new();
        for i in 0..4_000u64 {
            cal.push(SimTime::from_nanos(i * 97), i);
        }
        let mut x = 0x9E37_79B9u64;
        b.iter(|| {
            let (when, tag) = cal.pop().unwrap();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let delta = match x % 100 {
                0 => 100_000_000,           // controller tick
                1..=30 => 50_000,           // network hop
                _ => 150_000 + x % 400_000, // service time
            };
            cal.push(SimTime::from_nanos(when.as_nanos() + delta), tag);
        });
    });
    g.bench_function("push_pop_4k_engine_mix_heap_baseline", |b| {
        let mut cal = HeapCalendar::new();
        for i in 0..4_000u64 {
            cal.push(SimTime::from_nanos(i * 97), i);
        }
        let mut x = 0x9E37_79B9u64;
        b.iter(|| {
            let (when, tag) = cal.pop().unwrap();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let delta = match x % 100 {
                0 => 100_000_000,
                1..=30 => 50_000,
                _ => 150_000 + x % 400_000,
            };
            cal.push(SimTime::from_nanos(when.as_nanos() + delta), tag);
        });
    });
    g.finish();
}

fn bench_priority_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("priority_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop_1k_window", |b| {
        let mut q = PriorityQueue::new();
        for i in 0..1_000u64 {
            q.push(Priority(i % 100), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            let _ = q.pop().unwrap();
            i += 1;
            q.push(Priority(i % 100), i);
        });
    });
    g.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("samplers");
    g.throughput(Throughput::Elements(1));

    g.bench_function("pareto_etc", |b| {
        let d = GeneralizedPareto::facebook_etc();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(d.sample_bytes(&mut rng, 1 << 20)));
    });

    g.bench_function("zipf_100k", |b| {
        let z = Zipf::new(100_000, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(z.sample(&mut rng)));
    });

    g.bench_function("poisson_gap", |b| {
        let p = PoissonProcess::new(10_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(p.sample_gap_ns(&mut rng)));
    });

    g.bench_function("fanout_soundcloud", |b| {
        let f = FanoutDist::soundcloud_like();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(f.sample(&mut rng)));
    });

    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record_latency", |b| {
        let mut h = Histogram::for_latency_ns();
        let mut x = 0x243F_6A88_85A3_08D3u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(black_box(50_000 + x % 10_000_000));
        });
    });
    g.bench_function("p99_query_1m_samples", |b| {
        let mut h = Histogram::for_latency_ns();
        let mut x = 1u64;
        for _ in 0..1_000_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(50_000 + x % 10_000_000);
        }
        b.iter(|| black_box(h.value_at_percentile(99.0)));
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_assignment");
    // A representative task: fan-out 9 over 5 sub-tasks.
    let costs = [
        120_000u64, 250_000, 90_000, 400_000, 310_000, 150_000, 95_000, 280_000, 60_000,
    ];
    let subtask = [0usize, 0, 1, 2, 2, 3, 3, 4, 4];
    let subtask_costs = [370_000u64, 90_000, 710_000, 245_000, 340_000];
    let view = TaskView {
        arrival_ns: 1_000_000,
        request_costs: &costs,
        request_subtask: &subtask,
        subtask_costs: &subtask_costs,
    };
    g.throughput(Throughput::Elements(costs.len() as u64));
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::EqualMax,
        PolicyKind::UnifIncr,
        PolicyKind::Edf,
    ] {
        g.bench_function(policy.name(), |b| {
            b.iter(|| black_box(policy.assign(black_box(&view))));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_calendar,
    bench_priority_queue,
    bench_samplers,
    bench_histogram,
    bench_policies
);
criterion_main!(benches);
