//! Figure-regeneration benches: one Criterion benchmark per Figure 2 cell
//! (strategy), each running a scaled-down but structurally complete
//! simulation (all 18 clients, 9 servers, credits/model machinery). The
//! measured quantity is wall-clock per simulated run; the *output* —
//! printed once per strategy — is the latency triple the figure plots.
//!
//! `cargo bench -p brb-bench --bench figures` therefore both exercises the
//! end-to-end engine and regenerates the figure's data at reduced scale.
//! Full scale: `cargo run --release -p brb-bench --bin figure2`.

use brb_core::config::{ExperimentConfig, Strategy};
use brb_core::experiment::run_experiment;
use brb_lab::registry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn small(strategy: Strategy, seed: u64, tasks: usize) -> ExperimentConfig {
    registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(tasks)
        .build_config(strategy, seed)
        .expect("valid scenario")
}

fn bench_figure2_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2_cell");
    g.sample_size(10);
    for strategy in Strategy::figure2_set() {
        let name = strategy.name();
        // Print the cell's data once so `cargo bench` output contains the
        // regenerated figure values.
        let r = run_experiment(small(strategy.clone(), 1, 8_000));
        println!(
            "figure2[{name}]: p50={:.2}ms p95={:.2}ms p99={:.2}ms (8k tasks, seed 1)",
            r.task_latency_ms.p50, r.task_latency_ms.p95, r.task_latency_ms.p99
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(&name),
            &strategy,
            |b, strategy| {
                b.iter(|| run_experiment(small(strategy.clone(), 1, 2_000)));
            },
        );
    }
    g.finish();
}

fn bench_figure1(c: &mut Criterion) {
    // Figure 1 is a 5-op schedule; benching it documents that the policy
    // machinery itself is nanosecond-scale.
    c.bench_function("figure1_schedule", |b| {
        b.iter(|| brb_bench::figure1::run_figure1(brb_sched::PolicyKind::UnifIncr));
    });
}

criterion_group!(figures, bench_figure2_cells, bench_figure1);
criterion_main!(figures);
