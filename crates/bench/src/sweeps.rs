//! Ablation sweeps (DESIGN.md experiments A–C), expressed as declarative
//! `brb-lab` scenarios.
//!
//! * **Load sweep** — where does task-awareness pay? The gap between BRB
//!   and C3 should widen with load (queueing amplifies ordering choices).
//! * **Fan-out sweep** — the paper's motivation: larger fan-outs are more
//!   tail-sensitive, so BRB's advantage should grow with fan-out.
//! * **Credit-interval sweep** — sensitivity of the credits realization to
//!   the controller's adaptation interval (paper fixes it at 1 s).
//! * **Policy matrix** — every selector × policy × queue-discipline
//!   combination under direct dispatch, isolating each mechanism's
//!   contribution.

use crate::render::Table;
use brb_core::config::{SelectorKind, Strategy};
use brb_core::experiment::StrategySummary;
use brb_lab::runner::run_spec;
use brb_lab::ScenarioBuilder;
use brb_sched::{CreditsConfig, PolicyKind};
use serde::{Deserialize, Serialize};

/// One sweep point: a parameter value and the per-strategy summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value (e.g. load fraction or fan-out).
    pub x: f64,
    /// Strategy summaries at this point.
    pub summaries: Vec<StrategySummary>,
}

/// The paper cluster/workload at reduced scale, catalog shrunk to match.
fn paper_small(name: &str, num_tasks: usize) -> ScenarioBuilder {
    ScenarioBuilder::new(name)
        .tasks(num_tasks)
        .scale_catalog(true)
}

/// Sweeps offered load for the given strategies.
pub fn load_sweep(
    loads: &[f64],
    strategies: &[Strategy],
    num_tasks: usize,
    seeds: &[u64],
) -> Vec<SweepPoint> {
    let spec = paper_small("load-sweep", num_tasks)
        .strategies(strategies.to_vec())
        .seeds(seeds)
        .sweep_load(loads)
        .build()
        .expect("valid load sweep");
    run_spec(&spec)
        .expect("load sweep runs")
        .into_iter()
        .map(|cell| SweepPoint {
            x: cell.axes.load.expect("load axis value"),
            summaries: cell.summaries,
        })
        .collect()
}

/// Sweeps *mean* task fan-out for the given strategies, keeping the
/// fan-out distribution heterogeneous (shifted geometric). Heterogeneity
/// matters: with every task identical (fixed fan-out) bottlenecks carry
/// no signal and task-aware prioritization degenerates — BRB's gains come
/// from protecting short tasks against long ones.
pub fn fanout_sweep(
    mean_fanouts: &[u32],
    strategies: &[Strategy],
    num_tasks: usize,
    seeds: &[u64],
) -> Vec<SweepPoint> {
    let spec = paper_small("fanout-sweep", num_tasks)
        .strategies(strategies.to_vec())
        .seeds(seeds)
        .sweep_mean_fanout(mean_fanouts)
        .build()
        .expect("valid fan-out sweep");
    run_spec(&spec)
        .expect("fan-out sweep runs")
        .into_iter()
        .map(|cell| SweepPoint {
            x: cell.axes.mean_fanout.expect("fan-out axis value") as f64,
            summaries: cell.summaries,
        })
        .collect()
}

/// Sweeps the credits controller's adaptation interval (seconds).
pub fn credit_interval_sweep(
    intervals_secs: &[f64],
    policy: PolicyKind,
    num_tasks: usize,
    seeds: &[u64],
) -> Vec<SweepPoint> {
    intervals_secs
        .iter()
        .map(|&secs| {
            let credits = CreditsConfig {
                adaptation_interval_ns: (secs * 1e9) as u64,
                ..Default::default()
            };
            let spec = paper_small("credit-interval", num_tasks)
                .strategies(vec![Strategy::Credits { policy, credits }])
                .seeds(seeds)
                .build()
                .expect("valid credit-interval point");
            let mut cells = run_spec(&spec).expect("credit-interval point runs");
            SweepPoint {
                x: secs,
                summaries: cells.remove(0).summaries,
            }
        })
        .collect()
}

/// The direct-dispatch ablation matrix: selectors × policies × queues.
pub fn policy_matrix(num_tasks: usize, seeds: &[u64]) -> Vec<StrategySummary> {
    let mut strategies = Vec::new();
    for selector in [
        SelectorKind::Random,
        SelectorKind::LeastOutstanding,
        SelectorKind::C3,
        SelectorKind::Oracle,
    ] {
        for policy in [PolicyKind::Fifo, PolicyKind::EqualMax, PolicyKind::UnifIncr] {
            strategies.push(Strategy::Direct {
                selector,
                policy,
                priority_queues: policy != PolicyKind::Fifo,
            });
        }
    }
    let spec = paper_small("policy-matrix", num_tasks)
        .strategies(strategies)
        .seeds(seeds)
        .build()
        .expect("valid policy matrix");
    let mut cells = run_spec(&spec).expect("policy matrix runs");
    cells.remove(0).summaries
}

/// Renders a sweep as a table with one row per (x, strategy).
pub fn render_sweep(points: &[SweepPoint], x_label: &str) -> String {
    let mut t = Table::new(vec![
        x_label,
        "strategy",
        "median(ms)",
        "95th(ms)",
        "99th(ms)",
    ]);
    for p in points {
        for s in &p.summaries {
            t.push_row(vec![
                format!("{}", p.x),
                s.strategy.clone(),
                format!("{:.2}", s.p50_ms.mean),
                format!("{:.2}", s.p95_ms.mean),
                format!("{:.2}", s.p99_ms.mean),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sweep_latency_increases_with_load() {
        let pts = load_sweep(&[0.3, 0.8], &[Strategy::equal_max_model()], 4_000, &[1]);
        assert_eq!(pts.len(), 2);
        let low = pts[0].summaries[0].p99_ms.mean;
        let high = pts[1].summaries[0].p99_ms.mean;
        assert!(high > low, "p99 must grow with load: {low:.2} → {high:.2}");
    }

    #[test]
    fn fanout_sweep_latency_increases_with_fanout() {
        let pts = fanout_sweep(&[1, 32], &[Strategy::c3()], 3_000, &[1]);
        let small = pts[0].summaries[0].p99_ms.mean;
        let large = pts[1].summaries[0].p99_ms.mean;
        assert!(
            large > small,
            "bigger fan-out must hurt the tail: {small:.2} → {large:.2}"
        );
    }

    #[test]
    fn credit_interval_sweep_runs() {
        let pts = credit_interval_sweep(&[0.5, 2.0], PolicyKind::EqualMax, 3_000, &[1]);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.summaries.len(), 1);
            assert!(p.summaries[0].p99_ms.mean > 0.0);
        }
    }

    #[test]
    fn render_sweep_has_row_per_cell() {
        let pts = load_sweep(
            &[0.5],
            &[Strategy::c3(), Strategy::equal_max_model()],
            2_000,
            &[1],
        );
        let s = render_sweep(&pts, "load");
        // Header + separator + 2 rows.
        assert_eq!(s.lines().count(), 4);
    }
}
