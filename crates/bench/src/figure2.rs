//! Figure 2: task latency at the median/95th/99th percentile for the five
//! strategies, averaged over seeds — plus programmatic checks of the
//! paper's two quantitative claims:
//!
//! 1. "the credits strategy is at most 38% of an ideal model" — we read
//!    this as `credits_p99 ≤ 1.38 × model_p99` per policy.
//! 2. "BRB outperforms C3 across all percentiles ... improves the
//!    latencies by up to a factor of 3 at the median and 95th percentiles
//!    and up to 2 times at the 99th percentile" — we check that BRB wins
//!    at every percentile and report the measured factors.

use crate::render::Table;
use brb_core::config::Strategy;
use brb_core::experiment::{run_strategies_multi_seed, StrategySummary};
use brb_lab::registry;
use serde::{Deserialize, Serialize};

/// Options for a Figure 2 regeneration run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Options {
    /// Tasks per run (paper: 500 000; smaller values for quick runs).
    pub num_tasks: usize,
    /// Seeds (paper: six).
    pub seeds: Vec<u64>,
}

impl Default for Figure2Options {
    fn default() -> Self {
        Figure2Options {
            num_tasks: 500_000,
            seeds: vec![1, 2, 3, 4, 5, 6],
        }
    }
}

impl Figure2Options {
    /// A quick variant for tests and smoke runs.
    pub fn quick() -> Self {
        Figure2Options {
            num_tasks: 20_000,
            seeds: vec![1, 2],
        }
    }
}

/// Runs the five Figure 2 strategies under the paper's configuration.
pub fn run_figure2(opts: &Figure2Options) -> Vec<StrategySummary> {
    let base = registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(opts.num_tasks)
        .build_config(Strategy::c3(), 0)
        .expect("valid scenario");
    run_strategies_multi_seed(&base, &Strategy::figure2_set(), &opts.seeds)
}

/// Renders the Figure 2 table (ms, mean ± stddev across seeds).
pub fn render_figure2(summaries: &[StrategySummary]) -> String {
    let mut t = Table::new(vec![
        "strategy",
        "median(ms)",
        "95th(ms)",
        "99th(ms)",
        "seeds",
    ]);
    for s in summaries {
        t.push_row(vec![
            s.strategy.clone(),
            format!("{:.2}±{:.2}", s.p50_ms.mean, s.p50_ms.stddev),
            format!("{:.2}±{:.2}", s.p95_ms.mean, s.p95_ms.stddev),
            format!("{:.2}±{:.2}", s.p99_ms.mean, s.p99_ms.stddev),
            s.runs.len().to_string(),
        ]);
    }
    t.render()
}

/// One checked claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClaimCheck {
    /// Short claim label.
    pub claim: String,
    /// Whether the reproduction satisfies it.
    pub holds: bool,
    /// Measured numbers behind the verdict.
    pub detail: String,
}

fn find<'a>(summaries: &'a [StrategySummary], name: &str) -> &'a StrategySummary {
    summaries
        .iter()
        .find(|s| s.strategy == name)
        .unwrap_or_else(|| panic!("missing strategy {name}"))
}

/// Checks the paper's quantitative claims against measured summaries.
pub fn check_claims(summaries: &[StrategySummary]) -> Vec<ClaimCheck> {
    let c3 = find(summaries, "C3");
    let emc = find(summaries, "EqualMax - Credits");
    let emm = find(summaries, "EqualMax - Model");
    let uic = find(summaries, "UniformIncr - Credits");
    let uim = find(summaries, "UniformIncr - Model");

    let mut checks = Vec::new();

    // Claim 1: credits within 38% of model at p99, per policy.
    for (label, credits, model) in [("EqualMax", emc, emm), ("UniformIncr", uic, uim)] {
        let ratio = credits.p99_ms.mean / model.p99_ms.mean;
        checks.push(ClaimCheck {
            claim: format!("{label}: credits within 38% of model at p99"),
            holds: ratio <= 1.38,
            detail: format!(
                "credits {:.2}ms vs model {:.2}ms → ratio {:.2} (claim ≤ 1.38)",
                credits.p99_ms.mean, model.p99_ms.mean, ratio
            ),
        });
    }

    // Claim 2a: BRB beats C3 at every percentile (both policies, credits
    // realization — the realizable system).
    for (label, brb) in [("EqualMax", emc), ("UniformIncr", uic)] {
        let wins = c3.p50_ms.mean > brb.p50_ms.mean
            && c3.p95_ms.mean > brb.p95_ms.mean
            && c3.p99_ms.mean > brb.p99_ms.mean;
        checks.push(ClaimCheck {
            claim: format!("{label}-Credits beats C3 across all percentiles"),
            holds: wins,
            detail: format!(
                "C3 {:.2}/{:.2}/{:.2}ms vs BRB {:.2}/{:.2}/{:.2}ms (p50/p95/p99)",
                c3.p50_ms.mean,
                c3.p95_ms.mean,
                c3.p99_ms.mean,
                brb.p50_ms.mean,
                brb.p95_ms.mean,
                brb.p99_ms.mean
            ),
        });
    }

    // Claim 2b: report the improvement factors (paper: up to 3x at
    // median/95th, up to 2x at 99th). We require ≥1.3x everywhere and
    // ≥1.5x at p99 for the better policy, and report exact numbers.
    let best_p99 = emc.p99_ms.mean.min(uic.p99_ms.mean);
    let f50 = c3.p50_ms.mean / emc.p50_ms.mean.min(uic.p50_ms.mean);
    let f95 = c3.p95_ms.mean / emc.p95_ms.mean.min(uic.p95_ms.mean);
    let f99 = c3.p99_ms.mean / best_p99;
    checks.push(ClaimCheck {
        claim: "C3→BRB improvement factors in the paper's direction".into(),
        holds: f50 >= 1.3 && f95 >= 1.2 && f99 >= 1.5,
        detail: format!("median {f50:.2}x, 95th {f95:.2}x, 99th {f99:.2}x (paper: up to 3x/3x/2x)"),
    });

    checks
}

/// Renders claim checks as a report block.
pub fn render_claims(checks: &[ClaimCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "[{}] {}\n      {}\n",
            if c.holds { "PASS" } else { "MISS" },
            c.claim,
            c.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke: a scaled-down Figure 2 runs all five strategies
    /// and preserves the invariants that are stable even on short runs:
    /// the ideal model never loses to its realizable counterpart, and the
    /// model beats task-oblivious C3. (The full Credits-vs-C3 ordering
    /// needs several virtual seconds to emerge — see
    /// `figure2_ordering_at_scale`.)
    #[test]
    fn quick_figure2_preserves_ordering() {
        let opts = Figure2Options {
            num_tasks: 12_000,
            seeds: vec![1, 2],
        };
        let summaries = run_figure2(&opts);
        assert_eq!(summaries.len(), 5);
        let c3 = find(&summaries, "C3");
        let emc = find(&summaries, "EqualMax - Credits");
        let emm = find(&summaries, "EqualMax - Model");
        let uim = find(&summaries, "UniformIncr - Model");
        assert!(
            emm.p99_ms.mean <= emc.p99_ms.mean * 1.05,
            "model {:.2} must not lose to credits {:.2}",
            emm.p99_ms.mean,
            emc.p99_ms.mean
        );
        for model in [emm, uim] {
            assert!(
                model.p99_ms.mean < c3.p99_ms.mean,
                "model {:.2} must beat C3 {:.2}",
                model.p99_ms.mean,
                c3.p99_ms.mean
            );
        }
        let table = render_figure2(&summaries);
        assert!(table.contains("C3"));
        assert!(table.contains("UniformIncr - Model"));
        let checks = check_claims(&summaries);
        assert_eq!(checks.len(), 5);
        let report = render_claims(&checks);
        assert!(report.contains("p99"));
    }

    /// The paper's full ordering (Model ≤ Credits < C3 at every
    /// percentile) needs runs long enough for C3's rate-control
    /// oscillations and FIFO head-of-line blocking to surface (several
    /// virtual seconds). Expensive in debug builds, so ignored by
    /// default; run with
    /// `cargo test -p brb-bench --release -- --ignored`.
    #[test]
    #[ignore = "expensive: ~60k-task runs; run with --release -- --ignored"]
    fn figure2_ordering_at_scale() {
        let opts = Figure2Options {
            num_tasks: 60_000,
            seeds: vec![1],
        };
        let summaries = run_figure2(&opts);
        let c3 = find(&summaries, "C3");
        for name in ["EqualMax", "UniformIncr"] {
            let credits = find(&summaries, &format!("{name} - Credits"));
            let model = find(&summaries, &format!("{name} - Model"));
            assert!(model.p99_ms.mean <= credits.p99_ms.mean);
            assert!(
                credits.p99_ms.mean < c3.p99_ms.mean,
                "{name}: credits {:.2} must beat C3 {:.2}",
                credits.p99_ms.mean,
                c3.p99_ms.mean
            );
            assert!(credits.p50_ms.mean < c3.p50_ms.mean);
            assert!(credits.p95_ms.mean < c3.p95_ms.mean);
        }
    }

    #[test]
    #[should_panic(expected = "missing strategy")]
    fn find_panics_on_unknown() {
        find(&[], "C3");
    }
}
