//! Trace tooling: generate, inspect and convert workload traces.
//!
//! ```text
//! # Generate a playlist-model trace and write it as JSONL:
//! cargo run --release -p brb-bench --bin tracegen -- generate --tasks 100000 --out trace.jsonl
//!
//! # Print summary statistics of an existing trace:
//! cargo run --release -p brb-bench --bin tracegen -- stats trace.jsonl
//! ```
//!
//! Traces written here replay through
//! `brb_core::experiment::run_experiment_on_trace`, so a recorded
//! production workload (converted to this format) can drive the exact
//! engine the paper's figures use.

use brb_sim::RngFactory;
use brb_workload::soundcloud::{SoundCloudConfig, SoundCloudModel};
use brb_workload::Trace;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        _ => {
            eprintln!("usage: tracegen generate --tasks N [--rate R] [--seed S] --out PATH");
            eprintln!("       tracegen stats PATH");
            std::process::exit(2);
        }
    }
}

fn generate(args: &[String]) {
    let mut tasks = 100_000usize;
    let mut rate = 10_000.0f64;
    let mut seed = 1u64;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tasks" => tasks = it.next().unwrap().parse().expect("--tasks N"),
            "--rate" => rate = it.next().unwrap().parse().expect("--rate R"),
            "--seed" => seed = it.next().unwrap().parse().expect("--seed S"),
            "--out" => out = Some(it.next().unwrap().clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.expect("--out PATH is required");

    let factory = RngFactory::new(seed);
    let model = SoundCloudModel::build(SoundCloudConfig::default(), &mut factory.stream("catalog"));
    eprintln!(
        "catalog: {} playlists, mean length {:.2}; generating {tasks} tasks at {rate}/s ...",
        model.num_playlists(),
        model.mean_playlist_len()
    );
    let trace = model.generate_trace(tasks, rate, &mut factory.stream("trace"));
    let file = File::create(&out).expect("create output file");
    trace
        .write_jsonl(BufWriter::new(file))
        .expect("write trace");
    eprintln!("wrote {out}");
    print_stats(&trace);
}

fn stats(args: &[String]) {
    let path = args.first().expect("stats needs a PATH");
    let file = File::open(path).expect("open trace file");
    let trace = Trace::read_jsonl(BufReader::new(file)).expect("parse trace");
    print_stats(&trace);
}

fn print_stats(trace: &Trace) {
    match trace.stats() {
        None => println!("empty trace"),
        Some(s) => {
            println!("tasks            : {}", s.num_tasks);
            println!("requests         : {}", s.num_requests);
            println!(
                "mean fan-out     : {:.2} (max {})",
                s.mean_fanout, s.max_fanout
            );
            println!(
                "value sizes      : mean {:.0} B, max {} B",
                s.mean_value_bytes, s.max_value_bytes
            );
            println!(
                "duration         : {:.3} s ({:.0} tasks/s)",
                s.duration_ns as f64 / 1e9,
                s.task_rate_per_sec
            );
        }
    }
}
