//! Kernel wall-clock benchmark: measures the simulation substrate end to
//! end and writes `BENCH_kernel.json`.
//!
//! Four sections:
//!
//! * **calendar** — the timer-wheel [`Calendar`] against the reference
//!   [`HeapCalendar`] on a steady-state 1k-event window with engine-like
//!   deltas (the `push_pop_1k_window` shape from `benches/micro.rs`).
//! * **model** — the `brb_sim::dist` fast samplers against the baselines
//!   they replaced: ziggurat vs. Box–Muller standard normals, ziggurat
//!   vs. inverse-CDF exponentials, and O(1) alias-table Zipf draws vs.
//!   the old cumulative-table binary search.
//! * **net** — the compiled `FabricPlan` fast path against the
//!   per-message `Fabric::delay` slow path: per-hop resolution cost on
//!   the paper's constant mesh, plus the same sequential sweep run once
//!   per mode (`PlanMode::PerMessage` is the PR 3 network path, kept
//!   callable precisely for this before/after and for the differential
//!   tests).
//! * **sweep** — a 3-strategy × 4-seed `figure2-small` preset sweep, sequential
//!   vs. parallel ([`run_strategies_multi_seed_with_threads`]), with the
//!   engine's own event counts folded into an events/second throughput
//!   figure. On a multi-core host the speedup tracks the worker count;
//!   the recorded `threads` field says what this machine offered.
//!
//! Usage: `cargo run --release -p brb-bench --bin kernel_bench [tasks]`
//! (default 8000 tasks per cell; the JSON lands in the working directory).

use brb_core::config::Strategy;
use brb_core::experiment::{
    run_strategies_multi_seed_sequential, run_strategies_multi_seed_with_threads, worker_count,
    StrategySummary,
};
use brb_lab::registry;
use brb_net::{Fabric, FabricPlan, NetNodeId, PlanMode};
use brb_sim::dist::{standard_exp, standard_exp_inv_cdf, standard_normal};
use brb_sim::{BoxMuller, Calendar, DetRng, HeapCalendar, SimTime};
use brb_workload::Zipf;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One timed calendar implementation.
#[derive(Debug, Serialize)]
struct CalendarBench {
    /// Nanoseconds per push+pop pair, steady state.
    ns_per_op: f64,
    /// Million operations per second.
    mops: f64,
}

/// The calendar section: wheel vs. heap baseline.
#[derive(Debug, Serialize)]
struct CalendarSection {
    wheel: CalendarBench,
    heap_baseline: CalendarBench,
    /// wheel speedup over the heap baseline (>1 means the wheel wins).
    speedup: f64,
}

/// Ziggurat vs. Box–Muller standard normals.
#[derive(Debug, Serialize)]
struct NormalBench {
    ziggurat_ns: f64,
    box_muller_ns: f64,
    /// box_muller / ziggurat (>1 means the ziggurat wins).
    speedup: f64,
}

/// Ziggurat vs. inverse-CDF standard exponentials.
#[derive(Debug, Serialize)]
struct ExpBench {
    ziggurat_ns: f64,
    inverse_cdf_ns: f64,
    /// inverse_cdf / ziggurat.
    speedup: f64,
}

/// Alias-table vs. cumulative-scan Zipf rank draws.
#[derive(Debug, Serialize)]
struct ZipfBench {
    /// Ranks in the sampled universe.
    universe: u64,
    alias_ns: f64,
    cdf_scan_ns: f64,
    /// cdf_scan / alias.
    speedup: f64,
}

/// The model-math section: the `brb_sim::dist` fast path against the
/// baselines it replaced.
#[derive(Debug, Serialize)]
struct ModelSection {
    normal: NormalBench,
    exp: ExpBench,
    zipf: ZipfBench,
}

/// One timed sweep execution.
#[derive(Debug, Serialize)]
struct SweepRun {
    wall_secs: f64,
    /// Simulation events executed per wall-clock second, across cells.
    events_per_sec: f64,
}

/// Per-hop resolution cost: compiled plan vs. per-message fabric draw.
#[derive(Debug, Serialize)]
struct HopBench {
    plan_ns: f64,
    one_way_ns: f64,
    /// one_way / plan (>1 means the compiled plan wins).
    speedup: f64,
}

/// End-to-end network-path comparison: the same sequential sweep with
/// the engine forced onto each path.
#[derive(Debug, Serialize)]
struct NetSweepBench {
    /// Forced `Fabric::delay`-per-message build (the PR 3 path).
    per_message_events_per_sec: f64,
    /// Compiled `FabricPlan` + calendar hop lane (the default).
    compiled_events_per_sec: f64,
    /// compiled / per_message (>1 means the fast path wins).
    speedup: f64,
}

/// The network fast-path section.
#[derive(Debug, Serialize)]
struct NetSection {
    hop: HopBench,
    sweep: NetSweepBench,
}

/// The end-to-end sweep section.
#[derive(Debug, Serialize)]
struct SweepSection {
    strategies: Vec<String>,
    seeds: Vec<u64>,
    tasks_per_cell: usize,
    /// Total simulation events across all cells.
    total_events: u64,
    sequential: SweepRun,
    parallel: SweepRun,
    /// Workers the parallel run used.
    threads: usize,
    /// parallel speedup over sequential (≈ thread count on idle cores).
    speedup: f64,
}

/// The whole `BENCH_kernel.json` document.
#[derive(Debug, Serialize)]
struct KernelBench {
    calendar: CalendarSection,
    model: ModelSection,
    net: NetSection,
    sweep: SweepSection,
}

/// Nanoseconds per draw of `f`, accumulated so the draws cannot be
/// optimized away.
fn time_draws<F: FnMut(&mut DetRng) -> f64>(seed: u64, iters: u64, mut f: F) -> f64 {
    let mut rng = DetRng::seed_from_u64(seed);
    // Warm caches and branch predictors.
    let mut acc = 0.0;
    for _ in 0..(iters / 10).max(1) {
        acc += f(&mut rng);
    }
    let start = Instant::now();
    for _ in 0..iters {
        acc += f(&mut rng);
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    black_box(acc);
    ns
}

/// Times the model-math samplers against their baselines.
fn bench_model() -> ModelSection {
    const DRAWS: u64 = 8_000_000;
    let ziggurat_ns = time_draws(1, DRAWS, standard_normal);
    let mut bm = BoxMuller::new();
    let box_muller_ns = time_draws(2, DRAWS, |r| bm.sample(r));
    let zig_exp_ns = time_draws(3, DRAWS, standard_exp);
    let inverse_cdf_ns = time_draws(4, DRAWS, standard_exp_inv_cdf);

    // Zipf over a 100k-rank universe (the synthetic workload's scale).
    const UNIVERSE: u64 = 100_000;
    const ZIPF_DRAWS: u64 = 2_000_000;
    let zipf = Zipf::new(UNIVERSE, 0.9);
    let alias_ns = time_draws(5, ZIPF_DRAWS, |r| zipf.sample(r) as f64);
    // The pre-alias baseline: binary search over the cumulative table.
    let mut cdf = Vec::with_capacity(UNIVERSE as usize);
    let mut acc = 0.0;
    for rank in 0..UNIVERSE {
        acc += zipf.pmf(rank);
        cdf.push(acc);
    }
    let cdf_scan_ns = time_draws(6, ZIPF_DRAWS, |r| {
        let u = r.random::<f64>();
        cdf.partition_point(|&c| c < u).min(UNIVERSE as usize - 1) as f64
    });

    ModelSection {
        normal: NormalBench {
            ziggurat_ns,
            box_muller_ns,
            speedup: box_muller_ns / ziggurat_ns,
        },
        exp: ExpBench {
            ziggurat_ns: zig_exp_ns,
            inverse_cdf_ns,
            speedup: inverse_cdf_ns / zig_exp_ns,
        },
        zipf: ZipfBench {
            universe: UNIVERSE,
            alias_ns,
            cdf_scan_ns,
            speedup: cdf_scan_ns / alias_ns,
        },
    }
}

/// Steady-state push/pop timing over a 1k window with engine-like deltas
/// (50–450µs ahead of the popped event).
macro_rules! time_calendar {
    ($cal:expr, $iters:expr) => {{
        let mut cal = $cal;
        for i in 0..1_000u64 {
            cal.push(SimTime::from_nanos(i * 350), i);
        }
        let mut t = 100_000u64;
        // Warm up the allocations and the branch predictor.
        for _ in 0..50_000 {
            let (when, tag) = cal.pop().unwrap();
            t += 137;
            cal.push(
                SimTime::from_nanos(when.as_nanos() + 50_000 + t % 400_000),
                tag,
            );
        }
        let start = Instant::now();
        for _ in 0..$iters {
            let (when, tag) = cal.pop().unwrap();
            t += 137;
            cal.push(
                SimTime::from_nanos(when.as_nanos() + 50_000 + t % 400_000),
                tag,
            );
        }
        let ns = start.elapsed().as_nanos() as f64 / $iters as f64;
        CalendarBench {
            ns_per_op: ns,
            mops: 1e3 / ns,
        }
    }};
}

/// Times the per-hop resolution paths on the paper's constant mesh.
/// The fast path is what the engine executes per hop — reading the
/// cached delta, no endpoint math at all — while the slow path rotates
/// endpoints across the pair space so it cannot win by
/// branch-predicting a single `(from, to)`.
fn bench_hop() -> HopBench {
    const DRAWS: u64 = 8_000_000;
    const NODES: u64 = 28; // 18 clients + 9 servers + controller
    let fabric = Fabric::paper_default();
    let plan = FabricPlan::compile(fabric.clone(), NODES);
    let uniform = plan.uniform_const().expect("constant mesh compiles");
    let plan_ns = time_draws(7, DRAWS, |_| black_box(uniform).as_nanos() as f64);
    let mut j = 0u64;
    let mut rng2 = DetRng::seed_from_u64(8);
    let one_way_ns = time_draws(8, DRAWS, |_| {
        j += 1;
        let from = NetNodeId::new(j % NODES);
        let to = NetNodeId::new((j + 7) % NODES);
        fabric.delay(from, to, 4_096, &mut rng2).as_nanos() as f64
    });
    HopBench {
        plan_ns,
        one_way_ns,
        speedup: one_way_ns / plan_ns,
    }
}

fn total_events(summaries: &[StrategySummary]) -> u64 {
    summaries
        .iter()
        .flat_map(|s| s.runs.iter())
        .map(|r| r.events)
        .sum()
}

fn main() {
    let tasks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8_000);
    const ITERS: u64 = 2_000_000;

    eprintln!("calendar: timing wheel vs heap baseline ({ITERS} ops)...");
    let wheel = time_calendar!(Calendar::new(), ITERS);
    let heap = time_calendar!(HeapCalendar::new(), ITERS);
    let cal_section = CalendarSection {
        speedup: heap.ns_per_op / wheel.ns_per_op,
        wheel,
        heap_baseline: heap,
    };

    eprintln!("model: ziggurat/alias samplers vs baselines...");
    let model = bench_model();

    let strategies = vec![
        Strategy::c3(),
        Strategy::equal_max_credits(),
        Strategy::equal_max_model(),
    ];
    let seeds = vec![1u64, 2, 3, 4];
    let base = registry::builder("figure2-small")
        .expect("registry preset")
        .tasks(tasks)
        .build_config(Strategy::c3(), 0)
        .expect("valid scenario");
    let threads = worker_count();

    eprintln!(
        "sweep: {} strategies x {} seeds x {tasks} tasks, sequential...",
        strategies.len(),
        seeds.len()
    );
    let start = Instant::now();
    let seq_out = run_strategies_multi_seed_sequential(&base, &strategies, &seeds);
    let seq_secs = start.elapsed().as_secs_f64();
    let events = total_events(&seq_out);

    eprintln!("sweep: parallel across {threads} threads...");
    let start = Instant::now();
    let par_out = run_strategies_multi_seed_with_threads(&base, &strategies, &seeds, threads);
    let par_secs = start.elapsed().as_secs_f64();
    assert_eq!(total_events(&par_out), events, "parallel run diverged");

    eprintln!("net: per-hop resolution, plan vs one_way...");
    let hop = bench_hop();
    eprintln!("net: the same sweep per network path (interleaved, best of 3)...");
    // Interleave the two modes and keep each mode's minimum wall time:
    // a single-shot A/B on a shared machine attributes scheduler noise
    // to whichever mode the spike landed on, while minima compare the
    // uncontended cost of each path.
    let mut slow_base = base.clone();
    slow_base.net = PlanMode::PerMessage;
    let (mut slow_secs, mut fast_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let start = Instant::now();
        let slow_out = run_strategies_multi_seed_sequential(&slow_base, &strategies, &seeds);
        slow_secs = slow_secs.min(start.elapsed().as_secs_f64());
        // The two network paths must be invisible in the results (the
        // lab differential tests pin this per preset; cheap to
        // re-assert here).
        assert_eq!(total_events(&slow_out), events, "slow path diverged");
        let start = Instant::now();
        let fast_out = run_strategies_multi_seed_sequential(&base, &strategies, &seeds);
        fast_secs = fast_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(total_events(&fast_out), events, "fast path diverged");
    }
    let net = NetSection {
        hop,
        sweep: NetSweepBench {
            per_message_events_per_sec: events as f64 / slow_secs,
            compiled_events_per_sec: events as f64 / fast_secs,
            speedup: slow_secs / fast_secs,
        },
    };

    let doc = KernelBench {
        calendar: cal_section,
        model,
        net,
        sweep: SweepSection {
            strategies: strategies.iter().map(|s| s.name()).collect(),
            seeds,
            tasks_per_cell: tasks,
            total_events: events,
            sequential: SweepRun {
                wall_secs: seq_secs,
                events_per_sec: events as f64 / seq_secs,
            },
            parallel: SweepRun {
                wall_secs: par_secs,
                events_per_sec: events as f64 / par_secs,
            },
            threads,
            speedup: seq_secs / par_secs,
        },
    };

    let json = serde_json::to_string_pretty(&doc).expect("serialize bench document");
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("{json}");
    eprintln!(
        "calendar: wheel {:.1} ns/op vs heap {:.1} ns/op ({:.2}x); \
         model: normal {:.1} vs {:.1} ns ({:.2}x), exp {:.1} vs {:.1} ns ({:.2}x), \
         zipf {:.1} vs {:.1} ns ({:.2}x); \
         net: hop {:.2} vs {:.2} ns ({:.2}x), sweep {:.2}M ev/s compiled vs \
         {:.2}M per-message ({:.2}x); \
         sweep: {:.2}s sequential vs {:.2}s parallel ({:.2}x on {} threads); \
         wrote BENCH_kernel.json",
        doc.calendar.wheel.ns_per_op,
        doc.calendar.heap_baseline.ns_per_op,
        doc.calendar.speedup,
        doc.model.normal.ziggurat_ns,
        doc.model.normal.box_muller_ns,
        doc.model.normal.speedup,
        doc.model.exp.ziggurat_ns,
        doc.model.exp.inverse_cdf_ns,
        doc.model.exp.speedup,
        doc.model.zipf.alias_ns,
        doc.model.zipf.cdf_scan_ns,
        doc.model.zipf.speedup,
        doc.net.hop.plan_ns,
        doc.net.hop.one_way_ns,
        doc.net.hop.speedup,
        doc.net.sweep.compiled_events_per_sec / 1e6,
        doc.net.sweep.per_message_events_per_sec / 1e6,
        doc.net.sweep.speedup,
        doc.sweep.sequential.wall_secs,
        doc.sweep.parallel.wall_secs,
        doc.sweep.speedup,
        doc.sweep.threads,
    );
}
