//! Kernel wall-clock benchmark: measures the simulation substrate end to
//! end and writes `BENCH_kernel.json`.
//!
//! Two sections:
//!
//! * **calendar** — the timer-wheel [`Calendar`] against the reference
//!   [`HeapCalendar`] on a steady-state 1k-event window with engine-like
//!   deltas (the `push_pop_1k_window` shape from `benches/micro.rs`).
//! * **sweep** — a 3-strategy × 4-seed `figure2_small` sweep, sequential
//!   vs. parallel ([`run_strategies_multi_seed_with_threads`]), with the
//!   engine's own event counts folded into an events/second throughput
//!   figure. On a multi-core host the speedup tracks the worker count;
//!   the recorded `threads` field says what this machine offered.
//!
//! Usage: `cargo run --release -p brb-bench --bin kernel_bench [tasks]`
//! (default 8000 tasks per cell; the JSON lands in the working directory).

use brb_core::config::{ExperimentConfig, Strategy};
use brb_core::experiment::{
    run_strategies_multi_seed_sequential, run_strategies_multi_seed_with_threads, worker_count,
    StrategySummary,
};
use brb_sim::{Calendar, HeapCalendar, SimTime};
use serde::Serialize;
use std::time::Instant;

/// One timed calendar implementation.
#[derive(Debug, Serialize)]
struct CalendarBench {
    /// Nanoseconds per push+pop pair, steady state.
    ns_per_op: f64,
    /// Million operations per second.
    mops: f64,
}

/// The calendar section: wheel vs. heap baseline.
#[derive(Debug, Serialize)]
struct CalendarSection {
    wheel: CalendarBench,
    heap_baseline: CalendarBench,
    /// wheel speedup over the heap baseline (>1 means the wheel wins).
    speedup: f64,
}

/// One timed sweep execution.
#[derive(Debug, Serialize)]
struct SweepRun {
    wall_secs: f64,
    /// Simulation events executed per wall-clock second, across cells.
    events_per_sec: f64,
}

/// The end-to-end sweep section.
#[derive(Debug, Serialize)]
struct SweepSection {
    strategies: Vec<String>,
    seeds: Vec<u64>,
    tasks_per_cell: usize,
    /// Total simulation events across all cells.
    total_events: u64,
    sequential: SweepRun,
    parallel: SweepRun,
    /// Workers the parallel run used.
    threads: usize,
    /// parallel speedup over sequential (≈ thread count on idle cores).
    speedup: f64,
}

/// The whole `BENCH_kernel.json` document.
#[derive(Debug, Serialize)]
struct KernelBench {
    calendar: CalendarSection,
    sweep: SweepSection,
}

/// Steady-state push/pop timing over a 1k window with engine-like deltas
/// (50–450µs ahead of the popped event).
macro_rules! time_calendar {
    ($cal:expr, $iters:expr) => {{
        let mut cal = $cal;
        for i in 0..1_000u64 {
            cal.push(SimTime::from_nanos(i * 350), i);
        }
        let mut t = 100_000u64;
        // Warm up the allocations and the branch predictor.
        for _ in 0..50_000 {
            let (when, tag) = cal.pop().unwrap();
            t += 137;
            cal.push(
                SimTime::from_nanos(when.as_nanos() + 50_000 + t % 400_000),
                tag,
            );
        }
        let start = Instant::now();
        for _ in 0..$iters {
            let (when, tag) = cal.pop().unwrap();
            t += 137;
            cal.push(
                SimTime::from_nanos(when.as_nanos() + 50_000 + t % 400_000),
                tag,
            );
        }
        let ns = start.elapsed().as_nanos() as f64 / $iters as f64;
        CalendarBench {
            ns_per_op: ns,
            mops: 1e3 / ns,
        }
    }};
}

fn total_events(summaries: &[StrategySummary]) -> u64 {
    summaries
        .iter()
        .flat_map(|s| s.runs.iter())
        .map(|r| r.events)
        .sum()
}

fn main() {
    let tasks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8_000);
    const ITERS: u64 = 2_000_000;

    eprintln!("calendar: timing wheel vs heap baseline ({ITERS} ops)...");
    let wheel = time_calendar!(Calendar::new(), ITERS);
    let heap = time_calendar!(HeapCalendar::new(), ITERS);
    let cal_section = CalendarSection {
        speedup: heap.ns_per_op / wheel.ns_per_op,
        wheel,
        heap_baseline: heap,
    };

    let strategies = vec![
        Strategy::c3(),
        Strategy::equal_max_credits(),
        Strategy::equal_max_model(),
    ];
    let seeds = vec![1u64, 2, 3, 4];
    let base = ExperimentConfig::figure2_small(Strategy::c3(), 0, tasks);
    let threads = worker_count();

    eprintln!(
        "sweep: {} strategies x {} seeds x {tasks} tasks, sequential...",
        strategies.len(),
        seeds.len()
    );
    let start = Instant::now();
    let seq_out = run_strategies_multi_seed_sequential(&base, &strategies, &seeds);
    let seq_secs = start.elapsed().as_secs_f64();
    let events = total_events(&seq_out);

    eprintln!("sweep: parallel across {threads} threads...");
    let start = Instant::now();
    let par_out = run_strategies_multi_seed_with_threads(&base, &strategies, &seeds, threads);
    let par_secs = start.elapsed().as_secs_f64();
    assert_eq!(total_events(&par_out), events, "parallel run diverged");

    let doc = KernelBench {
        calendar: cal_section,
        sweep: SweepSection {
            strategies: strategies.iter().map(|s| s.name()).collect(),
            seeds,
            tasks_per_cell: tasks,
            total_events: events,
            sequential: SweepRun {
                wall_secs: seq_secs,
                events_per_sec: events as f64 / seq_secs,
            },
            parallel: SweepRun {
                wall_secs: par_secs,
                events_per_sec: events as f64 / par_secs,
            },
            threads,
            speedup: seq_secs / par_secs,
        },
    };

    let json = serde_json::to_string_pretty(&doc).expect("serialize bench document");
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("{json}");
    eprintln!(
        "calendar: wheel {:.1} ns/op vs heap {:.1} ns/op ({:.2}x); \
         sweep: {:.2}s sequential vs {:.2}s parallel ({:.2}x on {} threads); \
         wrote BENCH_kernel.json",
        doc.calendar.wheel.ns_per_op,
        doc.calendar.heap_baseline.ns_per_op,
        doc.calendar.speedup,
        doc.sweep.sequential.wall_secs,
        doc.sweep.parallel.wall_secs,
        doc.sweep.speedup,
        doc.sweep.threads,
    );
}
