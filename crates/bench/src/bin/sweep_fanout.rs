//! Ablation B: fan-out sweep — gains should grow with fan-out (the
//! paper's motivating claim: large fan-outs make workloads tail-bound).
//!
//! ```text
//! cargo run --release -p brb-bench --bin sweep_fanout -- [--tasks N] [--seeds a,b]
//! ```

use brb_bench::sweeps::{fanout_sweep, render_sweep};
use brb_core::config::Strategy;

fn main() {
    let mut num_tasks = 40_000usize;
    let mut seeds = vec![1u64, 2];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tasks" => num_tasks = args.next().unwrap().parse().expect("--tasks N"),
            "--seeds" => {
                seeds = args
                    .next()
                    .unwrap()
                    .split(',')
                    .map(|s| s.parse().expect("seed"))
                    .collect()
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let fanouts = [1u32, 4, 8, 16, 32, 64];
    let strategies = [
        Strategy::c3(),
        Strategy::equal_max_credits(),
        Strategy::unif_incr_credits(),
        Strategy::equal_max_model(),
    ];
    eprintln!(
        "mean fan-out sweep {fanouts:?} (geometric mix) — {num_tasks} tasks x {} seeds",
        seeds.len()
    );
    let t0 = std::time::Instant::now();
    let pts = fanout_sweep(&fanouts, &strategies, num_tasks, &seeds);
    eprintln!("completed in {:.1?}\n", t0.elapsed());
    println!("{}", render_sweep(&pts, "mean-fanout"));

    println!("C3/BRB(EqualMax-Credits) p99 ratio by mean fan-out:");
    for p in &pts {
        let c3 = p.summaries.iter().find(|s| s.strategy == "C3").unwrap();
        let brb = p
            .summaries
            .iter()
            .find(|s| s.strategy == "EqualMax - Credits")
            .unwrap();
        println!(
            "  mean fanout {:>3}: {:.2}x ({:.2}ms vs {:.2}ms)",
            p.x,
            c3.p99_ms.mean / brb.p99_ms.mean,
            c3.p99_ms.mean,
            brb.p99_ms.mean
        );
    }
}
