//! Ablation A: load sweep — where does task-awareness pay?
//!
//! ```text
//! cargo run --release -p brb-bench --bin sweep_load -- [--tasks N] [--seeds a,b]
//! ```

use brb_bench::sweeps::{load_sweep, render_sweep};
use brb_core::config::Strategy;

fn main() {
    let mut num_tasks = 60_000usize;
    let mut seeds = vec![1u64, 2];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tasks" => num_tasks = args.next().unwrap().parse().expect("--tasks N"),
            "--seeds" => {
                seeds = args
                    .next()
                    .unwrap()
                    .split(',')
                    .map(|s| s.parse().expect("seed"))
                    .collect()
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let loads = [0.3, 0.5, 0.7, 0.8, 0.9];
    let strategies = [
        Strategy::c3(),
        Strategy::equal_max_credits(),
        Strategy::equal_max_model(),
    ];
    eprintln!(
        "load sweep {loads:?} — {num_tasks} tasks x {} seeds",
        seeds.len()
    );
    let t0 = std::time::Instant::now();
    let pts = load_sweep(&loads, &strategies, num_tasks, &seeds);
    eprintln!("completed in {:.1?}\n", t0.elapsed());
    println!("{}", render_sweep(&pts, "load"));

    // Headline: the C3→BRB p99 gap per load level.
    println!("C3/BRB(credits) p99 ratio by load:");
    for p in &pts {
        let c3 = p.summaries.iter().find(|s| s.strategy == "C3").unwrap();
        let brb = p
            .summaries
            .iter()
            .find(|s| s.strategy == "EqualMax - Credits")
            .unwrap();
        println!(
            "  load {:.1}: {:.2}x ({:.2}ms vs {:.2}ms)",
            p.x,
            c3.p99_ms.mean / brb.p99_ms.mean,
            c3.p99_ms.mean,
            brb.p99_ms.mean
        );
    }
}
