//! Ablation C: credit-interval sensitivity and the selector × policy
//! matrix under direct dispatch.
//!
//! ```text
//! cargo run --release -p brb-bench --bin ablation -- [--tasks N] [--seeds a,b]
//! ```

use brb_bench::render::Table;
use brb_bench::sweeps::{credit_interval_sweep, policy_matrix, render_sweep};
use brb_core::config::{SelectorKind, Strategy};
use brb_lab::runner::run_spec;
use brb_lab::ScenarioBuilder;
use brb_sched::PolicyKind;
use brb_store::cost::ForecastQuality;

fn main() {
    let mut num_tasks = 30_000usize;
    let mut seeds = vec![1u64, 2];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tasks" => num_tasks = args.next().unwrap().parse().expect("--tasks N"),
            "--seeds" => {
                seeds = args
                    .next()
                    .unwrap()
                    .split(',')
                    .map(|s| s.parse().expect("seed"))
                    .collect()
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // C.1 — adaptation-interval sensitivity (paper fixes 1 s).
    let intervals = [0.25, 0.5, 1.0, 2.0, 4.0];
    eprintln!("credit adaptation-interval sweep {intervals:?}s ...");
    let t0 = std::time::Instant::now();
    let pts = credit_interval_sweep(&intervals, PolicyKind::EqualMax, num_tasks, &seeds);
    eprintln!("completed in {:.1?}\n", t0.elapsed());
    println!("{}", render_sweep(&pts, "adapt(s)"));

    // C.2 — selector × policy matrix under direct dispatch.
    eprintln!("selector x policy matrix ...");
    let t0 = std::time::Instant::now();
    let matrix = policy_matrix(num_tasks, &seeds);
    eprintln!("completed in {:.1?}\n", t0.elapsed());
    let mut t = Table::new(vec!["combination", "median(ms)", "95th(ms)", "99th(ms)"]);
    for s in &matrix {
        t.push_row(vec![
            s.strategy.clone(),
            format!("{:.2}", s.p50_ms.mean),
            format!("{:.2}", s.p95_ms.mean),
            format!("{:.2}", s.p99_ms.mean),
        ]);
    }
    println!("{}", t.render());

    // C.3 — forecast-quality sensitivity: how good must the value-size
    // signal be for BRB to pay off?
    eprintln!("forecast-quality sweep ...");
    let t0 = std::time::Instant::now();
    let mut t = Table::new(vec!["forecast", "median(ms)", "95th(ms)", "99th(ms)"]);
    let mean_bytes = brb_workload::taskgen::SizeModel::facebook_etc().mean_bytes();
    for (label, quality) in [
        ("exact", ForecastQuality::Exact),
        ("size-class (pow2)", ForecastQuality::SizeClass),
        (
            "blind (flat mean)",
            ForecastQuality::Blind {
                mean_value_bytes: mean_bytes,
            },
        ),
    ] {
        let spec = ScenarioBuilder::new("forecast-quality")
            .tasks(num_tasks)
            .scale_catalog(true)
            .forecast(quality)
            .strategies(vec![Strategy::unif_incr_credits()])
            .seeds(&seeds)
            .build()
            .expect("valid forecast-quality scenario");
        let s = run_spec(&spec).expect("scenario runs").remove(0).summaries;
        t.push_row(vec![
            label.to_string(),
            format!("{:.2}", s[0].p50_ms.mean),
            format!("{:.2}", s[0].p95_ms.mean),
            format!("{:.2}", s[0].p99_ms.mean),
        ]);
    }
    eprintln!("completed in {:.1?}\n", t0.elapsed());
    println!("UniformIncr-Credits under degraded cost forecasts:");
    println!("{}", t.render());

    // C.4 — hedging: the complementary baseline from the paper's intro,
    // including the runaway failure mode of an aggressive trigger.
    eprintln!("hedging comparison ...");
    let t0 = std::time::Instant::now();
    let spec = ScenarioBuilder::new("hedging")
        .tasks(num_tasks)
        .scale_catalog(true)
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::LeastOutstanding,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::hedged_default(),
            Strategy::Hedged {
                selector: SelectorKind::LeastOutstanding,
                delay_us: 1_000,
            },
            Strategy::equal_max_credits(),
        ])
        .seeds(&seeds)
        .build()
        .expect("valid hedging scenario");
    let hedging = run_spec(&spec).expect("scenario runs").remove(0).summaries;
    eprintln!("completed in {:.1?}\n", t0.elapsed());
    let mut t = Table::new(vec![
        "strategy",
        "median(ms)",
        "95th(ms)",
        "99th(ms)",
        "hedges/run",
    ]);
    for s in &hedging {
        let hedges: f64 =
            s.runs.iter().map(|r| r.hedges_issued as f64).sum::<f64>() / s.runs.len() as f64;
        t.push_row(vec![
            s.strategy.clone(),
            format!("{:.2}", s.p50_ms.mean),
            format!("{:.2}", s.p95_ms.mean),
            format!("{:.2}", s.p99_ms.mean),
            format!("{:.0}", hedges),
        ]);
    }
    println!("{}", t.render());
    println!(
        "hedging safeguards in play: requests whose forecast service exceeds the\n\
         trigger are never hedged (intrinsically big, not straggling), and hedges\n\
         are budgeted at 5% of issued traffic per client — without both, the\n\
         aggressive trigger runs away (hedges add load, load adds latency,\n\
         latency adds hedges: the hazard Dean & Barroso warn about)."
    );
}
