//! Telemetry timelines: watch queues, cores and client backlogs evolve
//! over a run, per strategy.
//!
//! ```text
//! cargo run --release -p brb-bench --bin timeline -- [--tasks N] [--out DIR]
//! ```
//!
//! Writes one CSV per Figure 2 strategy (plus a summary to stdout), ready
//! for plotting.

use brb_core::config::Strategy;
use brb_core::engine::EngineWorld;
use brb_lab::registry;
use brb_sim::Simulation;

fn main() {
    let mut num_tasks = 30_000usize;
    let mut out_dir = "results".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tasks" => num_tasks = args.next().unwrap().parse().expect("--tasks N"),
            "--out" => out_dir = args.next().unwrap(),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    println!(
        "{:<24} {:>9} {:>10} {:>12} {:>9}",
        "strategy", "samples", "peak-queue", "peak-backlog", "mean-q/srv"
    );
    for strategy in Strategy::figure2_set() {
        let cfg = registry::builder("figure2-small")
            .expect("registry preset")
            .tasks(num_tasks)
            .telemetry_interval_ns(Some(10_000_000)) // 10 ms
            .build_config(strategy, 1)
            .expect("valid scenario");
        let name = cfg.strategy.name();
        let world = EngineWorld::new(cfg);
        let mut sim = Simulation::new(world);
        EngineWorld::prime(&mut sim);
        sim.run();
        let w = sim.world();
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = format!("{out_dir}/timeline_{slug}.csv");
        let file = std::fs::File::create(&path).expect("create csv");
        w.timeline
            .write_csv(std::io::BufWriter::new(file))
            .expect("write csv");
        let means = w.timeline.mean_queue_per_server();
        let mean_q = means.iter().sum::<f64>() / means.len().max(1) as f64;
        println!(
            "{:<24} {:>9} {:>10} {:>12} {:>9.2}   -> {path}",
            name,
            w.timeline.len(),
            w.timeline.peak_queued(),
            w.timeline.peak_held(),
            mean_q
        );
    }
}
