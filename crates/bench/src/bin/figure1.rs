//! Regenerates Figure 1: the worked scheduling example.
//!
//! ```text
//! cargo run --release -p brb-bench --bin figure1
//! ```

use brb_bench::figure1::{render_figure1, verify_figure1};

fn main() {
    print!("{}", render_figure1());
    match verify_figure1() {
        Ok(()) => println!("\nSelf-check: PASS (oblivious T2=2, task-aware T2=1, T1=2 in both)"),
        Err(e) => {
            eprintln!("\nSelf-check FAILED: {e}");
            std::process::exit(1);
        }
    }
}
