//! Regenerates Figure 2: task read latencies (median/95th/99th) for C3,
//! EqualMax-{Credits,Model} and UniformIncr-{Credits,Model}, averaged
//! over seeds, plus the paper's claim checks.
//!
//! ```text
//! cargo run --release -p brb-bench --bin figure2              # full scale (500k tasks x 6 seeds)
//! cargo run --release -p brb-bench --bin figure2 -- --quick   # 20k tasks x 2 seeds
//! cargo run --release -p brb-bench --bin figure2 -- --tasks 100000 --seeds 1,2,3
//! cargo run --release -p brb-bench --bin figure2 -- --json figure2.json
//! ```

use brb_bench::figure2::{
    check_claims, render_claims, render_figure2, run_figure2, Figure2Options,
};

fn main() {
    let mut opts = Figure2Options::default();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts = Figure2Options::quick(),
            "--tasks" => {
                opts.num_tasks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tasks needs a number");
            }
            "--seeds" => {
                let spec = args.next().expect("--seeds needs a,b,c");
                opts.seeds = spec
                    .split(',')
                    .map(|s| s.parse().expect("seed must be a number"))
                    .collect();
            }
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figure2 [--quick] [--tasks N] [--seeds a,b,c] [--json PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "Figure 2: {} tasks x {} seeds (18 clients, 9 servers x 4 cores @3500 req/s, \
         50us one-way, fan-out ~8.6, ETC sizes, 70% load)",
        opts.num_tasks,
        opts.seeds.len()
    );
    let t0 = std::time::Instant::now();
    let summaries = run_figure2(&opts);
    eprintln!("completed in {:.1?}\n", t0.elapsed());

    println!("{}", render_figure2(&summaries));
    let checks = check_claims(&summaries);
    println!("{}", render_claims(&checks));

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&summaries).expect("serialize");
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
