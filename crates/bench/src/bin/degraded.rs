//! Ablation D: one degraded server (the scenario C3 was built for).
//!
//! Server 0 runs at a fraction of nominal speed; nobody tells the clients.
//! Adaptive strategies must *discover* it: C3 through its scoring, the
//! credits controller through congestion signals, the model through work
//! pulling (slow servers simply pull less). Random selection cannot adapt
//! and shows the undamaged baseline pain.
//!
//! ```text
//! cargo run --release -p brb-bench --bin degraded -- [--tasks N] [--seeds a,b] [--speed 0.5]
//! ```

use brb_bench::render::Table;
use brb_core::config::{SelectorKind, Strategy};
use brb_lab::runner::run_spec;
use brb_lab::ScenarioBuilder;
use brb_sched::PolicyKind;

fn main() {
    let mut num_tasks = 50_000usize;
    let mut seeds = vec![1u64, 2];
    let mut speed = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tasks" => num_tasks = args.next().unwrap().parse().expect("--tasks N"),
            "--speed" => speed = args.next().unwrap().parse().expect("--speed F"),
            "--seeds" => {
                seeds = args
                    .next()
                    .unwrap()
                    .split(',')
                    .map(|s| s.parse().expect("seed"))
                    .collect()
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let strategies = [
        Strategy::Direct {
            selector: SelectorKind::Random,
            policy: PolicyKind::Fifo,
            priority_queues: false,
        },
        Strategy::c3(),
        Strategy::equal_max_credits(),
        Strategy::equal_max_model(),
    ];

    let mut table = Table::new(vec![
        "server-0 speed",
        "strategy",
        "median(ms)",
        "95th(ms)",
        "99th(ms)",
    ]);
    for &factor in &[1.0, speed] {
        let spec = ScenarioBuilder::new("degraded-node")
            .tasks(num_tasks)
            .scale_catalog(true)
            // Keep offered load feasible for the weakened cluster.
            .load(0.6)
            .degrade_server(0, factor)
            .strategies(strategies.to_vec())
            .seeds(&seeds)
            .build()
            .expect("valid degraded-node scenario");
        eprintln!("running with server-0 at {factor}x ...");
        let mut cells = run_spec(&spec).expect("scenario runs");
        let summaries = cells.remove(0).summaries;
        for s in &summaries {
            table.push_row(vec![
                format!("{factor}"),
                s.strategy.clone(),
                format!("{:.2}", s.p50_ms.mean),
                format!("{:.2}", s.p95_ms.mean),
                format!("{:.2}", s.p99_ms.mean),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "reading guide: the 1.0 block is the healthy baseline; in the {speed} block\n\
         adaptive strategies (C3, BRB) should degrade far less than random+FIFO."
    );
}
