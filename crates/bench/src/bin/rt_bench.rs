//! Live-runtime measurement bench: closed vs open loop on a saturated
//! cluster — the coordinated-omission demonstration, as JSON on stdout.
//!
//! ```text
//! cargo run --release -p brb-bench --bin rt_bench [tasks]
//! ```
//!
//! One server, one worker, fixed 300µs services. The open-loop run
//! offers 1.3× capacity as Poisson *intended* arrivals and measures
//! from them; the closed-loop run keeps a 4-task window and measures
//! from submission. The closed loop reports roughly
//! window × service-time latencies no matter how overloaded the server
//! is — it politely stops offering load — while the open loop surfaces
//! the queueing delay a saturated server actually inflicts. That gap is
//! why `brb-lab --backend rt` drives clusters open-loop.

use brb_metrics::Percentiles;
use brb_rt::{run_load, LoadGenConfig, LoadMode, RtCluster, RtClusterConfig, WorkModel};
use brb_store::service::{ServiceModel, ServiceNoise};
use brb_workload::FanoutDist;

const SERVICE_NS: f64 = 300_000.0;

fn cluster() -> RtCluster {
    let service = ServiceModel::calibrated_size_linear(SERVICE_NS, 64.0, 1.0, ServiceNoise::None);
    let c = RtCluster::start(RtClusterConfig {
        num_servers: 1,
        workers_per_server: 1,
        replication: 1,
        work: WorkModel::SimulateService(service),
        store_shards: 4,
        ..Default::default()
    });
    c.populate(64, |_| 64);
    c
}

fn latency_json(p: &Percentiles) -> String {
    format!(
        "{{\"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}}}",
        p.p50, p.p95, p.p99, p.mean
    )
}

fn main() {
    let tasks: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("tasks must be a number"))
        .unwrap_or(400);
    let capacity_rps = 1e9 / SERVICE_NS;

    let base = LoadGenConfig {
        tasks,
        fanout: FanoutDist::Fixed(1),
        key_range: 64,
        key_zipf: 0.0,
        seed: 1,
        mode: LoadMode::Closed { concurrency: 4 },
    };

    let c = cluster();
    let closed = run_load(&c, &base);
    c.shutdown();

    let c = cluster();
    let open = run_load(
        &c,
        &LoadGenConfig {
            mode: LoadMode::Open {
                task_rate_per_sec: 1.3 * capacity_rps,
            },
            ..base
        },
    );
    c.shutdown();

    println!("{{");
    println!("  \"service_us\": {:.0},", SERVICE_NS / 1e3);
    println!("  \"capacity_rps\": {capacity_rps:.0},");
    println!("  \"tasks\": {tasks},");
    println!(
        "  \"closed\": {{\"concurrency\": 4, \"tasks_per_sec\": {:.0}, \"latency\": {}}},",
        closed.tasks_per_sec,
        latency_json(&closed.task_latency_ms)
    );
    println!(
        "  \"open\": {{\"offered_rps\": {:.0}, \"tasks_per_sec\": {:.0}, \"latency\": {}}},",
        1.3 * capacity_rps,
        open.tasks_per_sec,
        latency_json(&open.task_latency_ms)
    );
    println!(
        "  \"coordinated_omission_factor\": {:.1}",
        open.task_latency_ms.p50 / closed.task_latency_ms.p50.max(1e-9)
    );
    println!("}}");
    eprintln!(
        "closed-loop p50 {:.2}ms vs open-loop p50 {:.2}ms at 1.3x capacity — \
         the gap is the queueing delay closed-loop measurement hides",
        closed.task_latency_ms.p50, open.task_latency_ms.p50
    );
}
