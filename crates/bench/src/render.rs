//! Minimal fixed-width table rendering for benchmark reports.

/// A simple left-padded text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a header separator, columns padded to content width.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".%x+-±".contains(ch));
                if numeric && !cell.is_empty() {
                    line.push_str(&format!("{cell:>width$}", width = widths[c]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[c]));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["strategy", "p99"]);
        t.push_row(vec!["C3", "14.12"]);
        t.push_row(vec!["EqualMax - Credits", "6.87"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("strategy"));
        assert!(lines[1].starts_with("---"));
        // Numeric column right-aligned: both numbers end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }
}
