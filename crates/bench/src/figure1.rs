//! Figure 1: the worked example showing why task-aware scheduling wins.
//!
//! Setup (verbatim from the paper): clients C1 and C2 issue tasks
//! `T1 = [A, B, C]` and `T2 = [D, E]`. The replica placement routes
//! `A, E → S1`, `B, C → S2`, `D → S3`; every operation costs one time
//! unit and each server serves one operation per unit.
//!
//! * **Task-oblivious** (FIFO, T1's requests enqueue first): S1 serves
//!   A then E, so T2 completes at *2* time units.
//! * **Task-aware** (optimal): T1's bottleneck is the sub-task {B, C}
//!   (cost 2), so A has a unit of slack; serving E before A leaves T1's
//!   completion unchanged at 2 and T2 completes at *1*.
//!
//! Both of BRB's policies find the optimal schedule here: EqualMax ranks
//! all of T2 above T1 (bottleneck 1 < 2); UnifIncr gives E zero slack
//! versus A's one unit.

use brb_sched::{PolicyKind, PriorityPolicy, PriorityQueue, RequestQueue, TaskView};

/// One operation of the example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    /// Label ('A'..'E').
    label: char,
    /// Owning task (1 or 2).
    task: u8,
    /// Destination server (0-based: S1=0, S2=1, S3=2).
    server: usize,
}

const OPS: [Op; 5] = [
    Op {
        label: 'A',
        task: 1,
        server: 0,
    },
    Op {
        label: 'B',
        task: 1,
        server: 1,
    },
    Op {
        label: 'C',
        task: 1,
        server: 1,
    },
    Op {
        label: 'D',
        task: 2,
        server: 2,
    },
    Op {
        label: 'E',
        task: 2,
        server: 0,
    },
];

/// The outcome of scheduling the example under one policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure1Outcome {
    /// Completion time of T1, in time units.
    pub t1_completion: u32,
    /// Completion time of T2, in time units.
    pub t2_completion: u32,
    /// Per-server timelines, e.g. `S1: [A, E]`.
    pub timelines: Vec<String>,
}

/// Schedules the example under `policy` and returns completions plus an
/// ASCII rendering. The priorities for T1/T2 are computed through the real
/// [`PolicyKind`] implementations; servers run stable priority queues.
pub fn run_figure1(policy: PolicyKind) -> Figure1Outcome {
    // Per-task views. Unit cost = 1 per op.
    // T1: sub-tasks {A}→S1 (cost 1), {B,C}→S2 (cost 2).
    let t1 = TaskView {
        arrival_ns: 0,
        request_costs: &[1, 1, 1],
        request_subtask: &[0, 1, 1],
        subtask_costs: &[1, 2],
    };
    // T2: sub-tasks {D}→S3, {E}→S1.
    let t2 = TaskView {
        arrival_ns: 0,
        request_costs: &[1, 1],
        request_subtask: &[0, 1],
        subtask_costs: &[1, 1],
    };
    let p1 = policy.assign(&t1);
    let p2 = policy.assign(&t2);
    // Priorities per op, in OPS order (A,B,C from T1; D,E from T2). For
    // FIFO both tasks share arrival time, so insertion order (T1 first,
    // matching the paper's "task-oblivious" scenario) decides.
    let prio = [p1[0], p1[1], p1[2], p2[0], p2[1]];

    // Three single-core servers with stable priority queues.
    let mut queues: Vec<PriorityQueue<Op>> = (0..3).map(|_| PriorityQueue::new()).collect();
    for (op, p) in OPS.iter().zip(prio) {
        queues[op.server].push(p, *op);
    }

    let mut timelines = Vec::new();
    let mut t1_completion = 0u32;
    let mut t2_completion = 0u32;
    for (s, q) in queues.iter_mut().enumerate() {
        let mut cells = Vec::new();
        let mut t = 0u32;
        while let Some((_, op)) = q.pop() {
            t += 1; // unit service
            cells.push(op.label.to_string());
            if op.task == 1 {
                t1_completion = t1_completion.max(t);
            } else {
                t2_completion = t2_completion.max(t);
            }
        }
        timelines.push(format!("S{}: [{}]", s + 1, cells.join(", ")));
    }
    Figure1Outcome {
        t1_completion,
        t2_completion,
        timelines,
    }
}

/// Renders the full Figure 1 comparison (oblivious vs both BRB policies).
pub fn render_figure1() -> String {
    let mut out = String::new();
    out.push_str("Figure 1 — T1=[A,B,C], T2=[D,E]; A,E->S1  B,C->S2  D->S3; unit costs\n\n");
    for (name, policy) in [
        ("Task-oblivious (FIFO)", PolicyKind::Fifo),
        ("BRB EqualMax", PolicyKind::EqualMax),
        ("BRB UnifIncr", PolicyKind::UnifIncr),
    ] {
        let o = run_figure1(policy);
        out.push_str(&format!("{name}:\n"));
        for line in &o.timelines {
            out.push_str(&format!("  {line}\n"));
        }
        out.push_str(&format!(
            "  T1 completes at {}; T2 completes at {}\n\n",
            o.t1_completion, o.t2_completion
        ));
    }
    out.push_str(
        "Paper's point: the oblivious schedule delays T2 to 2 units; the\n\
         task-aware schedule serves E before A (A has slack behind T1's\n\
         bottleneck {B,C}), completing T2 in 1 unit at no cost to T1.\n",
    );
    out
}

/// Asserts the exact claims the figure makes. Used by tests and the
/// binary's self-check.
pub fn verify_figure1() -> Result<(), String> {
    let oblivious = run_figure1(PolicyKind::Fifo);
    if oblivious.t2_completion != 2 || oblivious.t1_completion != 2 {
        return Err(format!("oblivious schedule wrong: {oblivious:?}"));
    }
    for policy in [PolicyKind::EqualMax, PolicyKind::UnifIncr] {
        let optimal = run_figure1(policy);
        if optimal.t2_completion != 1 || optimal.t1_completion != 2 {
            return Err(format!(
                "{policy:?} failed to find the optimum: {optimal:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_claims_hold_exactly() {
        verify_figure1().expect("figure 1 reproduction");
    }

    #[test]
    fn oblivious_serves_a_before_e() {
        let o = run_figure1(PolicyKind::Fifo);
        assert_eq!(o.timelines[0], "S1: [A, E]");
    }

    #[test]
    fn task_aware_serves_e_before_a() {
        for policy in [PolicyKind::EqualMax, PolicyKind::UnifIncr] {
            let o = run_figure1(policy);
            assert_eq!(o.timelines[0], "S1: [E, A]", "{policy:?}");
        }
    }

    #[test]
    fn render_mentions_both_schedules() {
        let s = render_figure1();
        assert!(s.contains("Task-oblivious"));
        assert!(s.contains("EqualMax"));
        assert!(s.contains("T2 completes at 1"));
        assert!(s.contains("T2 completes at 2"));
    }
}
