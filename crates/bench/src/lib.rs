//! # brb-bench — the figure/table regeneration harness
//!
//! One module per paper artifact plus the ablation sweeps DESIGN.md calls
//! out:
//!
//! * [`figure1`] — the worked scheduling example (task-oblivious vs
//!   task-aware), rendered as ASCII timelines and asserted exactly.
//! * [`figure2`] — the headline evaluation: five strategies × three
//!   percentiles, multi-seed averaged, with the paper's two quantitative
//!   claims checked programmatically.
//! * [`sweeps`] — load sweep, fan-out sweep, credit-interval sweep and the
//!   selector × policy ablation matrix.
//! * [`render`] — fixed-width table rendering shared by the binaries.
//!
//! Binaries: `figure1`, `figure2`, `sweep_load`, `sweep_fanout`,
//! `ablation` (see `cargo run --release -p brb-bench --bin ...`).

pub mod figure1;
pub mod figure2;
pub mod render;
pub mod sweeps;

pub use figure1::{run_figure1, Figure1Outcome};
pub use figure2::{check_claims, render_figure2, run_figure2, ClaimCheck, Figure2Options};
pub use render::Table;
