//! The compiled network fast path.
//!
//! [`Fabric::delay`] resolves a latency model and samples it once per
//! message — a cost the engine pays several times per request, millions
//! of times per run. A [`FabricPlan`] is compiled **once** from a
//! fabric: every directed `(src, dst)` hop is resolved ahead of time,
//! and hops whose delay is a size-independent constant (the paper's
//! 50 µs mesh) collapse to a single precomputed delta — timestamping a
//! message becomes one add, with no model match, no hash probe and no
//! RNG touch. Jittered links (uniform, log-normal, spiky) and
//! bandwidth-serialized transfers fall back to the per-message draw
//! *through the same interface*, consuming the caller's RNG stream
//! identically to the uncompiled fabric, so results are byte-identical
//! by construction (`brb-lab`'s `net_differential` test enforces this
//! for every registry preset).
//!
//! Only [`LatencyModel::Constant`] compiles to a delta: a degenerate
//! `Uniform { lo == hi }` still consumes one RNG draw per sample, so
//! folding it into a constant would shift every later draw in the
//! stream and silently change results against the slow path.

use crate::fabric::{Fabric, NetNodeId};
use crate::latency::LatencyModel;
use brb_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether delays resolve through the compiled plan or are forced
/// through the historical per-message fabric draw.
///
/// `PerMessage` exists for the differential test harness and the
/// `kernel_bench` before/after comparison: it is the exact pre-plan
/// code path ([`Fabric::delay`] per message), kept callable so any
/// behavioural divergence in the fast path is a test failure rather
/// than a silent drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlanMode {
    /// Resolve hops through the precomputed delta table (the fast path).
    #[default]
    Compiled,
    /// Draw through `Fabric::delay` per message (the reference slow
    /// path).
    PerMessage,
}

/// One directed hop after compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CompiledHop {
    /// Size-independent constant propagation: delivery is `now + delta`
    /// and the RNG is never touched.
    Const(SimDuration),
    /// Constant propagation plus size-dependent serialization (still no
    /// RNG; the bandwidth term is added per message).
    ConstSerialized(SimDuration),
    /// Jittered link: draw through the pair's latency model per message.
    Sampled,
}

fn compile_hop(model: &LatencyModel, has_bandwidth: bool) -> CompiledHop {
    match (model, has_bandwidth) {
        (LatencyModel::Constant { delay_ns }, false) => {
            CompiledHop::Const(SimDuration::from_nanos(*delay_ns))
        }
        (LatencyModel::Constant { delay_ns }, true) => {
            CompiledHop::ConstSerialized(SimDuration::from_nanos(*delay_ns))
        }
        _ => CompiledHop::Sampled,
    }
}

/// A fabric compiled into per-hop deltas.
///
/// Homogeneous meshes (no per-link overrides — the common case) resolve
/// every hop through one `default_hop`; meshes with overrides build a
/// dense `num_nodes × num_nodes` table so the per-message lookup is one
/// indexed load instead of a hash probe.
#[derive(Debug, Clone)]
pub struct FabricPlan {
    fabric: Fabric,
    mode: PlanMode,
    /// Resolution shared by every pair without an override.
    default_hop: CompiledHop,
    /// Dense per-pair resolutions (row-major `from × to`); empty when
    /// the mesh has no overrides.
    table: Vec<CompiledHop>,
    num_nodes: u64,
}

impl FabricPlan {
    /// Compiles `fabric` for a mesh of `num_nodes` nodes (every
    /// [`NetNodeId`] the caller will query must be `< num_nodes`).
    ///
    /// # Panics
    /// Panics if an override references a node outside the mesh, or if
    /// an override-carrying mesh is too large for a dense table.
    pub fn compile(fabric: Fabric, num_nodes: u64) -> Self {
        let default_hop = compile_hop(fabric.default_model(), fabric.bandwidth().is_some());
        let table = if fabric.has_overrides() {
            assert!(
                num_nodes <= 4_096,
                "dense per-pair table would need {num_nodes}² entries; \
                 compile override-heavy meshes only for small clusters"
            );
            for &(from, to) in fabric.overrides().map(|(pair, _)| pair) {
                assert!(
                    from.raw() < num_nodes && to.raw() < num_nodes,
                    "override ({from:?}, {to:?}) outside the {num_nodes}-node mesh"
                );
            }
            let has_bw = fabric.bandwidth().is_some();
            let n = num_nodes as usize;
            let mut table = Vec::with_capacity(n * n);
            for from in 0..num_nodes {
                for to in 0..num_nodes {
                    let model = fabric.model_for(NetNodeId::new(from), NetNodeId::new(to));
                    table.push(compile_hop(model, has_bw));
                }
            }
            table
        } else {
            Vec::new()
        };
        FabricPlan {
            fabric,
            mode: PlanMode::Compiled,
            default_hop,
            table,
            num_nodes,
        }
    }

    /// A plan that forces the per-message slow path — the differential
    /// baseline. Same interface, zero precomputation: every delay call
    /// routes straight to [`Fabric::delay`], so no per-pair table is
    /// built (and no mesh-size limit applies).
    pub fn per_message(fabric: Fabric, num_nodes: u64) -> Self {
        let default_hop = compile_hop(fabric.default_model(), fabric.bandwidth().is_some());
        FabricPlan {
            fabric,
            mode: PlanMode::PerMessage,
            default_hop,
            table: Vec::new(),
            num_nodes,
        }
    }

    /// Builds a plan in the given mode.
    pub fn with_mode(fabric: Fabric, num_nodes: u64, mode: PlanMode) -> Self {
        match mode {
            PlanMode::Compiled => Self::compile(fabric, num_nodes),
            PlanMode::PerMessage => Self::per_message(fabric, num_nodes),
        }
    }

    /// The mode this plan resolves in.
    pub fn mode(&self) -> PlanMode {
        self.mode
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    #[inline]
    fn hop(&self, from: NetNodeId, to: NetNodeId) -> CompiledHop {
        if self.table.is_empty() {
            self.default_hop
        } else {
            debug_assert!(from.raw() < self.num_nodes && to.raw() < self.num_nodes);
            self.table[(from.raw() * self.num_nodes + to.raw()) as usize]
        }
    }

    /// The single mesh-wide constant delta, when **every** hop of a
    /// compiled plan is the same size-independent constant (no
    /// overrides, no bandwidth, no jitter — the paper's fabric). This is
    /// what lets the engine batch hops into the calendar's fixed-delta
    /// lane; `None` means at least one hop needs per-message resolution
    /// (or the plan is a forced slow path).
    pub fn uniform_const(&self) -> Option<SimDuration> {
        match (self.mode, self.table.is_empty(), self.default_hop) {
            (PlanMode::Compiled, true, CompiledHop::Const(d)) => Some(d),
            _ => None,
        }
    }

    /// The precomputed size-independent delta of one directed hop, if
    /// that hop compiled to a constant.
    pub fn const_hop(&self, from: NetNodeId, to: NetNodeId) -> Option<SimDuration> {
        match (self.mode, self.hop(from, to)) {
            (PlanMode::Compiled, CompiledHop::Const(d)) => Some(d),
            _ => None,
        }
    }

    /// Samples the total one-way delay for a `bytes`-sized message —
    /// the drop-in replacement for [`Fabric::delay`]. Constant hops
    /// never touch `rng`; jittered hops (and the forced slow path)
    /// consume it exactly as the uncompiled fabric would.
    #[inline]
    pub fn delay<R: Rng + ?Sized>(
        &self,
        from: NetNodeId,
        to: NetNodeId,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        if self.mode == PlanMode::PerMessage {
            return self.fabric.delay(from, to, bytes, rng);
        }
        match self.hop(from, to) {
            CompiledHop::Const(d) => d,
            CompiledHop::ConstSerialized(propagation) => {
                let bw = self
                    .fabric
                    .bandwidth()
                    .expect("serialized hop without bandwidth");
                propagation + bw.serialization_delay(bytes)
            }
            CompiledHop::Sampled => self.fabric.delay(from, to, bytes, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Bandwidth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn node(i: u64) -> NetNodeId {
        NetNodeId::new(i)
    }

    #[test]
    fn constant_mesh_compiles_to_one_delta() {
        let plan = FabricPlan::compile(Fabric::paper_default(), 28);
        assert_eq!(plan.uniform_const(), Some(SimDuration::from_micros(50)));
        assert_eq!(
            plan.const_hop(node(0), node(19)),
            Some(SimDuration::from_micros(50))
        );
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            plan.delay(node(0), node(19), 1 << 20, &mut rng),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn per_message_mode_reports_no_constants() {
        let plan = FabricPlan::per_message(Fabric::paper_default(), 28);
        assert_eq!(plan.uniform_const(), None);
        assert_eq!(plan.const_hop(node(0), node(1)), None);
        // ... but still answers delays, through the fabric.
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            plan.delay(node(0), node(1), 64, &mut rng),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn bandwidth_keeps_serialization_per_message() {
        let fabric = Fabric::paper_default().with_bandwidth(Bandwidth {
            bytes_per_sec: 1e9, // 1µs per KB
        });
        let plan = FabricPlan::compile(fabric, 4);
        // Size-dependent: no mesh-wide constant, no per-hop constant.
        assert_eq!(plan.uniform_const(), None);
        assert_eq!(plan.const_hop(node(0), node(1)), None);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            plan.delay(node(0), node(1), 1_000, &mut rng),
            SimDuration::from_micros(51)
        );
    }

    #[test]
    fn jittered_mesh_falls_back_to_sampling_identically() {
        let fabric = Fabric::uniform(LatencyModel::Uniform {
            lo_ns: 10_000,
            hi_ns: 90_000,
        });
        let plan = FabricPlan::compile(fabric.clone(), 8);
        assert_eq!(plan.uniform_const(), None);
        // Identical RNG consumption: the same seed gives the same draw
        // sequence through the plan and through the raw fabric.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert_eq!(
                plan.delay(node(1), node(2), 100, &mut a),
                fabric.delay(node(1), node(2), 100, &mut b)
            );
        }
    }

    #[test]
    fn overrides_build_a_dense_table() {
        let mut fabric = Fabric::paper_default();
        fabric.set_link(
            node(0),
            node(1),
            LatencyModel::Constant { delay_ns: 500_000 },
        );
        fabric.set_link(
            node(1),
            node(0),
            LatencyModel::LogNormal {
                median_ns: 50_000,
                sigma: 0.2,
            },
        );
        let plan = FabricPlan::compile(fabric.clone(), 3);
        // A heterogeneous mesh has no mesh-wide constant...
        assert_eq!(plan.uniform_const(), None);
        // ...but individual constant hops still resolve to deltas.
        assert_eq!(
            plan.const_hop(node(0), node(1)),
            Some(SimDuration::from_micros(500))
        );
        assert_eq!(
            plan.const_hop(node(2), node(0)),
            Some(SimDuration::from_micros(50))
        );
        assert_eq!(plan.const_hop(node(1), node(0)), None);
        // The jittered link consumes the RNG exactly like the fabric.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(
                plan.delay(node(1), node(0), 0, &mut a),
                fabric.delay(node(1), node(0), 0, &mut b)
            );
        }
    }

    #[test]
    fn per_message_skips_table_construction() {
        // The slow path never consults the table, so an override-heavy
        // mesh far beyond the dense-table limit must still build (and
        // answer) in PerMessage mode.
        let mut fabric = Fabric::paper_default();
        fabric.set_link(node(0), node(9_999), LatencyModel::Constant { delay_ns: 1 });
        let plan = FabricPlan::per_message(fabric, 10_000);
        assert_eq!(plan.mode(), PlanMode::PerMessage);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            plan.delay(node(0), node(9_999), 0, &mut rng),
            SimDuration::from_nanos(1)
        );
        assert_eq!(
            plan.delay(node(5), node(6), 0, &mut rng),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn overrides_outside_the_mesh_are_rejected() {
        let mut fabric = Fabric::paper_default();
        fabric.set_link(node(0), node(9), LatencyModel::Constant { delay_ns: 1 });
        FabricPlan::compile(fabric, 4);
    }

    #[test]
    fn plan_mode_default_is_compiled() {
        assert_eq!(PlanMode::default(), PlanMode::Compiled);
        let json = serde_json::to_string(&PlanMode::PerMessage).unwrap();
        let back: PlanMode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PlanMode::PerMessage);
    }
}
