//! # brb-net — simulated network substrate
//!
//! The paper sets a one-way network latency of 50 µs between application
//! servers and the data store. This crate models message delay for the
//! discrete-event engine:
//!
//! * [`latency::LatencyModel`] — per-message one-way delay distributions
//!   (constant, uniform, log-normal jitter, empirical mixtures).
//! * [`fabric::Fabric`] — a full-mesh fabric mapping `(from, to)` node
//!   pairs to latency models, with optional per-link overrides and an
//!   optional bandwidth term that serializes large values onto the wire.
//! * [`plan::FabricPlan`] — the fabric compiled into per-hop deltas:
//!   constant meshes resolve a hop with one precomputed add, jittered
//!   links fall back to the per-message model draw through the same
//!   interface (see `README.md` for when each path is taken).
//!
//! The fabric computes *delays*; actually scheduling delivery events is
//! the engine's job (`brb-core`), keeping this crate independent of the
//! event alphabet.

pub mod fabric;
pub mod latency;
pub mod plan;

pub use fabric::{Bandwidth, Fabric, NetNodeId};
pub use latency::LatencyModel;
pub use plan::{FabricPlan, PlanMode};
