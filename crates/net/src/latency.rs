//! One-way message latency models.

use brb_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over one-way network delays.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long (the paper's 50 µs setting).
    Constant {
        /// The fixed one-way delay in nanoseconds.
        delay_ns: u64,
    },
    /// Uniform in `[lo_ns, hi_ns]`.
    Uniform {
        /// Lower bound (ns).
        lo_ns: u64,
        /// Upper bound (ns), inclusive.
        hi_ns: u64,
    },
    /// Log-normal jitter around a median: `exp(ln(median) + sigma·Z)`.
    /// Captures the long-tailed RTT jitter of real datacenter fabrics.
    LogNormal {
        /// Median one-way delay (ns).
        median_ns: u64,
        /// Log-scale standard deviation (0.1–0.5 are realistic).
        sigma: f64,
    },
    /// Mixture: mostly `base`, with probability `p_spike` an additive
    /// spike uniform in `[spike_lo_ns, spike_hi_ns]` (models transient
    /// congestion or in-network queueing).
    Spiky {
        /// Base one-way delay (ns).
        base_ns: u64,
        /// Probability of a spike per message, in `[0, 1]`.
        p_spike: f64,
        /// Minimum additional spike delay (ns).
        spike_lo_ns: u64,
        /// Maximum additional spike delay (ns).
        spike_hi_ns: u64,
    },
}

impl LatencyModel {
    /// The paper's configuration: constant 50 µs one-way.
    pub fn paper_constant() -> Self {
        LatencyModel::Constant { delay_ns: 50_000 }
    }

    /// Validates parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            LatencyModel::Constant { .. } => Ok(()),
            LatencyModel::Uniform { lo_ns, hi_ns } => {
                if lo_ns > hi_ns {
                    Err(format!("uniform latency range inverted [{lo_ns}, {hi_ns}]"))
                } else {
                    Ok(())
                }
            }
            LatencyModel::LogNormal { median_ns, sigma } => {
                if *median_ns == 0 {
                    Err("log-normal median must be positive".into())
                } else if sigma.is_nan() || *sigma < 0.0 {
                    Err(format!("log-normal sigma must be >= 0, got {sigma}"))
                } else {
                    Ok(())
                }
            }
            LatencyModel::Spiky {
                p_spike,
                spike_lo_ns,
                spike_hi_ns,
                ..
            } => {
                if !(0.0..=1.0).contains(p_spike) {
                    Err(format!("spike probability out of range: {p_spike}"))
                } else if spike_lo_ns > spike_hi_ns {
                    Err("spike range inverted".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Mean one-way delay in nanoseconds (exact where closed-form exists).
    pub fn mean_ns(&self) -> f64 {
        match self {
            LatencyModel::Constant { delay_ns } => *delay_ns as f64,
            LatencyModel::Uniform { lo_ns, hi_ns } => (*lo_ns as f64 + *hi_ns as f64) / 2.0,
            LatencyModel::LogNormal { median_ns, sigma } => {
                *median_ns as f64 * (sigma * sigma / 2.0).exp()
            }
            LatencyModel::Spiky {
                base_ns,
                p_spike,
                spike_lo_ns,
                spike_hi_ns,
            } => *base_ns as f64 + p_spike * (*spike_lo_ns as f64 + *spike_hi_ns as f64) / 2.0,
        }
    }

    /// Draws a one-way delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        debug_assert!(self.validate().is_ok());
        let ns = match self {
            LatencyModel::Constant { delay_ns } => *delay_ns,
            LatencyModel::Uniform { lo_ns, hi_ns } => rng.random_range(*lo_ns..=*hi_ns),
            LatencyModel::LogNormal { median_ns, sigma } => {
                // Ziggurat standard normal from `brb_sim::dist` — the
                // delay path runs per message, so the draw is hot.
                let z = brb_sim::dist::standard_normal(rng);
                let ns = (*median_ns as f64) * (sigma * z).exp();
                ns.round().max(0.0).min(u64::MAX as f64) as u64
            }
            LatencyModel::Spiky {
                base_ns,
                p_spike,
                spike_lo_ns,
                spike_hi_ns,
            } => {
                let mut ns = *base_ns;
                if rng.random::<f64>() < *p_spike {
                    ns += rng.random_range(*spike_lo_ns..=*spike_hi_ns);
                }
                ns
            }
        };
        SimDuration::from_nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_constant_is_50us() {
        let m = LatencyModel::paper_constant();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng), SimDuration::from_micros(50));
        assert_eq!(m.mean_ns(), 50_000.0);
    }

    #[test]
    fn uniform_stays_in_range_and_averages() {
        let m = LatencyModel::Uniform {
            lo_ns: 10_000,
            hi_ns: 90_000,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0u64;
        let n = 50_000;
        for _ in 0..n {
            let d = m.sample(&mut rng).as_nanos();
            assert!((10_000..=90_000).contains(&d));
            sum += d;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - m.mean_ns()).abs() / m.mean_ns() < 0.02);
    }

    #[test]
    fn lognormal_median_and_mean() {
        let m = LatencyModel::LogNormal {
            median_ns: 50_000,
            sigma: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<u64> = (0..50_000).map(|_| m.sample(&mut rng).as_nanos()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!(
            (median - 50_000.0).abs() / 50_000.0 < 0.03,
            "median {median}"
        );
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!(
            (mean - m.mean_ns()).abs() / m.mean_ns() < 0.03,
            "mean {mean}"
        );
        assert!(mean > median, "log-normal is right-skewed");
    }

    #[test]
    fn spiky_spikes_at_expected_rate() {
        let m = LatencyModel::Spiky {
            base_ns: 50_000,
            p_spike: 0.1,
            spike_lo_ns: 100_000,
            spike_hi_ns: 200_000,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let spikes = (0..n)
            .filter(|_| m.sample(&mut rng).as_nanos() > 50_000)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "spike rate {rate}");
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(LatencyModel::Uniform { lo_ns: 5, hi_ns: 1 }
            .validate()
            .is_err());
        assert!(LatencyModel::LogNormal {
            median_ns: 0,
            sigma: 0.1
        }
        .validate()
        .is_err());
        assert!(LatencyModel::LogNormal {
            median_ns: 1,
            sigma: -1.0
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Spiky {
            base_ns: 1,
            p_spike: 1.5,
            spike_lo_ns: 0,
            spike_hi_ns: 1
        }
        .validate()
        .is_err());
        assert!(LatencyModel::paper_constant().validate().is_ok());
    }
}
