//! A full-mesh fabric: per-pair latency models plus optional bandwidth.
//!
//! The engine asks the fabric how long a message of `bytes` takes from
//! node A to node B; the fabric answers with `propagation + serialization`
//! where propagation comes from the pair's [`LatencyModel`] and
//! serialization (optional) is `bytes / bandwidth`. The paper models only
//! fixed 50 µs propagation, which is the default; bandwidth lets ablations
//! explore size-dependent transfer costs.

use crate::latency::LatencyModel;
use brb_sim::{define_id, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

define_id!(
    /// Identifies a node attached to the fabric (clients, servers and the
    /// controller all get fabric node ids).
    NetNodeId
);

/// Link bandwidth in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bandwidth {
    /// Bytes per second (> 0).
    pub bytes_per_sec: f64,
}

impl Bandwidth {
    /// 10 Gbit/s — a typical datacenter NIC of the paper's era.
    pub fn ten_gbps() -> Self {
        Bandwidth {
            bytes_per_sec: 10e9 / 8.0,
        }
    }

    /// Serialization delay for a message of `bytes`.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        debug_assert!(self.bytes_per_sec > 0.0);
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// A full-mesh fabric with a default latency model, optional per-pair
/// overrides and optional bandwidth-based serialization.
#[derive(Debug, Clone)]
pub struct Fabric {
    default_model: LatencyModel,
    overrides: BTreeMap<(NetNodeId, NetNodeId), LatencyModel>,
    bandwidth: Option<Bandwidth>,
}

impl Fabric {
    /// Creates a fabric where every pair uses `default_model` and transfer
    /// time ignores message size (the paper's model).
    pub fn uniform(default_model: LatencyModel) -> Self {
        default_model.validate().expect("invalid latency model");
        Fabric {
            default_model,
            overrides: BTreeMap::new(),
            bandwidth: None,
        }
    }

    /// The paper's fabric: constant 50 µs one-way everywhere.
    pub fn paper_default() -> Self {
        Fabric::uniform(LatencyModel::paper_constant())
    }

    /// Enables size-dependent serialization on every link.
    pub fn with_bandwidth(mut self, bw: Bandwidth) -> Self {
        assert!(bw.bytes_per_sec > 0.0, "bandwidth must be positive");
        self.bandwidth = Some(bw);
        self
    }

    /// Overrides the latency model for the directed pair `(from, to)` —
    /// e.g. to model one degraded rack uplink.
    pub fn set_link(&mut self, from: NetNodeId, to: NetNodeId, model: LatencyModel) {
        model.validate().expect("invalid latency model");
        self.overrides.insert((from, to), model);
    }

    /// The latency model used for the directed pair.
    pub fn model_for(&self, from: NetNodeId, to: NetNodeId) -> &LatencyModel {
        // Fast path for the (common) homogeneous fabric: skip the tree
        // probe entirely — `delay` runs a few times per request, so the
        // lookup is hot even though the map is almost always empty.
        if self.overrides.is_empty() {
            return &self.default_model;
        }
        self.overrides
            .get(&(from, to))
            .unwrap_or(&self.default_model)
    }

    /// Samples the total one-way delay for a `bytes`-sized message.
    pub fn delay<R: Rng + ?Sized>(
        &self,
        from: NetNodeId,
        to: NetNodeId,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        let propagation = self.model_for(from, to).sample(rng);
        match self.bandwidth {
            None => propagation,
            Some(bw) => propagation + bw.serialization_delay(bytes),
        }
    }

    /// Mean one-way propagation delay of the default model (ns).
    pub fn mean_propagation_ns(&self) -> f64 {
        self.default_model.mean_ns()
    }

    // Introspection for plan compilation (`crate::plan::FabricPlan`).

    /// The default (mesh-wide) latency model.
    pub fn default_model(&self) -> &LatencyModel {
        &self.default_model
    }

    /// The optional bandwidth term.
    pub fn bandwidth(&self) -> Option<Bandwidth> {
        self.bandwidth
    }

    /// Whether any per-pair override exists.
    pub fn has_overrides(&self) -> bool {
        !self.overrides.is_empty()
    }

    /// Iterates the per-pair latency overrides.
    pub fn overrides(&self) -> impl Iterator<Item = (&(NetNodeId, NetNodeId), &LatencyModel)> {
        self.overrides.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_is_size_independent_50us() {
        let f = Fabric::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let a = NetNodeId::new(0);
        let b = NetNodeId::new(1);
        assert_eq!(f.delay(a, b, 1, &mut rng), SimDuration::from_micros(50));
        assert_eq!(
            f.delay(a, b, 1 << 20, &mut rng),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn bandwidth_adds_serialization() {
        let f = Fabric::paper_default().with_bandwidth(Bandwidth {
            bytes_per_sec: 1e9, // 1 GB/s → 1µs per KB
        });
        let mut rng = StdRng::seed_from_u64(2);
        let d = f.delay(NetNodeId::new(0), NetNodeId::new(1), 1_000, &mut rng);
        assert_eq!(d, SimDuration::from_micros(51));
    }

    #[test]
    fn link_override_applies_directionally() {
        let mut f = Fabric::paper_default();
        let a = NetNodeId::new(0);
        let b = NetNodeId::new(1);
        f.set_link(a, b, LatencyModel::Constant { delay_ns: 500_000 });
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(f.delay(a, b, 0, &mut rng), SimDuration::from_micros(500));
        // Reverse direction keeps the default.
        assert_eq!(f.delay(b, a, 0, &mut rng), SimDuration::from_micros(50));
    }

    #[test]
    fn ten_gbps_serialization_math() {
        let bw = Bandwidth::ten_gbps();
        // 1250 bytes at 10 Gbit/s = 1 µs.
        assert_eq!(bw.serialization_delay(1250), SimDuration::from_micros(1));
    }

    #[test]
    fn mean_propagation_reports_default_model() {
        let f = Fabric::uniform(LatencyModel::Uniform {
            lo_ns: 0,
            hi_ns: 100,
        });
        assert_eq!(f.mean_propagation_ns(), 50.0);
    }
}
