//! Property-based tests on the C3 baseline's scoring and rate control.

use brb_select::{
    C3Config, C3Selector, ReplicaSelector, ResponseFeedback, Selection, SelectionCtx,
};
use brb_store::ids::ServerId;
use proptest::prelude::*;

fn fb(response_us: u64, queue: u64, service_us: u64) -> ResponseFeedback {
    ResponseFeedback {
        response_time_ns: response_us * 1_000,
        queue_len: queue,
        service_time_ns: service_us * 1_000,
    }
}

proptest! {
    /// The C3 score is monotone in the piggybacked queue length, all else
    /// equal: deeper queues must never score better.
    #[test]
    fn score_monotone_in_queue_length(q1 in 0u64..100, q2 in 0u64..100) {
        prop_assume!(q1 < q2);
        let mut c3 = C3Selector::new(C3Config::paper_default(18));
        let a = ServerId::new(0);
        let b = ServerId::new(1);
        c3.on_response(a, 1_000, &fb(500, q1, 280));
        c3.on_response(b, 1_000, &fb(500, q2, 280));
        prop_assert!(
            c3.score(a) <= c3.score(b),
            "queue {q1} scored worse than {q2}: {} vs {}",
            c3.score(a),
            c3.score(b)
        );
    }

    /// Selection always returns a candidate from the provided list (never
    /// invents servers), and outstanding counts track dispatches minus
    /// responses exactly.
    #[test]
    fn selection_stays_within_candidates(
        picks in 1usize..50,
        servers in proptest::collection::vec(0u64..32, 1..6),
    ) {
        let distinct: Vec<ServerId> = {
            let mut s: Vec<u64> = servers.clone();
            s.sort_unstable();
            s.dedup();
            s.into_iter().map(ServerId::new).collect()
        };
        let mut c3 = C3Selector::new(C3Config::paper_default(18));
        let mut dispatched = std::collections::HashMap::new();
        for i in 0..picks {
            let ctx = SelectionCtx {
                now_ns: i as u64 * 1_000_000,
                candidates: &distinct,
                value_bytes: 100,
                oracle_queue_depths: None,
            };
            match c3.select(&ctx) {
                Selection::Dispatch(s) => {
                    prop_assert!(distinct.contains(&s), "picked non-candidate {s}");
                    *dispatched.entry(s).or_insert(0u64) += 1;
                }
                Selection::RateLimited { retry_in_ns } => {
                    prop_assert!(retry_in_ns > 0);
                }
            }
        }
        for (&s, &n) in &dispatched {
            prop_assert_eq!(c3.outstanding(s), n);
        }
        // Acknowledge everything; outstanding must return to zero.
        for (&s, &n) in &dispatched {
            for _ in 0..n {
                c3.on_response(s, 10_000_000, &fb(400, 1, 280));
            }
            prop_assert_eq!(c3.outstanding(s), 0);
        }
    }

    /// The rate limit always stays within the configured envelope, no
    /// matter the feedback pattern.
    #[test]
    fn rate_limit_stays_in_envelope(
        events in proptest::collection::vec((0u64..2_000_000, proptest::bool::ANY), 1..200),
    ) {
        let config = C3Config::paper_default(18);
        let mut c3 = C3Selector::new(config);
        let s = ServerId::new(0);
        let cands = [s];
        let mut now = 0u64;
        for (dt, is_ack) in events {
            now += dt;
            if is_ack {
                c3.on_response(s, now, &fb(500, 2, 280));
            } else {
                let _ = c3.select(&SelectionCtx {
                    now_ns: now,
                    candidates: &cands,
                    value_bytes: 64,
                    oracle_queue_depths: None,
                });
            }
            let rate = c3.rate_limit(s);
            prop_assert!(
                rate >= config.min_rate && rate <= config.max_rate,
                "rate {rate} escaped [{}, {}]",
                config.min_rate,
                config.max_rate
            );
        }
    }
}
