//! # brb-select — replica selection strategies
//!
//! "replicated data stores provide the opportunity to lower latencies via
//! intelligent replica selection: that is, selecting one out of multiple
//! replica servers to serve a request in a load-aware fashion" (§2).
//!
//! This crate implements the selection strategies the evaluation needs:
//!
//! * [`c3::C3Selector`] — the state-of-the-art baseline the paper compares
//!   against (Suresh et al., NSDI 2015): per-server scoring from EWMAs of
//!   response time, service rate and piggybacked queue size, with cubic
//!   queue penalty and concurrency compensation, plus CUBIC-style
//!   client-side rate control per server.
//! * [`simple::RandomSelector`], [`simple::RoundRobinSelector`],
//!   [`simple::LeastOutstandingSelector`] — classic baselines.
//! * [`simple::OracleSelector`] — picks the replica with the shortest
//!   *true* queue (engine-provided hint); an unrealizable upper bound for
//!   selection quality.
//!
//! All selectors implement [`ReplicaSelector`] and are driven by the
//! engine through dispatch/response feedback callbacks.

pub mod c3;
pub mod feedback;
pub mod simple;
pub mod spec;

pub use c3::{C3Config, C3Selector};
pub use feedback::{ResponseFeedback, Selection, SelectionCtx};
pub use simple::{LeastOutstandingSelector, OracleSelector, RandomSelector, RoundRobinSelector};
pub use spec::SelectorSpec;

use brb_store::ids::ServerId;

/// A client-side replica selection strategy.
///
/// One selector instance lives per *client*; all state it keeps is local
/// to that client (the decentralized setting the paper stresses).
pub trait ReplicaSelector {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Chooses a replica for the request described by `ctx`, or reports
    /// that every candidate is rate-limited. On `Selection::Dispatch` the
    /// selector has already accounted the request as outstanding.
    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection;

    /// Feedback when a response arrives from `server`.
    fn on_response(&mut self, server: ServerId, now_ns: u64, feedback: &ResponseFeedback);

    /// A dispatched request to `server` will never produce a response
    /// the selector sees (the caller abandoned it): release any
    /// outstanding-request accounting taken at `select` time *without*
    /// updating response statistics. Exactly one of `on_response` /
    /// `on_abandon` must be called per dispatch.
    fn on_abandon(&mut self, server: ServerId) {
        let _ = server;
    }

    /// The number of requests this client currently has in flight to
    /// `server` (diagnostics; selectors that do not track it return 0).
    fn outstanding(&self, server: ServerId) -> u64 {
        let _ = server;
        0
    }
}
