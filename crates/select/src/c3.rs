//! The C3 baseline: adaptive replica selection with cubic queue penalty
//! and client-side rate control (Suresh et al., *C3: Cutting Tail Latency
//! in Cloud Data Stores via Adaptive Replica Selection*, NSDI 2015).
//!
//! Per the original design, each client maintains, per server:
//!
//! * EWMAs of observed response time `R̄`, piggybacked service time `s̄`
//!   (= 1/µ̄) and piggybacked queue length `q̄`;
//! * its own outstanding-request count `os`;
//! * the **score** `Ψ = (R̄ − s̄) + q̂³ · s̄` with the concurrency-
//!   compensated queue estimate `q̂ = 1 + os·w + q̄` (w ≈ number of
//!   clients) — the cubic term penalizes long queues superlinearly so
//!   clients back off *before* a server saturates;
//! * a **CUBIC-style send-rate limiter**: sending and receive rates are
//!   measured over a window; when the receive rate falls behind the send
//!   rate the limit drops multiplicatively (β) and then grows back along a
//!   cubic curve anchored at the old maximum.
//!
//! C3 is deliberately *task-oblivious*: every request is placed
//! independently, which is exactly the gap BRB's task-aware scheduling
//! closes.

use crate::feedback::{ResponseFeedback, Selection, SelectionCtx};
use crate::ReplicaSelector;
use brb_store::ids::ServerId;
use serde::{Deserialize, Serialize};

/// C3 tuning parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct C3Config {
    /// EWMA weight of a new sample, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Concurrency compensation `w` in `q̂ = 1 + os·w + q̄` (the C3 paper
    /// uses the number of clients).
    pub concurrency_weight: f64,
    /// Multiplicative decrease factor β in `(0, 1)`.
    pub rate_beta: f64,
    /// CUBIC scaling constant C (rps per s³).
    pub rate_scaling: f64,
    /// Rate measurement window (ns).
    pub rate_interval_ns: u64,
    /// Initial per-server send-rate limit (requests/s).
    pub initial_rate: f64,
    /// Send-rate floor (requests/s) so probing never stops.
    pub min_rate: f64,
    /// Send-rate ceiling (requests/s).
    pub max_rate: f64,
    /// Token-bucket burst in seconds of rate.
    pub burst_secs: f64,
}

impl C3Config {
    /// Defaults matching the paper's setting with `num_clients` clients.
    pub fn paper_default(num_clients: u32) -> Self {
        C3Config {
            ewma_alpha: 0.2,
            concurrency_weight: num_clients as f64,
            rate_beta: 0.5,
            rate_scaling: 8_000.0,
            rate_interval_ns: 20_000_000, // 20 ms
            initial_rate: 2_000.0,
            min_rate: 50.0,
            max_rate: 100_000.0,
            burst_secs: 0.02,
        }
    }

    /// Validates invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.ewma_alpha && self.ewma_alpha <= 1.0) {
            return Err(format!("ewma_alpha out of range: {}", self.ewma_alpha));
        }
        if !(0.0 < self.rate_beta && self.rate_beta < 1.0) {
            return Err(format!("rate_beta out of range: {}", self.rate_beta));
        }
        if self.rate_interval_ns == 0 {
            return Err("rate_interval must be positive".into());
        }
        if !(self.min_rate > 0.0
            && self.min_rate <= self.initial_rate
            && self.initial_rate <= self.max_rate)
        {
            return Err("need 0 < min_rate <= initial_rate <= max_rate".into());
        }
        if self.rate_scaling <= 0.0 || self.burst_secs <= 0.0 {
            return Err("rate_scaling and burst_secs must be positive".into());
        }
        Ok(())
    }
}

/// Exponentially-weighted moving average initialized on first sample.
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: Option<f64>,
}

impl Ewma {
    fn update(&mut self, sample: f64, alpha: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => alpha * sample + (1.0 - alpha) * v,
        });
    }

    fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// CUBIC-style rate limiter state for one server.
#[derive(Debug, Clone, Copy)]
struct RateState {
    /// Current send-rate limit (requests/s).
    rate: f64,
    /// Token bucket enforcing `rate`.
    tokens: f64,
    last_refill_ns: u64,
    /// Rate at the last decrease (CUBIC's W_max anchor).
    w_max: f64,
    /// When the current cubic growth epoch started (ns), if decreased.
    epoch_start_ns: Option<u64>,
    /// Window accounting.
    window_start_ns: u64,
    sent_in_window: u64,
    received_in_window: u64,
}

impl RateState {
    fn new(cfg: &C3Config) -> Self {
        RateState {
            rate: cfg.initial_rate,
            tokens: (cfg.initial_rate * cfg.burst_secs).max(1.0),
            last_refill_ns: 0,
            w_max: cfg.initial_rate,
            epoch_start_ns: None,
            window_start_ns: 0,
            sent_in_window: 0,
            received_in_window: 0,
        }
    }

    fn refill(&mut self, now_ns: u64, cfg: &C3Config) {
        if now_ns > self.last_refill_ns {
            let dt = (now_ns - self.last_refill_ns) as f64 / 1e9;
            let burst = (self.rate * cfg.burst_secs).max(1.0);
            self.tokens = (self.tokens + self.rate * dt).min(burst);
            self.last_refill_ns = now_ns;
        }
    }

    fn try_take(&mut self, now_ns: u64, cfg: &C3Config) -> bool {
        self.refill(now_ns, cfg);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.sent_in_window += 1;
            true
        } else {
            false
        }
    }

    fn ns_until_token(&mut self, now_ns: u64, cfg: &C3Config) -> u64 {
        self.refill(now_ns, cfg);
        if self.tokens >= 1.0 {
            0
        } else {
            ((1.0 - self.tokens) / self.rate * 1e9).ceil() as u64
        }
    }

    /// Rolls the measurement window if due and adapts the rate limit.
    fn maybe_adapt(&mut self, now_ns: u64, cfg: &C3Config) {
        if now_ns.saturating_sub(self.window_start_ns) < cfg.rate_interval_ns {
            return;
        }
        let sent = self.sent_in_window as f64;
        let received = self.received_in_window as f64;
        self.sent_in_window = 0;
        self.received_in_window = 0;
        self.window_start_ns = now_ns;

        // A window's last few sends are still in flight when it closes, so
        // received always lags sent slightly; demand a real deficit (and a
        // minimum sample) before treating it as congestion.
        if sent >= 8.0 && received < sent * 0.75 {
            // Receiving substantially slower than sending: multiplicative
            // decrease, anchor the cubic at the pre-decrease rate.
            self.w_max = self.rate;
            self.rate = (self.rate * cfg.rate_beta).max(cfg.min_rate);
            self.epoch_start_ns = Some(now_ns);
        } else if let Some(t0) = self.epoch_start_ns {
            // CUBIC growth: rate(t) = C·(Δt − K)³ + W_max, with
            // K = ∛(W_max·(1−β)/C) so growth starts at β·W_max.
            let dt = (now_ns - t0) as f64 / 1e9;
            let k = (self.w_max * (1.0 - cfg.rate_beta) / cfg.rate_scaling).cbrt();
            let target = cfg.rate_scaling * (dt - k).powi(3) + self.w_max;
            self.rate = target.clamp(cfg.min_rate, cfg.max_rate);
        } else {
            // No congestion seen yet: gentle multiplicative probe upward.
            self.rate = (self.rate * 1.05).min(cfg.max_rate);
        }
    }
}

/// Per-server statistics a C3 client maintains.
#[derive(Debug)]
struct ServerState {
    response_ns: Ewma,
    service_ns: Ewma,
    queue_len: Ewma,
    outstanding: u64,
    rate: RateState,
    /// Cached score Ψ, maintained **incrementally**: recomputed only when
    /// one of its inputs changes (response feedback, an outstanding-count
    /// change at dispatch) instead of per candidate per selection — the
    /// old path re-derived every score O(n log n) times inside the sort
    /// comparator.
    score: f64,
}

impl ServerState {
    fn new(cfg: &C3Config) -> Self {
        let mut st = ServerState {
            response_ns: Ewma::default(),
            service_ns: Ewma::default(),
            queue_len: Ewma::default(),
            outstanding: 0,
            rate: RateState::new(cfg),
            score: 0.0,
        };
        st.refresh_score(cfg);
        st
    }

    /// Recomputes the cached Ψ from the current EWMAs and outstanding
    /// count: `(R̄ − s̄) + q̂³·s̄` with `q̂ = 1 + os·w + q̄`.
    fn refresh_score(&mut self, cfg: &C3Config) {
        let s_bar = self.service_ns.get_or(100_000.0); // 100µs default
        let r_bar = self.response_ns.get_or(s_bar);
        let q_bar = self.queue_len.get_or(0.0);
        let q_hat = 1.0 + self.outstanding as f64 * cfg.concurrency_weight + q_bar;
        self.score = (r_bar - s_bar) + q_hat * q_hat * q_hat * s_bar;
    }
}

/// The C3 replica selector (one instance per client).
///
/// Per-server state lives in a dense vector indexed by server id (grown
/// on first contact) rather than a hash map, and candidate ranking reuses
/// a scratch buffer — a `select` allocates nothing and hashes nothing.
#[derive(Debug)]
pub struct C3Selector {
    config: C3Config,
    /// Dense per-server state; `None` until the first selection touches
    /// the server.
    servers: Vec<Option<ServerState>>,
    /// Reusable candidate-ranking buffer for [`Self::select`].
    rank_scratch: Vec<(f64, ServerId)>,
}

impl C3Selector {
    /// Creates a selector with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: C3Config) -> Self {
        config.validate().expect("invalid C3 config");
        C3Selector {
            config,
            servers: Vec::new(),
            rank_scratch: Vec::new(),
        }
    }

    fn state_mut(&mut self, server: ServerId) -> &mut ServerState {
        let idx = server.index();
        if idx >= self.servers.len() {
            self.servers.resize_with(idx + 1, || None);
        }
        let cfg = &self.config;
        self.servers[idx].get_or_insert_with(|| ServerState::new(cfg))
    }

    /// The C3 score Ψ for one server — lower is better. Unknown servers
    /// score as if idle with a small default service time, so cold
    /// replicas get probed.
    pub fn score(&self, server: ServerId) -> f64 {
        match self.servers.get(server.index()) {
            Some(Some(st)) => st.score,
            _ => 0.0,
        }
    }

    /// The current send-rate limit toward `server` (diagnostics).
    pub fn rate_limit(&self, server: ServerId) -> f64 {
        match self.servers.get(server.index()) {
            Some(Some(st)) => st.rate.rate,
            _ => self.config.initial_rate,
        }
    }
}

impl ReplicaSelector for C3Selector {
    fn name(&self) -> &'static str {
        "c3"
    }

    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection {
        debug_assert!(!ctx.candidates.is_empty());
        // Rank candidates by their cached scores (stable on server id for
        // determinism) in the reusable scratch — no allocation, and each
        // score is a single cached read instead of a recomputation.
        self.rank_scratch.clear();
        for &s in ctx.candidates {
            self.rank_scratch.push((self.score(s), s));
        }
        self.rank_scratch.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.raw().cmp(&b.1.raw()))
        });
        // Dispatch to the best-ranked server whose rate limiter admits us
        // (C3's backpressure: skip rate-limited replicas).
        let cfg = self.config;
        for k in 0..self.rank_scratch.len() {
            let server = self.rank_scratch[k].1;
            let st = self.state_mut(server);
            if st.rate.try_take(ctx.now_ns, &cfg) {
                st.outstanding += 1;
                st.refresh_score(&cfg);
                return Selection::Dispatch(server);
            }
        }
        // All limited: report the soonest retry.
        let mut retry = u64::MAX;
        for k in 0..self.rank_scratch.len() {
            let server = self.rank_scratch[k].1;
            let st = self.state_mut(server);
            retry = retry.min(st.rate.ns_until_token(ctx.now_ns, &cfg));
        }
        Selection::RateLimited {
            retry_in_ns: retry.max(1),
        }
    }

    fn on_response(&mut self, server: ServerId, now_ns: u64, fb: &ResponseFeedback) {
        let alpha = self.config.ewma_alpha;
        let cfg = self.config;
        let st = self.state_mut(server);
        st.outstanding = st.outstanding.saturating_sub(1);
        st.response_ns.update(fb.response_time_ns as f64, alpha);
        st.service_ns.update(fb.service_time_ns as f64, alpha);
        st.queue_len.update(fb.queue_len as f64, alpha);
        // Feedback changed every score input: refresh the cache once.
        st.refresh_score(&cfg);
        st.rate.received_in_window += 1;
        st.rate.maybe_adapt(now_ns, &cfg);
    }

    fn on_abandon(&mut self, server: ServerId) {
        // Release the outstanding slot taken at dispatch, but record no
        // response statistics — nothing was observed. The send still
        // counted toward the rate window (it consumed real send budget).
        let cfg = self.config;
        let st = self.state_mut(server);
        st.outstanding = st.outstanding.saturating_sub(1);
        st.refresh_score(&cfg);
    }

    fn outstanding(&self, server: ServerId) -> u64 {
        match self.servers.get(server.index()) {
            Some(Some(st)) => st.outstanding,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> C3Config {
        C3Config::paper_default(18)
    }

    fn fb(response_us: u64, queue: u64, service_us: u64) -> ResponseFeedback {
        ResponseFeedback {
            response_time_ns: response_us * 1_000,
            queue_len: queue,
            service_time_ns: service_us * 1_000,
        }
    }

    fn ctx<'a>(now_ns: u64, c: &'a [ServerId]) -> SelectionCtx<'a> {
        SelectionCtx {
            now_ns,
            candidates: c,
            value_bytes: 100,
            oracle_queue_depths: None,
        }
    }

    fn dispatched(sel: Selection) -> ServerId {
        match sel {
            Selection::Dispatch(s) => s,
            other => panic!("expected dispatch, got {other:?}"),
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        let mut bad = cfg();
        bad.ewma_alpha = 0.0;
        assert!(bad.validate().is_err());
        bad = cfg();
        bad.rate_beta = 1.0;
        assert!(bad.validate().is_err());
        bad = cfg();
        bad.min_rate = bad.max_rate + 1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn prefers_lightly_queued_server() {
        let mut c3 = C3Selector::new(cfg());
        let a = ServerId::new(0);
        let b = ServerId::new(1);
        // Teach the selector: a is heavily queued, b is idle.
        c3.on_response(a, 1_000_000, &fb(5_000, 40, 280));
        c3.on_response(b, 1_000_000, &fb(400, 0, 280));
        assert!(c3.score(b) < c3.score(a), "b must score better");
        let cands = [a, b];
        assert_eq!(dispatched(c3.select(&ctx(2_000_000, &cands))), b);
    }

    #[test]
    fn cubic_queue_penalty_dominates_response_time() {
        let mut c3 = C3Selector::new(cfg());
        let fast_but_queued = ServerId::new(0);
        let slow_but_idle = ServerId::new(1);
        // Queued server answers old requests fast (warm cache) but has a
        // deep queue; idle server is slower per request.
        c3.on_response(fast_but_queued, 1_000_000, &fb(300, 50, 100));
        c3.on_response(slow_but_idle, 1_000_000, &fb(900, 0, 300));
        assert!(
            c3.score(slow_but_idle) < c3.score(fast_but_queued),
            "cubic penalty must override raw response time"
        );
    }

    #[test]
    fn outstanding_requests_push_score_up() {
        let mut c3 = C3Selector::new(cfg());
        let a = ServerId::new(0);
        let b = ServerId::new(1);
        c3.on_response(a, 1_000, &fb(500, 1, 280));
        c3.on_response(b, 1_000, &fb(500, 1, 280));
        let cands = [a, b];
        // Repeated dispatches without responses should alternate because
        // outstanding counts inflate the just-picked server's score.
        let first = dispatched(c3.select(&ctx(2_000, &cands)));
        let second = dispatched(c3.select(&ctx(3_000, &cands)));
        assert_ne!(first, second);
        assert_eq!(c3.outstanding(first), 1);
        assert_eq!(c3.outstanding(second), 1);
    }

    #[test]
    fn rate_limiter_eventually_blocks() {
        let mut config = cfg();
        config.initial_rate = 100.0; // 100 rps, burst 2
        config.min_rate = 10.0;
        config.burst_secs = 0.02;
        let mut c3 = C3Selector::new(config);
        let a = ServerId::new(0);
        let cands = [a];
        let mut dispatches = 0;
        let mut limited = false;
        for _ in 0..10 {
            match c3.select(&ctx(0, &cands)) {
                Selection::Dispatch(_) => dispatches += 1,
                Selection::RateLimited { retry_in_ns } => {
                    limited = true;
                    assert!(retry_in_ns > 0);
                    break;
                }
            }
        }
        assert!(limited, "bucket should empty");
        assert!(dispatches >= 1);
        // Tokens return after enough time.
        let later = 1_000_000_000;
        assert!(matches!(
            c3.select(&ctx(later, &cands)),
            Selection::Dispatch(_)
        ));
    }

    #[test]
    fn rate_decreases_on_congestion_and_recovers_cubically() {
        let mut config = cfg();
        config.rate_interval_ns = 1_000_000; // 1ms windows for the test
        config.initial_rate = 1_000.0;
        let mut c3 = C3Selector::new(config);
        let a = ServerId::new(0);
        let cands = [a];
        // Send a burst, acknowledge only a fraction → congestion.
        let mut now = 0u64;
        for _ in 0..10 {
            let _ = c3.select(&ctx(now, &cands));
            now += 10_000;
        }
        // Two acks out of ten sends, landing after the window.
        c3.on_response(a, 1_100_000, &fb(500, 2, 280));
        let after_decrease = c3.rate_limit(a);
        assert!(
            after_decrease < 1_000.0 * 0.6,
            "rate should halve, got {after_decrease}"
        );
        // Calm traffic: acks flow, rate climbs back toward w_max.
        let mut t = 2_000_000u64;
        for _ in 0..200 {
            if let Selection::Dispatch(_) = c3.select(&ctx(t, &cands)) {
                c3.on_response(a, t + 500_000, &fb(500, 1, 280));
            }
            t += 2_000_000;
        }
        let recovered = c3.rate_limit(a);
        assert!(
            recovered > after_decrease * 1.5,
            "rate should recover: {after_decrease} → {recovered}"
        );
    }

    #[test]
    fn unknown_servers_score_zero_and_get_probed() {
        let c3 = C3Selector::new(cfg());
        assert_eq!(c3.score(ServerId::new(9)), 0.0);
    }

    /// Differential: the incrementally-maintained score cache must equal
    /// a from-scratch evaluation of Ψ after every mutation — feedback,
    /// dispatch (outstanding bump) and rate-limited probing alike.
    #[test]
    fn cached_scores_equal_recomputation() {
        let config = cfg();
        let mut c3 = C3Selector::new(config);
        let servers = [ServerId::new(0), ServerId::new(1), ServerId::new(2)];
        let check = |c3: &C3Selector| {
            for s in servers {
                if let Some(Some(st)) = c3.servers.get(s.index()) {
                    let s_bar = st.service_ns.get_or(100_000.0);
                    let r_bar = st.response_ns.get_or(s_bar);
                    let q_bar = st.queue_len.get_or(0.0);
                    let q_hat = 1.0 + st.outstanding as f64 * config.concurrency_weight + q_bar;
                    let want = (r_bar - s_bar) + q_hat * q_hat * q_hat * s_bar;
                    assert_eq!(c3.score(s), want, "stale cache for {s}");
                }
            }
        };
        let mut now = 1_000_000u64;
        for i in 0..200u64 {
            match i % 3 {
                0 => {
                    let _ = c3.select(&ctx(now, &servers));
                }
                1 => c3.on_response(servers[(i % 2) as usize], now, &fb(300 + i * 7, i % 5, 280)),
                _ => {
                    let s = servers[(i % 3) as usize];
                    c3.on_response(s, now, &fb(10_000, 40, 300));
                }
            }
            check(&c3);
            now += 100_000;
        }
    }

    #[test]
    fn ties_break_deterministically_by_server_id() {
        let mut c3 = C3Selector::new(cfg());
        let cands = [ServerId::new(2), ServerId::new(0), ServerId::new(1)];
        // No feedback: all scores 0 → lowest id wins.
        assert_eq!(dispatched(c3.select(&ctx(0, &cands))), ServerId::new(0));
    }
}
