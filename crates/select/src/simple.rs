//! Baseline selectors: random, round-robin, least-outstanding, oracle.

use crate::feedback::{ResponseFeedback, Selection, SelectionCtx};
use crate::ReplicaSelector;
use brb_store::ids::ServerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Uniform-random replica choice — the naive Cassandra/Riak default
/// before load-aware selection.
#[derive(Debug)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Creates a selector with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ReplicaSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection {
        debug_assert!(!ctx.candidates.is_empty());
        let i = self.rng.random_range(0..ctx.candidates.len());
        Selection::Dispatch(ctx.candidates[i])
    }

    fn on_response(&mut self, _server: ServerId, _now_ns: u64, _fb: &ResponseFeedback) {}
}

/// Round-robin across each request's candidate list.
#[derive(Debug, Default)]
pub struct RoundRobinSelector {
    counter: u64,
}

impl RoundRobinSelector {
    /// Creates a selector starting at the first candidate.
    pub fn new() -> Self {
        RoundRobinSelector { counter: 0 }
    }
}

impl ReplicaSelector for RoundRobinSelector {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection {
        debug_assert!(!ctx.candidates.is_empty());
        let i = (self.counter as usize) % ctx.candidates.len();
        self.counter += 1;
        Selection::Dispatch(ctx.candidates[i])
    }

    fn on_response(&mut self, _server: ServerId, _now_ns: u64, _fb: &ResponseFeedback) {}
}

/// Pick the replica with the fewest of *this client's* requests in flight
/// (the classic "least outstanding requests" heuristic; needs no server
/// cooperation).
#[derive(Debug, Default)]
pub struct LeastOutstandingSelector {
    outstanding: BTreeMap<ServerId, u64>,
}

impl LeastOutstandingSelector {
    /// Creates an empty selector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplicaSelector for LeastOutstandingSelector {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection {
        debug_assert!(!ctx.candidates.is_empty());
        let best = *ctx
            .candidates
            .iter()
            .min_by_key(|s| (self.outstanding.get(s).copied().unwrap_or(0), s.raw()))
            .expect("non-empty candidates");
        *self.outstanding.entry(best).or_insert(0) += 1;
        Selection::Dispatch(best)
    }

    fn on_response(&mut self, server: ServerId, _now_ns: u64, _fb: &ResponseFeedback) {
        if let Some(n) = self.outstanding.get_mut(&server) {
            *n = n.saturating_sub(1);
        }
    }

    fn on_abandon(&mut self, server: ServerId) {
        if let Some(n) = self.outstanding.get_mut(&server) {
            *n = n.saturating_sub(1);
        }
    }

    fn outstanding(&self, server: ServerId) -> u64 {
        self.outstanding.get(&server).copied().unwrap_or(0)
    }
}

/// Pick the replica with the shortest *true* queue. Unrealizable (requires
/// instantaneous global state); bounds how much better selection alone
/// could get.
#[derive(Debug, Default)]
pub struct OracleSelector;

impl OracleSelector {
    /// Creates the oracle.
    pub fn new() -> Self {
        OracleSelector
    }
}

impl ReplicaSelector for OracleSelector {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection {
        debug_assert!(!ctx.candidates.is_empty());
        let depths = ctx
            .oracle_queue_depths
            .expect("oracle selector requires oracle_queue_depths");
        assert_eq!(depths.len(), ctx.candidates.len());
        let (i, _) = depths
            .iter()
            .enumerate()
            .min_by_key(|(i, &d)| (d, ctx.candidates[*i].raw()))
            .expect("non-empty candidates");
        Selection::Dispatch(ctx.candidates[i])
    }

    fn on_response(&mut self, _server: ServerId, _now_ns: u64, _fb: &ResponseFeedback) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<ServerId> {
        vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)]
    }

    fn ctx<'a>(c: &'a [ServerId], depths: Option<&'a [u64]>) -> SelectionCtx<'a> {
        SelectionCtx {
            now_ns: 0,
            candidates: c,
            value_bytes: 100,
            oracle_queue_depths: depths,
        }
    }

    fn dispatched(sel: Selection) -> ServerId {
        match sel {
            Selection::Dispatch(s) => s,
            other => panic!("expected dispatch, got {other:?}"),
        }
    }

    #[test]
    fn random_covers_all_candidates() {
        let c = candidates();
        let mut s = RandomSelector::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(dispatched(s.select(&ctx(&c, None))));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn round_robin_cycles() {
        let c = candidates();
        let mut s = RoundRobinSelector::new();
        let picks: Vec<u64> = (0..6)
            .map(|_| dispatched(s.select(&ctx(&c, None))).raw())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_balances() {
        let c = candidates();
        let mut s = LeastOutstandingSelector::new();
        // Three dispatches without responses spread over all replicas.
        let mut picked: Vec<u64> = (0..3)
            .map(|_| dispatched(s.select(&ctx(&c, None))).raw())
            .collect();
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 1, 2]);
        for sid in &c {
            assert_eq!(s.outstanding(*sid), 1);
        }
        // A response frees server 1; it becomes the next pick.
        s.on_response(
            ServerId::new(1),
            10,
            &ResponseFeedback {
                response_time_ns: 10,
                queue_len: 0,
                service_time_ns: 5,
            },
        );
        assert_eq!(dispatched(s.select(&ctx(&c, None))), ServerId::new(1));
    }

    #[test]
    fn oracle_picks_shortest_true_queue() {
        let c = candidates();
        let depths = [7u64, 2, 5];
        let mut s = OracleSelector::new();
        assert_eq!(
            dispatched(s.select(&ctx(&c, Some(&depths)))),
            ServerId::new(1)
        );
    }

    #[test]
    #[should_panic(expected = "oracle selector requires")]
    fn oracle_without_depths_panics() {
        let c = candidates();
        OracleSelector::new().select(&ctx(&c, None));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RandomSelector::new(0).name(), "random");
        assert_eq!(RoundRobinSelector::new().name(), "round-robin");
        assert_eq!(LeastOutstandingSelector::new().name(), "least-outstanding");
        assert_eq!(OracleSelector::new().name(), "oracle");
    }
}
