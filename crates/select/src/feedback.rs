//! Types flowing between the engine and selectors.

use brb_store::ids::ServerId;
use serde::{Deserialize, Serialize};

/// What a selector sees when asked to place one request.
#[derive(Debug, Clone, Copy)]
pub struct SelectionCtx<'a> {
    /// Current virtual time (ns).
    pub now_ns: u64,
    /// The replicas eligible for this key (the key's replica group), in
    /// ring order.
    pub candidates: &'a [ServerId],
    /// Size of the requested value (selectors may weigh big reads
    /// differently).
    pub value_bytes: u64,
    /// True instantaneous queue depths per candidate — only populated for
    /// the oracle selector; realizable selectors must ignore it.
    pub oracle_queue_depths: Option<&'a [u64]>,
}

/// The outcome of a selection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Send to this server now.
    Dispatch(ServerId),
    /// All candidates are rate-limited; retry after this many ns.
    RateLimited {
        /// Nanoseconds until the earliest candidate admits a request.
        retry_in_ns: u64,
    },
}

/// Server feedback piggybacked on a response (the C3 mechanism: "servers
/// piggyback their queue sizes and service rates in their responses").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseFeedback {
    /// Client-observed response time: dispatch → response arrival (ns).
    pub response_time_ns: u64,
    /// Server's queue length sampled when the response left.
    pub queue_len: u64,
    /// Server-side service time of this request (ns).
    pub service_time_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_variants_compare() {
        assert_eq!(
            Selection::Dispatch(ServerId::new(1)),
            Selection::Dispatch(ServerId::new(1))
        );
        assert_ne!(
            Selection::Dispatch(ServerId::new(1)),
            Selection::RateLimited { retry_in_ns: 5 }
        );
    }

    #[test]
    fn feedback_serializes() {
        let fb = ResponseFeedback {
            response_time_ns: 100,
            queue_len: 3,
            service_time_ns: 50,
        };
        let json = serde_json::to_string(&fb).unwrap();
        let back: ResponseFeedback = serde_json::from_str(&json).unwrap();
        assert_eq!(fb, back);
    }
}
