//! A serializable description of a realizable selector, plus its
//! factory — so configuration layers (the live `brb-rt` cluster, the
//! `brb-lab` lowering shim) can carry "which selector" as plain data
//! without depending on the concrete selector types.
//!
//! The oracle is deliberately absent: it needs instantaneous global
//! queue state, which only the simulator can provide. Layers that
//! accept an oracle in simulation must reject it with a typed error
//! when lowering to a live runtime.

use crate::c3::{C3Config, C3Selector};
use crate::simple::{LeastOutstandingSelector, RandomSelector, RoundRobinSelector};
use crate::ReplicaSelector;
use serde::{Deserialize, Serialize};

/// Which realizable replica selector a client should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorSpec {
    /// Uniform random replica.
    Random,
    /// Round-robin across each request's candidate list.
    RoundRobin,
    /// Fewest client-local outstanding requests.
    LeastOutstanding,
    /// C3 scoring + rate control, fed by piggybacked queue length and
    /// service time.
    C3,
}

impl SelectorSpec {
    /// Stable name for reports (matches the selector's own `name()`).
    pub fn name(&self) -> &'static str {
        match self {
            SelectorSpec::Random => "random",
            SelectorSpec::RoundRobin => "round-robin",
            SelectorSpec::LeastOutstanding => "least-outstanding",
            SelectorSpec::C3 => "c3",
        }
    }

    /// Instantiates the selector. `seed` feeds the random selector's
    /// stream; `num_clients` is C3's concurrency-compensation weight
    /// (the C3 paper uses the number of clients sharing the cluster).
    pub fn build(&self, seed: u64, num_clients: u32) -> Box<dyn ReplicaSelector + Send> {
        match self {
            SelectorSpec::Random => Box::new(RandomSelector::new(seed)),
            SelectorSpec::RoundRobin => Box::new(RoundRobinSelector::new()),
            SelectorSpec::LeastOutstanding => Box::new(LeastOutstandingSelector::new()),
            SelectorSpec::C3 => Box::new(C3Selector::new(C3Config::paper_default(num_clients))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::SelectionCtx;
    use brb_store::ids::ServerId;

    #[test]
    fn every_spec_builds_a_working_selector() {
        let candidates = [ServerId::new(0), ServerId::new(1)];
        for spec in [
            SelectorSpec::Random,
            SelectorSpec::RoundRobin,
            SelectorSpec::LeastOutstanding,
            SelectorSpec::C3,
        ] {
            let mut sel = spec.build(7, 1);
            assert_eq!(sel.name(), spec.name());
            let ctx = SelectionCtx {
                now_ns: 0,
                candidates: &candidates,
                value_bytes: 64,
                oracle_queue_depths: None,
            };
            match sel.select(&ctx) {
                crate::Selection::Dispatch(s) => assert!(candidates.contains(&s)),
                other => panic!("{}: expected dispatch, got {other:?}", spec.name()),
            }
        }
    }

    #[test]
    fn spec_serializes() {
        let json = serde_json::to_string(&SelectorSpec::C3).unwrap();
        let back: SelectorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SelectorSpec::C3);
    }

    #[test]
    fn built_selectors_are_send() {
        fn assert_send<T: Send + ?Sized>(_: &T) {}
        for spec in [SelectorSpec::Random, SelectorSpec::C3] {
            assert_send(&*spec.build(1, 1));
        }
    }
}
