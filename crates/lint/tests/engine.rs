//! Lint-engine coverage: the fixture corpus (one finding per rule), the
//! lexer's comment/string opacity, the allow-comment suppression
//! round-trip, and the test-region mask.

use brb_lint::{lex, lint_str, load_file, run, Lane, TokenKind, RULES};
use std::path::Path;

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every fixture file `x<nnn>_*.rs` must produce exactly ONE finding, of
/// exactly the rule its filename names, and the corpus covers every rule
/// in the catalog.
#[test]
fn fixture_corpus_one_finding_per_rule() {
    let mut entries: Vec<_> = std::fs::read_dir(fixtures_dir())
        .expect("fixture dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fixture corpus is empty");

    let mut covered: Vec<String> = Vec::new();
    for path in &entries {
        let name = path.file_name().unwrap().to_str().unwrap();
        let expected_rule = name[..4].to_ascii_uppercase();
        let file = load_file(path).expect("fixture readable");
        let report = run(std::slice::from_ref(&file));
        assert_eq!(
            report.findings.len(),
            1,
            "{name}: expected exactly one finding, got {:#?}",
            report.findings
        );
        assert_eq!(
            report.findings[0].rule, expected_rule,
            "{name}: wrong rule: {:#?}",
            report.findings[0]
        );
        covered.push(expected_rule);
    }
    for rule in RULES {
        assert!(
            covered.iter().any(|c| c == rule.id),
            "no fixture covers rule {}",
            rule.id
        );
    }
}

/// The whole corpus through the multi-file entry point: still one finding
/// per fixture (no cross-file interference), so the CLI exits nonzero on
/// it with exactly `RULES.len()` findings.
#[test]
fn fixture_corpus_as_a_set() {
    let mut paths: Vec<_> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    paths.sort();
    let files: Vec<_> = paths.iter().map(|p| load_file(p).unwrap()).collect();
    let report = run(&files);
    assert_eq!(report.findings.len(), RULES.len());
    assert_eq!(report.files_scanned, RULES.len());
}

/// Rule words inside comments, doc comments, strings, raw strings and
/// char literals must never trigger.
#[test]
fn lexer_comments_and_strings_are_opaque() {
    let src = r####"
//! HashMap in a module doc — not code.
// HashMap Instant thread_rng SystemTime — line comment.
/* HashMap /* nested Instant */ still a comment */
/// `HashSet` in a doc comment.
pub fn f() -> &'static str {
    let _not_a_lifetime: char = 'H';
    let _s = "HashMap::new() Instant SystemTime thread_rng";
    let _r = r#"HashSet "quoted" Instant"#;
    let _b = b"thread_rng";
    "from_entropy OsRng"
}
"####;
    let report = lint_str("opaque.rs", Lane::Deterministic, src);
    assert!(
        report.findings.is_empty(),
        "comment/string contents triggered rules: {:#?}",
        report.findings
    );

    // Control: the same identifiers in code position DO trigger.
    let live = "pub fn f() { let _m = HashMap::new(); }";
    let report = lint_str("live.rs", Lane::Deterministic, live);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "D002");
}

/// Token-level sanity: raw strings with hashes, lifetimes vs chars,
/// numbers with suffixes and ranges.
#[test]
fn lexer_token_shapes() {
    let out = lex(
        r####"fn f<'a>(x: &'a str) { let _ = 'c'; let _ = 0..10; let _ = 1.5e-3f64; let s = r#"raw"#; }"####,
    );
    let kinds: Vec<_> = out.tokens.iter().map(|t| &t.kind).collect();
    assert!(kinds.contains(&&TokenKind::Lifetime));
    assert!(kinds.contains(&&TokenKind::Char));
    assert!(out
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Str && t.text == "raw"));
    // `0..10` must lex as Num, Punct('.'), Punct('.'), Num — not `0.` `.10`.
    let nums: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert!(nums.contains(&"0") && nums.contains(&"10") && nums.contains(&"1.5e-3f64"));
}

/// Allow-comment round trip: a suppressed finding disappears (counted as
/// suppressed), the same code without the directive reappears, and a
/// directive missing its reason is itself a finding.
#[test]
fn allow_suppression_round_trip() {
    let bad = "pub fn f() { let _m = HashMap::new(); }\n";
    let report = lint_str("bad.rs", Lane::Deterministic, bad);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.suppressed, 0);

    // Same line.
    let same_line =
        "pub fn f() { let _m = HashMap::new(); } // brb-lint: allow(D002) — fixture: safe\n";
    let report = lint_str("ok.rs", Lane::Deterministic, same_line);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressed, 1);

    // Line above.
    let above =
        "// brb-lint: allow(D002) — fixture: safe\npub fn f() { let _m = HashMap::new(); }\n";
    let report = lint_str("ok2.rs", Lane::Deterministic, above);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed, 1);

    // Two lines above: out of range, the finding survives.
    let too_far =
        "// brb-lint: allow(D002) — fixture: safe\n\npub fn f() { let _m = HashMap::new(); }\n";
    let report = lint_str("far.rs", Lane::Deterministic, too_far);
    assert_eq!(report.findings.len(), 1);

    // Wrong rule: doesn't suppress.
    let wrong = "pub fn f() { let _m = HashMap::new(); } // brb-lint: allow(D001) — wrong rule\n";
    let report = lint_str("wrong.rs", Lane::Deterministic, wrong);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "D002");

    // No reason: the directive itself becomes an L000 finding and does
    // not suppress.
    let no_reason = "pub fn f() { let _m = HashMap::new(); } // brb-lint: allow(D002)\n";
    let report = lint_str("noreason.rs", Lane::Deterministic, no_reason);
    let rules: Vec<_> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains(&"L000"), "{rules:?}");
    assert!(rules.contains(&"D002"), "{rules:?}");
}

/// `#[cfg(test)]` modules and `#[test]` functions are exempt from the
/// non-test rules; code after the module is covered again.
#[test]
fn test_regions_are_exempt() {
    let src = r#"
pub fn live() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn uses_hash() { let _m: HashMap<u64, u64> = HashMap::new(); }
}

pub fn also_live() { let _m = HashSet::new(); }
"#;
    let report = lint_str("mixed.rs", Lane::Deterministic, src);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, "D002");
    assert_eq!(
        report.findings[0].line, 11,
        "only the HashSet after the test mod"
    );
}

/// S002 round trip: an unreferenced schema literal is flagged; adding a
/// test that mentions the same literal clears it.
#[test]
fn schema_pin_cross_file() {
    let writer = r#"pub const SCHEMA: &str = "brb-x/thing-v2";"#;
    let report = lint_str("writer.rs", Lane::Schema, writer);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "S002");

    let pinned = format!(
        "{writer}\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn pin() {{ assert_eq!(super::SCHEMA, \"brb-x/thing-v2\"); }}\n}}\n"
    );
    let report = lint_str("writer.rs", Lane::Schema, &pinned);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

/// R-rules: the channel-call scanners respect call shape.
#[test]
fn rt_rules_shape() {
    // Lock before the send: fine.
    let ok = "fn f(tx: &Sender<u64>, m: &Mutex<u64>) { let v = *m.lock(); let _ = tx.send(v); }";
    assert!(lint_str("ok.rs", Lane::Rt, ok).findings.is_empty());

    // `send` defined as a method on our own type: `self.send(x)` with no
    // unwrap is fine.
    let own = "impl C { fn send(&self, x: u64) {} } fn g(c: &C) { c.send(1); }";
    assert!(lint_str("own.rs", Lane::Rt, own).findings.is_empty());

    // recv_timeout + unwrap outside tests: flagged.
    let bad = "fn f(rx: &Receiver<u64>) -> u64 { rx.recv_timeout(d).unwrap() }";
    let report = lint_str("bad.rs", Lane::Rt, bad);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "R002");
}
