//! Fixture: hash collection in a report-writing crate. Expect exactly
//! one S001 finding — emitters must iterate in a stable order.

pub fn emit(fields: &std::collections::HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push_str(&format!("\"{k}\":{v},"));
    }
    out
}
