//! Fixture: a schema tag with no key-order pin test referencing it.
//! Expect exactly one S002 finding on the literal's line.

pub const SCHEMA: &str = "brb-lint/fixture-v1";

pub fn header() -> String {
    format!("{{\"schema\":{:?}}}", SCHEMA)
}
