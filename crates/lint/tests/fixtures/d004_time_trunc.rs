//! Fixture: event-time truncation. Expect exactly one D004 finding on
//! the `arrival_ns as usize` cast; the index cast below is fine.

pub fn bucket(arrival_ns: u64, slots: &[u64]) -> u64 {
    let idx = arrival_ns as usize % slots.len();
    let fine = (slots.len() - 1) as usize;
    slots[idx.min(fine)]
}
