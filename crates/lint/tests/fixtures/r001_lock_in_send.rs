//! Fixture: lock acquired inside a channel-send expression. Expect
//! exactly one R001 finding on the `.lock()` call.

pub fn forward(tx: &std::sync::mpsc::Sender<u64>, state: &parking_lot::Mutex<u64>) {
    let _ = tx.send(*state.lock());
}
