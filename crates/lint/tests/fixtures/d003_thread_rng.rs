//! Fixture: ambient entropy. Expect exactly one D003 finding.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
