//! Fixture: `unwrap()` on a channel result outside tests. Expect exactly
//! one R002 finding.

pub fn drain(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    rx.recv().unwrap()
}

#[cfg(test)]
mod tests {
    // In tests the same pattern is fine — must NOT add a second finding.
    pub fn drain_test(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
        rx.recv().unwrap()
    }
}
