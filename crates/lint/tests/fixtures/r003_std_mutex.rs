//! Fixture: std::sync lock in the live runtime. Expect exactly one R003
//! finding — parking_lot locks feed the lock-order detector, std locks
//! bypass it. (`Arc` via `std::sync` stays legal.)

use std::sync::Arc;
use std::sync::Mutex;

pub fn shared() -> Arc<Mutex<u64>> {
    Arc::new(Mutex::new(0))
}
