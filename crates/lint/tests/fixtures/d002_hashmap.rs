//! Fixture: hash collection in non-test code. Expect exactly one D002
//! finding. The mention in this doc comment ("HashMap") and the one in
//! the string below must NOT trigger — comments and strings are opaque.

pub fn label() -> &'static str {
    "HashMap HashSet Instant thread_rng"
}

pub fn index(keys: &[u64]) -> usize {
    let m: std::collections::HashMap<u64, usize> =
        keys.iter().copied().enumerate().map(|(i, k)| (k, i)).collect();
    m.len()
}
