//! Fixture: wall-clock read in a deterministic crate. Expect exactly one
//! D001 finding (the `Instant::now` call).

pub fn elapsed_hack() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}
