//! A small hand-rolled Rust lexer: just enough to walk a source file as a
//! stream of significant tokens with line numbers, while *correctly*
//! skipping the three places rule text must never match — line/block
//! comments (nested), string literals (plain, byte, raw with any hash
//! count) and char literals. No `syn`, no proc-macro machinery: the
//! build stays offline and the lexer stays auditable.
//!
//! Comments are not discarded entirely: `// brb-lint: allow(<rule>) — <reason>`
//! directives are parsed out of them so the engine can suppress findings,
//! and string literals are kept as tokens (the schema-stability rules need
//! to see them) — their *contents* are opaque to every identifier rule.

/// What a token is. Identifier text and string-literal contents are kept;
/// everything else only needs its category and position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `send`, ...).
    Ident,
    /// A string literal (`"..."`, `r#"..."#`, `b"..."`). `text` holds the
    /// *contents* (delimiters and hashes stripped) so schema rules can
    /// inspect it; identifier rules must never look at it.
    Str,
    /// A char literal (`'a'`, `'\n'`). Contents are irrelevant to rules.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Any single punctuation character (`.`, `(`, `::` comes as two `:`).
    Punct(char),
}

/// One significant token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A suppression directive parsed out of a comment:
/// `// brb-lint: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule ID being suppressed (e.g. `D002`), upper-cased.
    pub rule: String,
    /// The human reason after the dash. Empty reasons are rejected by the
    /// engine (suppression without a rationale is itself a finding).
    pub reason: String,
    /// Line the directive sits on. It suppresses findings on this line
    /// and the next (so it can ride above the offending statement).
    pub line: u32,
}

/// Lexer output: the significant tokens plus any allow directives.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
    /// Comments that look like brb-lint directives but failed to parse
    /// (bad rule name, missing reason). `(line, what-was-wrong)`.
    pub bad_directives: Vec<(u32, String)>,
}

/// Lexes `src` into significant tokens. Never fails: unrecognised bytes
/// are skipped (they would be a compile error anyway, and the linter runs
/// on code the compiler already accepted).
pub fn lex(src: &str) -> LexOutput {
    let mut out = LexOutput::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.bytes().filter(|&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: scan to end of line, check for a directive.
                // Doc comments (`///`, `//!`) are prose, not directives —
                // they legitimately *describe* the allow syntax.
                let end = memchr_newline(bytes, i);
                let is_doc = matches!(bytes.get(i + 2), Some(&b'/') | Some(&b'!'));
                if !is_doc {
                    parse_directive(&src[i..end], line, &mut out);
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust rules.
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(&src[start..i]);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (contents, next) = scan_raw_string(src, i);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: contents.to_string(),
                    line,
                });
                bump_lines!(&src[i..next]);
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let (contents, next) = scan_quoted(src, i + 1, '"');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: contents.to_string(),
                    line,
                });
                bump_lines!(&src[i..next]);
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let (_, next) = scan_quoted(src, i + 1, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line,
                });
                i = next;
            }
            b'"' => {
                let (contents, next) = scan_quoted(src, i, '"');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: contents.to_string(),
                    line,
                });
                bump_lines!(&src[i..next]);
                i = next;
            }
            b'\'' => {
                // Lifetime or char literal. `'a` followed by another `'`
                // is the char `'a'`; otherwise `'ident` is a lifetime.
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphabetic()) {
                    let ident_start = j;
                    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                    {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'\'') {
                        // Char literal like 'a'.
                        out.tokens.push(Token {
                            kind: TokenKind::Char,
                            text: String::new(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: src[ident_start..j].to_string(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let (_, next) = scan_quoted(src, i, '\'');
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = next;
                }
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                i += 1;
                if bytes[start] == b'0'
                    && matches!(bytes.get(i), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'))
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    // Fractional part — but not the `..` of a range.
                    if bytes.get(i) == Some(&b'.')
                        && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        i += 1;
                        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            i += 1;
                        }
                    }
                    // Exponent.
                    if matches!(bytes.get(i), Some(b'e' | b'E'))
                        && (bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                            || (matches!(bytes.get(i + 1), Some(b'+' | b'-'))
                                && bytes.get(i + 2).is_some_and(|c| c.is_ascii_digit())))
                    {
                        i += 1;
                        if matches!(bytes.get(i), Some(b'+' | b'-')) {
                            i += 1;
                        }
                        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            i += 1;
                        }
                    }
                    // Type suffix (`u64`, `f32`, `usize`).
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                if b.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(b as char),
                        text: String::new(),
                        line,
                    });
                    i += 1;
                } else {
                    // Non-ASCII (e.g. an em-dash in a doc string that
                    // somehow reached code position): skip the char.
                    let ch_len = src[i..].chars().next().map_or(1, |c| c.len_utf8());
                    i += ch_len;
                }
            }
        }
    }
    out
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |p| from + p)
}

/// Is `r"`, `r#"`, `br"`, `br#"` ... starting at `i`?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scans a raw string starting at `i`; returns (contents, index past it).
fn scan_raw_string(src: &str, i: usize) -> (&str, usize) {
    let bytes = src.as_bytes();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    loop {
        match bytes.get(j) {
            None => return (&src[content_start..j], j),
            Some(b'"') => {
                let mut k = j + 1;
                let mut h = 0usize;
                while h < hashes && bytes.get(k) == Some(&b'#') {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return (&src[content_start..j], k);
                }
                j += 1;
            }
            Some(_) => j += 1,
        }
    }
}

/// Scans a quoted literal (string or char) starting at the opening quote
/// index; handles backslash escapes. Returns (contents, index past close).
fn scan_quoted(src: &str, i: usize, quote: char) -> (&str, usize) {
    let bytes = src.as_bytes();
    let q = quote as u8;
    let mut j = i + 1;
    let content_start = j;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b if b == q => return (&src[content_start..j], j + 1),
            _ => j += 1,
        }
    }
    (&src[content_start..], j)
}

/// Parses a `brb-lint:` directive out of a line comment, if present.
fn parse_directive(comment: &str, line: u32, out: &mut LexOutput) {
    let Some(pos) = comment.find("brb-lint:") else {
        return;
    };
    let rest = comment[pos + "brb-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        out.bad_directives.push((
            line,
            "directive must be `brb-lint: allow(<rule>) — <reason>`".to_string(),
        ));
        return;
    };
    let Some(close) = rest.find(')') else {
        out.bad_directives
            .push((line, "unclosed `allow(` in brb-lint directive".to_string()));
        return;
    };
    let rule = rest[..close].trim().to_ascii_uppercase();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        out.bad_directives
            .push((line, format!("bad rule name {rule:?} in allow directive")));
        return;
    }
    // Everything after the `)` is the reason, minus dash/em-dash/colon
    // separators. An empty reason is rejected: suppressions must say why.
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':', ' '])
        .trim()
        .to_string();
    if reason.is_empty() {
        out.bad_directives.push((
            line,
            format!("allow({rule}) has no reason — write `allow({rule}) — <why this is safe>`"),
        ));
        return;
    }
    out.allows.push(AllowDirective { rule, reason, line });
}
