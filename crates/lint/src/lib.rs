//! `brb-lint` — the workspace's custom static-analysis pass.
//!
//! Three rule families, scoped per lane (see [`rules::LANE_TABLE`]):
//!
//! * **D-rules** — bit-exact determinism for the sim-side crates: no
//!   wall-clock reads, no `HashMap`/`HashSet` in non-test code, no
//!   ambient entropy, no `as usize` truncation of event times.
//! * **S-rules** — schema stability for the report writers: no hash
//!   collections in emitters, and every declared schema tag
//!   (`brb-lab/report-v1`-style literal) must be pinned by a test.
//! * **R-rules** — lock/channel discipline for the live runtime: no
//!   lock acquisition inside a `send`/`recv` call expression, no
//!   `unwrap()` on channel results outside tests, and no `std::sync`
//!   locks (the debug lock-order detector in `compat/parking_lot` only
//!   sees parking_lot locks).
//!
//! Everything is built on a small hand-rolled lexer ([`lexer::lex`]) —
//! no `syn`, no network — that skips comments, strings and raw strings
//! so rule text can never match inside them. Suppression is explicit
//! and audited: `// brb-lint: allow(<rule>) — <reason>` on (or directly
//! above) the offending line; a directive without a reason is itself a
//! finding (`L000`).
//!
//! The binary exits nonzero on any unsuppressed finding, which is what
//! the CI "Lint (brb-lint)" step keys off.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{
    collect_workspace_files, fixture_lane, lane_for_path, load_file, run, Finding, Report,
    SourceFile,
};
pub use lexer::{lex, AllowDirective, LexOutput, Token, TokenKind};
pub use rules::{is_schema_literal, lane_for_crate, rule, Lane, RuleInfo, LANE_TABLE, RULES};

/// Convenience for tests and embedding: lints a single source string
/// under an explicit lane (the cross-file S002 rule sees only this file).
pub fn lint_str(name: &str, lane: Lane, source: &str) -> Report {
    let file = SourceFile {
        path: std::path::PathBuf::from(name),
        lane,
        all_test: false,
        source: source.to_string(),
    };
    run(std::slice::from_ref(&file))
}
