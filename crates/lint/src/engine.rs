//! The analysis driver: walks files, classifies lanes, computes test
//! regions, runs the token rules, applies `allow` suppressions and the
//! cross-file schema-pin rule (S002).

use crate::lexer::{lex, LexOutput, Token, TokenKind};
use crate::rules::{self, is_schema_literal, Lane};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: PathBuf,
    pub line: u32,
    pub rule: String,
    pub summary: String,
    pub hint: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} [{}] {} — {}",
            self.path.display(),
            self.line,
            self.rule,
            self.summary,
            self.hint
        )
    }
}

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

/// A file queued for analysis.
#[derive(Debug)]
pub struct SourceFile {
    pub path: PathBuf,
    pub lane: Lane,
    /// Whole file counts as test code (under `tests/`, `benches/`,
    /// `examples/`, or a `build.rs`).
    pub all_test: bool,
    pub source: String,
}

/// Marks which tokens sit inside test-only items: any item annotated
/// `#[test]`, `#[cfg(test)]` (including `cfg(all(test, ...))`) or a
/// path attribute ending in `::test`. Attributes stack, and the item
/// body is skipped by brace/semicolon matching.
pub fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Gather one attribute `#[...]` (outer only; `#![...]` inner
        // attributes configure the whole file and are left alone).
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct('!') {
            i = j + 1;
            continue;
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut depth = 0usize;
        let mut is_test_attr = false;
        let mut attr_tokens: Vec<&Token> = Vec::new();
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                attr_tokens.push(&tokens[j]);
            }
            j += 1;
        }
        if attr_matches_test(&attr_tokens) {
            is_test_attr = true;
        }
        let attr_end = j; // index of closing ']'
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item, then the
        // item itself (to `;` or the end of its brace block).
        let mut k = attr_end + 1;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut d = 0usize;
            let mut m = k + 1;
            while m < tokens.len() {
                if tokens[m].is_punct('[') {
                    d += 1;
                } else if tokens[m].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        let mut d_paren = 0i32;
        let mut d_brace = 0i32;
        let mut end = tokens.len();
        let mut m = k;
        while m < tokens.len() {
            let t = &tokens[m];
            if t.is_punct('(') || t.is_punct('[') {
                d_paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                d_paren -= 1;
            } else if t.is_punct('{') {
                d_brace += 1;
            } else if t.is_punct('}') {
                d_brace -= 1;
                if d_brace == 0 && d_paren == 0 {
                    end = m + 1;
                    break;
                }
            } else if t.is_punct(';') && d_brace == 0 && d_paren == 0 {
                end = m + 1;
                break;
            }
            m += 1;
        }
        for slot in mask.iter_mut().take(end).skip(attr_start) {
            *slot = true;
        }
        i = end;
    }
    mask
}

/// Does a parsed attribute token list mean "test code"?
/// Matches `test`, `foo::test`, and `cfg(... test ...)`.
fn attr_matches_test(attr: &[&Token]) -> bool {
    if attr.is_empty() {
        return false;
    }
    // Bare `#[test]` or `#[tokio::test]` (path ending in `test`).
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if attr.last().is_some_and(|t| t.is_ident("test")) && !idents.contains(&"cfg") {
        return true;
    }
    // `#[cfg(test)]` / `#[cfg(all(test, feature = "x"))]`.
    idents.first() == Some(&"cfg") && idents.contains(&"test")
}

/// Lints one already-lexed file; S002 is handled by the caller because it
/// needs cross-file knowledge.
fn check_file(file: &SourceFile, lexed: &LexOutput) -> (Vec<Finding>, usize) {
    let in_test = if file.all_test {
        vec![true; lexed.tokens.len()]
    } else {
        compute_test_mask(&lexed.tokens)
    };
    let mut raw = rules::check_tokens(file.lane, &lexed.tokens, &in_test);
    raw.sort_by_key(|&(line, id)| (line, id));

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for (line, id) in raw {
        if is_allowed(lexed, line, id) {
            suppressed += 1;
            continue;
        }
        findings.push(make_finding(&file.path, line, id));
    }
    // Malformed directives are findings too: a suppression that doesn't
    // parse must not silently suppress nothing.
    for (line, what) in &lexed.bad_directives {
        findings.push(Finding {
            path: file.path.clone(),
            line: *line,
            rule: "L000".to_string(),
            summary: format!("malformed brb-lint directive: {what}"),
            hint: "syntax: // brb-lint: allow(<rule>) — <reason>".to_string(),
        });
    }
    (findings, suppressed)
}

/// A directive suppresses its own line and the line directly below it
/// (so it can sit above the offending statement when a trailing comment
/// would fight rustfmt).
fn is_allowed(lexed: &LexOutput, line: u32, rule: &str) -> bool {
    lexed
        .allows
        .iter()
        .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
}

fn make_finding(path: &Path, line: u32, id: &str) -> Finding {
    let info = rules::rule(id).expect("unknown rule id");
    Finding {
        path: path.to_path_buf(),
        line,
        rule: id.to_string(),
        summary: info.summary.to_string(),
        hint: info.hint.to_string(),
    }
}

/// Runs the full pass over `files`: per-file token rules plus the
/// cross-file S002 schema-pin rule.
pub fn run(files: &[SourceFile]) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    // Pass 1: lex everything once; collect schema literals declared in
    // non-test S-lane code and every string literal seen in test code.
    let lexed: Vec<LexOutput> = files.iter().map(|f| lex(&f.source)).collect();
    // literal -> first (file index, line) declaring it outside tests.
    let mut declared: BTreeMap<String, (usize, u32)> = BTreeMap::new();
    let mut test_literals: BTreeSet<String> = BTreeSet::new();
    for (fi, (file, lx)) in files.iter().zip(&lexed).enumerate() {
        let in_test = if file.all_test {
            vec![true; lx.tokens.len()]
        } else {
            compute_test_mask(&lx.tokens)
        };
        for (ti, t) in lx.tokens.iter().enumerate() {
            if t.kind != TokenKind::Str || !is_schema_literal(&t.text) {
                continue;
            }
            if in_test[ti] {
                test_literals.insert(t.text.clone());
            } else if file.lane == Lane::Schema {
                declared.entry(t.text.clone()).or_insert((fi, t.line));
            }
        }
    }

    // Pass 2: per-file rules.
    for (file, lx) in files.iter().zip(&lexed) {
        let (mut findings, suppressed) = check_file(file, lx);
        report.findings.append(&mut findings);
        report.suppressed += suppressed;
    }

    // Pass 3: S002 — every declared schema literal needs a test reference.
    for (literal, (fi, line)) in &declared {
        if test_literals.contains(literal) {
            continue;
        }
        if is_allowed(&lexed[*fi], *line, "S002") {
            report.suppressed += 1;
            continue;
        }
        let mut f = make_finding(&files[*fi].path, *line, "S002");
        f.summary = format!("schema literal {literal:?} has no key-order pin test referencing it");
        report.findings.push(f);
    }

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
}

/// Classifies a path into a lane.
///
/// Fixture convention first: a file whose name starts with `d`/`s`/`r`
/// followed by three digits and `_` (e.g. `d002_hashmap.rs`) gets the
/// lane of its rule prefix — this lets the fixture corpus exercise every
/// lane without living inside the real crates. Otherwise the crate
/// directory under `crates/` decides via the lane table.
pub fn lane_for_path(path: &Path) -> Lane {
    if let Some(lane) = fixture_lane(path) {
        return lane;
    }
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    for w in comps.windows(2) {
        if w[0] == "crates" {
            return rules::lane_for_crate(w[1]);
        }
    }
    Lane::None
}

/// The fixture-corpus lane, if the filename follows the
/// `<rule-prefix><nnn>_*.rs` convention.
pub fn fixture_lane(path: &Path) -> Option<Lane> {
    let name = path.file_name().and_then(|n| n.to_str())?;
    let b = name.as_bytes();
    if b.len() > 5 && b[1..4].iter().all(|c| c.is_ascii_digit()) && b[4] == b'_' {
        match b[0] {
            b'd' => return Some(Lane::Deterministic),
            b's' => return Some(Lane::Schema),
            b'r' => return Some(Lane::Rt),
            _ => {}
        }
    }
    None
}

/// Is every rule in this file's lane scoped away because the whole file
/// is test/dev code?
pub fn is_all_test_path(path: &Path) -> bool {
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    comps
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples")
        || path.file_name().is_some_and(|n| n == "build.rs")
}

/// Loads a file into a [`SourceFile`], classifying its lane and test-ness.
/// Fixture-named files are never "all test" even though the corpus lives
/// under `tests/fixtures/` — they exist to trip the non-test rules.
pub fn load_file(path: &Path) -> std::io::Result<SourceFile> {
    let source = std::fs::read_to_string(path)?;
    let is_fixture = fixture_lane(path).is_some();
    Ok(SourceFile {
        lane: lane_for_path(path),
        all_test: !is_fixture && is_all_test_path(path),
        path: path.to_path_buf(),
        source,
    })
}

/// Recursively collects `.rs` files under `root`, skipping `target/` and
/// the lint crate's own deliberately-bad fixture corpus.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
