//! The rule catalog and the per-lane token checks.
//!
//! Rules are scoped per *lane* via [`lane_for_crate`]: the deterministic
//! sim-side crates get the D-rules, the report-writing crates get the
//! S-rules, and the thread-heavy live runtime gets the R-rules. A crate
//! outside every lane is still lexed (its test code can satisfy S002
//! schema-pin references) but produces no findings.

use crate::lexer::{Token, TokenKind};

/// Which rule set applies to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Bit-exact determinism rules (D001–D004).
    Deterministic,
    /// Schema/report stability rules (S001–S002).
    Schema,
    /// Live-runtime lock/channel discipline rules (R001–R003).
    Rt,
    /// Lexed but not checked.
    None,
}

/// The per-crate lane table. Crate names are the directory names under
/// `crates/`.
pub const LANE_TABLE: &[(&str, Lane)] = &[
    ("sim", Lane::Deterministic),
    ("core", Lane::Deterministic),
    ("net", Lane::Deterministic),
    ("sched", Lane::Deterministic),
    ("select", Lane::Deterministic),
    ("store", Lane::Deterministic),
    ("workload", Lane::Deterministic),
    ("lab", Lane::Schema),
    ("metrics", Lane::Schema),
    ("rt", Lane::Rt),
];

/// Lane for a crate directory name (`"sim"`, `"rt"`, ...).
pub fn lane_for_crate(name: &str) -> Lane {
    LANE_TABLE
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(Lane::None, |(_, l)| *l)
}

/// Static metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub lane: Lane,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// The full catalog (also rendered in `crates/lint/README.md`).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        lane: Lane::Deterministic,
        summary: "wall-clock read (`Instant`/`SystemTime`) in a deterministic crate",
        hint: "derive all time from the simulated clock (SimTime); wall-clock reads break bit-exact replay",
    },
    RuleInfo {
        id: "D002",
        lane: Lane::Deterministic,
        summary: "`HashMap`/`HashSet` in non-test code of a deterministic crate",
        hint: "RandomState makes iteration order nondeterministic; use BTreeMap/BTreeSet or a dense slab",
    },
    RuleInfo {
        id: "D003",
        lane: Lane::Deterministic,
        summary: "ambient entropy (`thread_rng`/`from_entropy`/`OsRng`) in a deterministic crate",
        hint: "all randomness must flow from the run's seed; plumb an explicit seeded Rng",
    },
    RuleInfo {
        id: "D004",
        lane: Lane::Deterministic,
        summary: "`as usize` truncation of an event-time value",
        hint: "event times are u64 nanoseconds; truncating to usize silently wraps on 32-bit targets",
    },
    RuleInfo {
        id: "S001",
        lane: Lane::Schema,
        summary: "`HashMap`/`HashSet` in non-test code of a report-writing crate",
        hint: "hand-written serde emitters must iterate in a stable order; use BTreeMap or a Vec",
    },
    RuleInfo {
        id: "S002",
        lane: Lane::Schema,
        summary: "schema string literal with no key-order pin test referencing it",
        hint: "add a test that pins the literal and the writer's key order (see crates/lab/tests/golden.rs)",
    },
    RuleInfo {
        id: "R001",
        lane: Lane::Rt,
        summary: "lock acquired inside a `send`/`recv` call expression",
        hint: "take the guard (or copy the data out) before the channel call; locks held across channel internals invite deadlock",
    },
    RuleInfo {
        id: "R002",
        lane: Lane::Rt,
        summary: "`unwrap()` on a channel send/recv result outside tests",
        hint: "channel endpoints close during shutdown; map the error to a typed RtError instead of panicking",
    },
    RuleInfo {
        id: "R003",
        lane: Lane::Rt,
        summary: "`std::sync` lock in the live runtime",
        hint: "use parking_lot — the debug lock-order detector only instruments parking_lot locks",
    },
];

/// Looks up a rule by ID.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// A raw (pre-suppression) finding: `(line, rule id)`.
pub type RawFinding = (u32, &'static str);

const CHANNEL_CALLS: &[&str] = &["send", "try_send", "recv", "try_recv", "recv_timeout"];
const LOCK_CALLS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Runs every identifier-level rule for `lane` over `tokens`.
/// `in_test[i]` marks tokens inside `#[cfg(test)]`/`#[test]` items (or a
/// whole test/bench/example file); "non-test" rules skip those.
pub fn check_tokens(lane: Lane, tokens: &[Token], in_test: &[bool]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    match lane {
        Lane::Deterministic => {
            check_idents(
                tokens,
                in_test,
                &["Instant", "SystemTime"],
                "D001",
                &mut findings,
            );
            check_idents(
                tokens,
                in_test,
                &["HashMap", "HashSet"],
                "D002",
                &mut findings,
            );
            check_idents(
                tokens,
                in_test,
                &["thread_rng", "from_entropy", "OsRng"],
                "D003",
                &mut findings,
            );
            check_time_truncation(tokens, in_test, &mut findings);
        }
        Lane::Schema => {
            check_idents(
                tokens,
                in_test,
                &["HashMap", "HashSet"],
                "S001",
                &mut findings,
            );
            // S002 is a cross-file rule; the engine drives it.
        }
        Lane::Rt => {
            check_lock_in_channel_call(tokens, in_test, &mut findings);
            check_channel_unwrap(tokens, in_test, &mut findings);
            check_std_sync_locks(tokens, in_test, &mut findings);
        }
        Lane::None => {}
    }
    findings
}

/// Flags any non-test identifier in `names`.
fn check_idents(
    tokens: &[Token],
    in_test: &[bool],
    names: &[&str],
    id: &'static str,
    out: &mut Vec<RawFinding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !in_test[i] && t.kind == TokenKind::Ident && names.contains(&t.text.as_str()) {
            out.push((t.line, id));
        }
    }
}

/// D004: `<time-ish expr> as usize`. The value being cast is approximated
/// by the nearest identifier to the left of `as`, skipping closing parens
/// (so `event.time() as usize` resolves to `time`).
fn check_time_truncation(tokens: &[Token], in_test: &[bool], out: &mut Vec<RawFinding>) {
    for i in 1..tokens.len().saturating_sub(1) {
        if in_test[i] || !tokens[i].is_ident("as") || !tokens[i + 1].is_ident("usize") {
            continue;
        }
        let mut j = i;
        while j > 0 && (tokens[j - 1].is_punct(')') || tokens[j - 1].is_punct('(')) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = &tokens[j - 1];
        if prev.kind == TokenKind::Ident && is_time_ident(&prev.text) {
            out.push((tokens[i].line, "D004"));
        }
    }
}

fn is_time_ident(name: &str) -> bool {
    matches!(name, "now" | "time" | "deadline" | "timestamp")
        || name.ends_with("_ns")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.ends_with("_time")
        || name.ends_with("_nanos")
        || name.ends_with("_micros")
        || name.ends_with("_millis")
        || name.ends_with("_deadline")
}

/// R001: a `.lock()`/`.read()`/`.write()` *method call* lexically inside
/// the argument list of a `send(...)`/`recv(...)` call.
fn check_lock_in_channel_call(tokens: &[Token], in_test: &[bool], out: &mut Vec<RawFinding>) {
    let mut i = 0;
    while i + 1 < tokens.len() {
        let is_channel_call = !in_test[i]
            && tokens[i].kind == TokenKind::Ident
            && CHANNEL_CALLS.contains(&tokens[i].text.as_str())
            && tokens[i + 1].is_punct('(');
        if !is_channel_call {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth >= 1
                && j + 1 < tokens.len()
                && tokens[j].kind == TokenKind::Ident
                && LOCK_CALLS.contains(&tokens[j].text.as_str())
                && tokens[j + 1].is_punct('(')
                && j > 0
                && tokens[j - 1].is_punct('.')
            {
                out.push((tokens[j].line, "R001"));
            }
            j += 1;
        }
        i += 1;
    }
}

/// R002: `send(...)/recv(...)` immediately followed by `.unwrap()`.
fn check_channel_unwrap(tokens: &[Token], in_test: &[bool], out: &mut Vec<RawFinding>) {
    let mut i = 0;
    while i + 1 < tokens.len() {
        let is_channel_call = !in_test[i]
            && tokens[i].kind == TokenKind::Ident
            && CHANNEL_CALLS.contains(&tokens[i].text.as_str())
            && tokens[i + 1].is_punct('(')
            // Method-call position only: `tx.send(..)`, not `fn send(..)`.
            && i > 0
            && tokens[i - 1].is_punct('.');
        if !is_channel_call {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if j + 2 < tokens.len() && tokens[j + 1].is_punct('.') && tokens[j + 2].is_ident("unwrap") {
            out.push((tokens[j + 2].line, "R002"));
        }
        i = j.max(i) + 1;
    }
}

/// R003: any path `std::sync::{Mutex,RwLock,Condvar}` (inline or in a
/// `use` list). Atomics, `Arc` and `mpsc` stay legal.
fn check_std_sync_locks(tokens: &[Token], in_test: &[bool], out: &mut Vec<RawFinding>) {
    const STD_LOCKS: &[&str] = &["Mutex", "RwLock", "Condvar"];
    let mut i = 0;
    while i + 6 < tokens.len() {
        let path_head = !in_test[i]
            && tokens[i].is_ident("std")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("sync")
            && tokens[i + 4].is_punct(':')
            && tokens[i + 5].is_punct(':');
        if !path_head {
            i += 1;
            continue;
        }
        let next = &tokens[i + 6];
        if next.kind == TokenKind::Ident && STD_LOCKS.contains(&next.text.as_str()) {
            out.push((next.line, "R003"));
        } else if next.is_punct('{') {
            // `use std::sync::{Arc, Mutex, ...};`
            let mut depth = 1usize;
            let mut j = i + 7;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                } else if tokens[j].kind == TokenKind::Ident
                    && STD_LOCKS.contains(&tokens[j].text.as_str())
                    // Skip sub-paths like `atomic::{...}` inside the list.
                    && !tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                {
                    out.push((tokens[j].line, "R003"));
                }
                j += 1;
            }
        }
        i += 6;
    }
}

/// S002 helper: does a string literal look like a schema tag
/// (`brb-lab/report-v1` and friends)?
pub fn is_schema_literal(s: &str) -> bool {
    let Some((ns, name)) = s.split_once('/') else {
        return false;
    };
    if !ns.starts_with("brb") || name.is_empty() || name.contains('/') {
        return false;
    }
    // Must end in `-v<digits>`.
    let Some(vpos) = name.rfind("-v") else {
        return false;
    };
    let digits = &name[vpos + 2..];
    !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
}
