//! The `brb-lint` binary.
//!
//! * `brb-lint` — lint the whole workspace (root found by walking up
//!   from the current directory to a `Cargo.toml` with `[workspace]`).
//! * `brb-lint <path>...` — lint specific files or directories; fixture
//!   files named `<rule-prefix><nnn>_*.rs` (e.g. `d002_hashmap.rs`)
//!   get their lane from the prefix, everything else from the crate
//!   lane table.
//!
//! Exit status: 0 when clean, 1 on any unsuppressed finding, 2 on I/O
//! or usage errors. The final summary line is grepped by CI — keep its
//! shape (`brb-lint: scanned N files, M findings, K suppressed`).

use brb_lint::{collect_workspace_files, load_file, run, SourceFile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: brb-lint [<file-or-dir>...]   (no args = whole workspace)");
        return ExitCode::from(0);
    }

    let paths: Vec<PathBuf> = if args.is_empty() {
        let Some(root) = find_workspace_root() else {
            eprintln!("brb-lint: no workspace root found (Cargo.toml with [workspace])");
            return ExitCode::from(2);
        };
        match collect_workspace_files(&root) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("brb-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for a in &args {
            let p = PathBuf::from(a);
            if p.is_dir() {
                match collect_files_unfiltered(&p) {
                    Ok(mut v) => out.append(&mut v),
                    Err(e) => {
                        eprintln!("brb-lint: walking {}: {e}", p.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                out.push(p);
            }
        }
        out
    };

    let mut files: Vec<SourceFile> = Vec::with_capacity(paths.len());
    for p in &paths {
        match load_file(p) {
            Ok(f) => files.push(f),
            Err(e) => {
                eprintln!("brb-lint: reading {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = run(&files);
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "brb-lint: scanned {} files, {} findings, {} suppressed",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    );
    if report.findings.is_empty() {
        ExitCode::from(0)
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current dir to the first `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Explicit-path walk: unlike the workspace walk this does NOT skip
/// `fixtures/` — pointing the binary at the fixture corpus is exactly how
/// the corpus is exercised.
fn collect_files_unfiltered(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".rs"))
            {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
