//! A playlist-structured synthetic trace: the SoundCloud substitute.
//!
//! The paper's workload is "gathered from SoundCloud and comprises of
//! approximately 500,000 tasks, with an average fan-out of 8.6 requests per
//! task" — a task is typically "requesting all tracks in a playlist". The
//! production trace is unavailable, so we model its *structure*:
//!
//! * a **catalog** of tracks (keys) whose byte sizes follow the ETC Pareto
//!   fit and never change;
//! * a **playlist population** whose lengths follow the calibrated
//!   SoundCloud fan-out mixture (mean ≈ 8.6, heavy tail) and whose member
//!   tracks are drawn by Zipf popularity (hit tracks appear in many
//!   playlists);
//! * **tasks** that pick a playlist by Zipf popularity and fetch *all* of
//!   its tracks — giving correlated key sets across tasks, unlike
//!   independent per-request sampling.

use crate::fanout::{FanoutDist, FanoutSampler};
use crate::keyspace::{KeySpace, Popularity};
use crate::poisson::PoissonProcess;
use crate::taskgen::{RequestSpec, SizeModel, TaskSpec};
use crate::trace::Trace;
use crate::zipf::Zipf;
use rand::Rng;
use serde::{Deserialize, Serialize};
// brb-lint: allow(D002) — membership-only dedup set below; never iterated
use std::collections::HashSet;

/// Configuration for the playlist-model trace builder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoundCloudConfig {
    /// Number of distinct tracks (keys) in the catalog.
    pub num_tracks: u64,
    /// Number of playlists in the population.
    pub num_playlists: u64,
    /// Playlist length distribution (defaults to the calibrated mixture).
    pub length_dist: FanoutDist,
    /// Zipf exponent for track popularity within playlists.
    pub track_zipf: f64,
    /// Zipf exponent for playlist popularity across tasks.
    pub playlist_zipf: f64,
    /// Value-size model for track payloads.
    pub sizes: SizeModel,
}

impl Default for SoundCloudConfig {
    fn default() -> Self {
        SoundCloudConfig {
            num_tracks: 100_000,
            num_playlists: 20_000,
            length_dist: FanoutDist::soundcloud_like(),
            track_zipf: 0.9,
            playlist_zipf: 0.8,
            sizes: SizeModel::facebook_etc(),
        }
    }
}

/// A generated playlist catalog plus popularity models; reusable across
/// traces (e.g. the six seeds of Figure 2 share one catalog shape).
#[derive(Debug, Clone)]
pub struct SoundCloudModel {
    config: SoundCloudConfig,
    /// Requests per playlist, value sizes resolved at build time: tracks
    /// are distinct within a playlist and a track's byte size is a fixed
    /// property of its key, so trace generation can reuse these verbatim
    /// instead of re-deriving sizes for every fetching task.
    playlists: Vec<Vec<RequestSpec>>,
    playlist_pop: Zipf,
}

impl SoundCloudModel {
    /// Builds the catalog and playlist population from `config`, using
    /// `rng` (a dedicated labelled stream) for all structural randomness.
    pub fn build<R: Rng>(config: SoundCloudConfig, rng: &mut R) -> Self {
        assert!(config.num_playlists > 0, "need at least one playlist");
        let lengths = FanoutSampler::new(config.length_dist.clone());
        let tracks = KeySpace::new(config.num_tracks, Popularity::Zipf(config.track_zipf));
        let mut playlists = Vec::with_capacity(config.num_playlists as usize);
        for _ in 0..config.num_playlists {
            let want = lengths.sample(rng) as usize;
            let len = want.min(config.num_tracks as usize);
            let mut members = Vec::with_capacity(len);
            // Insert/contains only: playlist membership dedup;
            // iteration order is never observed.
            // brb-lint: allow(D002) — membership-only dedup, never iterated
            let mut seen = HashSet::with_capacity(len);
            let mut attempts = 0usize;
            while members.len() < len {
                let key = tracks.sample_key(rng);
                attempts += 1;
                if seen.insert(key) || attempts > len * 64 {
                    members.push(RequestSpec {
                        key,
                        value_bytes: config.sizes.size_of(key),
                    });
                }
            }
            playlists.push(members);
        }
        let playlist_pop = Zipf::new(config.num_playlists, config.playlist_zipf);
        SoundCloudModel {
            config,
            playlists,
            playlist_pop,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &SoundCloudConfig {
        &self.config
    }

    /// Number of playlists in the population.
    pub fn num_playlists(&self) -> usize {
        self.playlists.len()
    }

    /// The requests (track key + resolved value size) of playlist `i`.
    pub fn playlist(&self, i: usize) -> &[RequestSpec] {
        &self.playlists[i]
    }

    /// Mean playlist length of the *built* population (sampled lengths, not
    /// the theoretical distribution mean).
    pub fn mean_playlist_len(&self) -> f64 {
        let total: usize = self.playlists.iter().map(|p| p.len()).sum();
        total as f64 / self.playlists.len() as f64
    }

    /// Generates a trace of `num_tasks` playlist-fetch tasks with Poisson
    /// arrivals at `task_rate_per_sec`.
    pub fn generate_trace<R: Rng>(
        &self,
        num_tasks: usize,
        task_rate_per_sec: f64,
        rng: &mut R,
    ) -> Trace {
        let mut arrivals = PoissonProcess::new(task_rate_per_sec);
        let mut tasks = Vec::with_capacity(num_tasks);
        for id in 0..num_tasks {
            let arrival_ns = arrivals.next_arrival_ns(rng);
            let pl = self.playlist_pop.sample(rng) as usize;
            tasks.push(TaskSpec {
                id: id as u64,
                arrival_ns,
                // Sizes were resolved once at build time; a fetch is a
                // straight copy of the playlist's request list.
                requests: self.playlists[pl].clone(),
            });
        }
        Trace::new(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_model(seed: u64) -> SoundCloudModel {
        let config = SoundCloudConfig {
            num_tracks: 5_000,
            num_playlists: 1_000,
            ..Default::default()
        };
        SoundCloudModel::build(config, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn playlists_have_distinct_tracks() {
        let m = small_model(1);
        for i in 0..m.num_playlists() {
            let p = m.playlist(i);
            let distinct: HashSet<u64> = p.iter().map(|r| r.key).collect();
            assert_eq!(distinct.len(), p.len(), "playlist {i} repeats a track");
            assert!(!p.is_empty());
            // Build-time sizes match the key-deterministic size model.
            for r in p {
                assert_eq!(r.value_bytes, m.config().sizes.size_of(r.key));
            }
        }
    }

    #[test]
    fn population_mean_length_near_target() {
        let m = small_model(2);
        let mean = m.mean_playlist_len();
        assert!((mean - 8.6).abs() < 1.0, "mean playlist length {mean}");
    }

    #[test]
    fn trace_fanout_tracks_playlist_lengths() {
        let m = small_model(3);
        let t = m.generate_trace(5_000, 1_000.0, &mut StdRng::seed_from_u64(4));
        let s = t.stats().unwrap();
        // Popularity is independent of length, so the trace mean fan-out
        // should approximate the population mean length.
        assert!(
            (s.mean_fanout - m.mean_playlist_len()).abs() < 1.5,
            "trace {} vs population {}",
            s.mean_fanout,
            m.mean_playlist_len()
        );
    }

    #[test]
    fn repeated_tasks_share_key_sets() {
        // With Zipf playlist popularity, popular playlists are fetched by
        // many tasks — the correlated-access structure independent
        // sampling cannot produce.
        let m = small_model(5);
        let t = m.generate_trace(2_000, 1_000.0, &mut StdRng::seed_from_u64(6));
        let mut key_sets = std::collections::HashMap::new();
        for task in &t.tasks {
            let mut keys: Vec<u64> = task.requests.iter().map(|r| r.key).collect();
            keys.sort_unstable();
            *key_sets.entry(keys).or_insert(0u32) += 1;
        }
        let max_repeat = key_sets.values().copied().max().unwrap();
        assert!(
            max_repeat > 5,
            "no playlist fetched repeatedly ({max_repeat})"
        );
    }

    #[test]
    fn track_sizes_stable_across_tasks() {
        let m = small_model(7);
        let t = m.generate_trace(1_000, 1_000.0, &mut StdRng::seed_from_u64(8));
        let mut sizes = std::collections::HashMap::new();
        for task in &t.tasks {
            for r in &task.requests {
                let prev = sizes.insert(r.key, r.value_bytes);
                if let Some(p) = prev {
                    assert_eq!(p, r.value_bytes);
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = small_model(9);
        let b = small_model(9);
        for i in 0..a.num_playlists() {
            assert_eq!(a.playlist(i), b.playlist(i));
        }
    }
}
