//! The key universe and its popularity model.
//!
//! Keys are dense integers `0..num_keys`. Popularity follows either a
//! uniform or a Zipf law over *ranks*; ranks are mapped to keys through a
//! fixed multiplicative permutation so that hot keys scatter across the
//! whole key space (and therefore across partitions) instead of clustering
//! at low key ids.

use crate::zipf::Zipf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How key popularity is distributed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub enum Popularity {
    /// All keys equally likely.
    Uniform,
    /// Zipf with the given exponent (≈0.9–1.0 for web caches).
    Zipf(f64),
}

/// A finite key universe with a popularity distribution.
#[derive(Debug, Clone)]
pub struct KeySpace {
    num_keys: u64,
    popularity: Popularity,
    zipf: Option<Zipf>,
    /// Multiplier coprime with `num_keys`, used to permute ranks.
    multiplier: u64,
    /// Additive offset so rank 0 does not map to key 0.
    offset: u64,
}

impl KeySpace {
    /// Creates a key space of `num_keys` keys.
    ///
    /// # Panics
    /// Panics if `num_keys` is zero.
    pub fn new(num_keys: u64, popularity: Popularity) -> Self {
        assert!(num_keys > 0, "key space must be non-empty");
        let zipf = match popularity {
            Popularity::Uniform => None,
            Popularity::Zipf(s) => Some(Zipf::new(num_keys, s)),
        };
        // A large odd constant is coprime with every power of two and with
        // high probability with arbitrary `num_keys`; oddness alone makes
        // the map `r -> r*m mod n` a bijection whenever n is a power of
        // two, and for general n we fall back to a coprimality fix-up.
        let mut multiplier = 0x9E37_79B9_7F4A_7C15 % num_keys.max(1);
        if multiplier == 0 {
            multiplier = 1;
        }
        while gcd(multiplier, num_keys) != 1 {
            multiplier += 1;
        }
        let offset = 0xD1B5_4A32_D192_ED03 % num_keys;
        KeySpace {
            num_keys,
            popularity,
            zipf,
            multiplier,
            offset,
        }
    }

    /// Number of keys in the universe.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// The popularity model.
    pub fn popularity(&self) -> Popularity {
        self.popularity
    }

    /// Maps a popularity rank to its (permuted) key id via an affine
    /// bijection `rank ↦ rank·m + b (mod n)` with `gcd(m, n) = 1`.
    pub fn key_for_rank(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.num_keys);
        (rank.wrapping_mul(self.multiplier) % self.num_keys + self.offset) % self.num_keys
    }

    /// Draws a key according to the popularity model.
    pub fn sample_key<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = match &self.zipf {
            None => rng.random_range(0..self.num_keys),
            Some(z) => z.sample(rng),
        };
        self.key_for_rank(rank)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn rank_to_key_is_a_bijection() {
        for n in [1u64, 2, 7, 100, 1024, 99_991] {
            let ks = KeySpace::new(n, Popularity::Uniform);
            let keys: HashSet<u64> = (0..n).map(|r| ks.key_for_rank(r)).collect();
            assert_eq!(keys.len() as u64, n, "collision for n={n}");
            assert!(keys.iter().all(|&k| k < n));
        }
    }

    #[test]
    fn uniform_sampling_covers_space() {
        let ks = KeySpace::new(100, Popularity::Uniform);
        let mut rng = StdRng::seed_from_u64(4);
        let seen: HashSet<u64> = (0..10_000).map(|_| ks.sample_key(&mut rng)).collect();
        assert!(seen.len() > 95, "only {} keys seen", seen.len());
    }

    #[test]
    fn zipf_sampling_is_skewed_but_scattered() {
        let ks = KeySpace::new(10_000, Popularity::Zipf(1.0));
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(ks.sample_key(&mut rng)).or_insert(0u64) += 1;
        }
        let hottest_key = *counts.iter().max_by_key(|(_, &c)| c).unwrap().0;
        // Hot rank 0 maps to a permuted location, not to key 0.
        assert_eq!(hottest_key, ks.key_for_rank(0));
        assert_ne!(hottest_key, 0);
        // Skew: hottest key gets far more than the uniform share.
        let hot_count = counts[&hottest_key];
        assert!(hot_count > 100_000 / 10_000 * 100);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_keyspace_rejected() {
        KeySpace::new(0, Popularity::Uniform);
    }
}
