//! Exact Zipf sampling over a finite key universe.
//!
//! Key popularity in web caches is famously skewed; the ETC study the paper
//! cites observes Zipf-like access patterns. We sample ranks from
//! `P(rank = r) ∝ r^(−s)` using a precomputed cumulative table and binary
//! search — exact, O(log n) per draw, and trivially verifiable, which we
//! prefer over rejection-inversion for a reproduction whose correctness is
//! under scrutiny.

use rand::Rng;

/// Table-based Zipf(n, s) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    /// cdf[i] = P(rank <= i); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf {
            n,
            exponent: s,
            cdf,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of a given rank (0-based).
    pub fn pmf(&self, rank: u64) -> f64 {
        assert!(rank < self.n, "rank out of range");
        let i = rank as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = rng.random::<f64>();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(1000, 0.99);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..1000 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (r, &count) in counts.iter().enumerate().take(10) {
            let emp = count as f64 / n as f64;
            let theory = z.pmf(r as u64);
            let rel = (emp - theory).abs() / theory;
            assert!(rel < 0.05, "rank {r}: emp {emp} theory {theory}");
        }
    }

    #[test]
    fn rank_zero_dominates_with_high_exponent() {
        let z = Zipf::new(10_000, 1.2);
        assert!(z.pmf(0) > 0.1, "head not hot enough: {}", z.pmf(0));
        assert!(z.pmf(0) > 100.0 * z.pmf(999));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn singleton_universe() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn empty_universe_rejected() {
        Zipf::new(0, 1.0);
    }
}
