//! Exact Zipf sampling over a finite key universe.
//!
//! Key popularity in web caches is famously skewed; the ETC study the paper
//! cites observes Zipf-like access patterns. We sample ranks from
//! `P(rank = r) ∝ r^(−s)` through a Vose **alias table**
//! ([`brb_sim::AliasTable`]): exact, O(1) per draw and O(n) to build —
//! replacing the old cumulative-table binary search, whose O(log n)
//! pointer-chasing per draw dominated trace generation. The explicit pmf
//! is kept alongside the table, so correctness stays trivially checkable
//! (differential tests reconstruct the pmf from the alias structure).

use brb_sim::AliasTable;
use rand::Rng;

/// Alias-table Zipf(n, s) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    /// pmf[i] = P(rank = i), normalized.
    pmf: Vec<f64>,
    /// O(1) sampler over `pmf`.
    alias: AliasTable,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let mut pmf: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
        let total: f64 = pmf.iter().sum();
        for p in pmf.iter_mut() {
            *p /= total;
        }
        let alias = AliasTable::new(&pmf);
        Zipf {
            n,
            exponent: s,
            pmf,
            alias,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of a given rank (0-based).
    pub fn pmf(&self, rank: u64) -> f64 {
        assert!(rank < self.n, "rank out of range");
        self.pmf[rank as usize]
    }

    /// Draws a rank in `0..n` (0 = most popular) in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.alias.sample(rng) as u64
    }

    /// The alias structure behind [`Self::sample`] — exposed so tests can
    /// reconstruct the sampled distribution and compare it to [`Self::pmf`].
    pub fn alias_table(&self) -> &AliasTable {
        &self.alias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(1000, 0.99);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..1000 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (r, &count) in counts.iter().enumerate().take(10) {
            let emp = count as f64 / n as f64;
            let theory = z.pmf(r as u64);
            let rel = (emp - theory).abs() / theory;
            assert!(rel < 0.05, "rank {r}: emp {emp} theory {theory}");
        }
    }

    #[test]
    fn rank_zero_dominates_with_high_exponent() {
        let z = Zipf::new(10_000, 1.2);
        assert!(z.pmf(0) > 0.1, "head not hot enough: {}", z.pmf(0));
        assert!(z.pmf(0) > 100.0 * z.pmf(999));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn singleton_universe() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn empty_universe_rejected() {
        Zipf::new(0, 1.0);
    }

    /// Differential: the alias structure must encode *exactly* the pmf —
    /// reconstructing each rank's probability from retention/donor mass
    /// recovers the cumulative-table distribution the sampler replaced.
    #[test]
    fn alias_structure_reconstructs_pmf() {
        for (n, s) in [(1u64, 1.0), (7, 0.0), (100, 0.99), (1000, 1.2)] {
            let z = Zipf::new(n, s);
            let t = z.alias_table();
            for r in 0..n {
                let want = z.pmf(r);
                let got = t.pmf(r as usize);
                assert!(
                    (got - want).abs() < 1e-12,
                    "Zipf({n},{s}) rank {r}: alias {got} vs pmf {want}"
                );
            }
        }
    }

    /// Differential: O(1) alias draws and the old O(log n) cumulative
    /// scan sample the same distribution (matching empirical frequencies
    /// on the hot head under independent streams).
    #[test]
    fn alias_and_cdf_scan_agree_empirically() {
        let z = Zipf::new(200, 0.9);
        // Rebuild the old cumulative table from the pmf.
        let mut cdf: Vec<f64> = Vec::with_capacity(200);
        let mut acc = 0.0;
        for r in 0..200 {
            acc += z.pmf(r);
            cdf.push(acc);
        }
        let n = 300_000u64;
        let mut alias_counts = vec![0u64; 200];
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..n {
            alias_counts[z.sample(&mut rng) as usize] += 1;
        }
        let mut scan_counts = vec![0u64; 200];
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..n {
            let u = rng.random::<f64>();
            let idx = cdf.partition_point(|&c| c < u).min(199);
            scan_counts[idx] += 1;
        }
        for r in 0..20 {
            let a = alias_counts[r] as f64 / n as f64;
            let s = scan_counts[r] as f64 / n as f64;
            assert!((a - s).abs() / s < 0.06, "rank {r}: alias {a} vs scan {s}");
        }
    }
}
