//! Serializable traces and their summary statistics.
//!
//! A [`Trace`] freezes a generated workload so an experiment can be
//! replayed byte-identically, compared across policies under common random
//! numbers, or inspected offline. Serialization is line-delimited JSON
//! (one task per line) so half-million-task traces stream without
//! buffering the whole file.

use crate::taskgen::TaskSpec;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// A frozen workload: tasks ordered by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Tasks in non-decreasing arrival order.
    pub tasks: Vec<TaskSpec>,
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of tasks.
    pub num_tasks: u64,
    /// Total requests across tasks.
    pub num_requests: u64,
    /// Mean fan-out (requests per task).
    pub mean_fanout: f64,
    /// Largest fan-out in the trace.
    pub max_fanout: u32,
    /// Mean value size in bytes.
    pub mean_value_bytes: f64,
    /// Largest value size in bytes.
    pub max_value_bytes: u64,
    /// Trace duration (first to last arrival), nanoseconds.
    pub duration_ns: u64,
    /// Mean task arrival rate over the trace duration (tasks/second).
    pub task_rate_per_sec: f64,
}

impl Trace {
    /// Wraps a task list.
    ///
    /// # Panics
    /// Debug-asserts arrival order.
    pub fn new(tasks: Vec<TaskSpec>) -> Self {
        debug_assert!(
            tasks.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "tasks must be ordered by arrival"
        );
        Trace { tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Computes summary statistics; `None` for an empty trace.
    pub fn stats(&self) -> Option<TraceStats> {
        if self.tasks.is_empty() {
            return None;
        }
        let num_tasks = self.tasks.len() as u64;
        let num_requests: u64 = self.tasks.iter().map(|t| t.requests.len() as u64).sum();
        let max_fanout = self
            .tasks
            .iter()
            .map(|t| t.requests.len() as u32)
            .max()
            .unwrap_or(0);
        let total_bytes: u64 = self.tasks.iter().map(|t| t.total_bytes()).sum();
        let max_value_bytes = self
            .tasks
            .iter()
            .flat_map(|t| t.requests.iter().map(|r| r.value_bytes))
            .max()
            .unwrap_or(0);
        let first = self.tasks.first().unwrap().arrival_ns;
        let last = self.tasks.last().unwrap().arrival_ns;
        let duration_ns = last.saturating_sub(first);
        let task_rate_per_sec = if duration_ns == 0 {
            0.0
        } else {
            (num_tasks - 1) as f64 / (duration_ns as f64 / 1e9)
        };
        Some(TraceStats {
            num_tasks,
            num_requests,
            mean_fanout: num_requests as f64 / num_tasks as f64,
            max_fanout,
            mean_value_bytes: total_bytes as f64 / num_requests as f64,
            max_value_bytes,
            duration_ns,
            task_rate_per_sec,
        })
    }

    /// Writes the trace as JSON Lines (one task per line).
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for task in &self.tasks {
            serde_json::to_writer(&mut w, task)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a trace from JSON Lines, validating arrival order.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Trace> {
        let mut tasks = Vec::new();
        let mut prev_arrival = 0u64;
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let task: TaskSpec = serde_json::from_str(&line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?;
            if task.arrival_ns < prev_arrival {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: arrivals out of order", lineno + 1),
                ));
            }
            prev_arrival = task.arrival_ns;
            tasks.push(task);
        }
        Ok(Trace { tasks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fanout::FanoutDist;
    use crate::keyspace::{KeySpace, Popularity};
    use crate::poisson::PoissonProcess;
    use crate::taskgen::{SizeModel, TaskGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_trace(n: usize) -> Trace {
        let mut g = TaskGenerator::new(
            PoissonProcess::new(1_000.0),
            FanoutDist::soundcloud_like(),
            KeySpace::new(10_000, Popularity::Zipf(0.9)),
            SizeModel::facebook_etc(),
            StdRng::seed_from_u64(21),
        );
        Trace::new(g.take(n))
    }

    #[test]
    fn stats_reflect_generator_parameters() {
        let t = small_trace(5_000);
        let s = t.stats().unwrap();
        assert_eq!(s.num_tasks, 5_000);
        assert!((s.mean_fanout - 8.6).abs() < 0.6, "{}", s.mean_fanout);
        assert!((s.task_rate_per_sec - 1_000.0).abs() / 1_000.0 < 0.1);
        assert!(s.mean_value_bytes > 100.0 && s.mean_value_bytes < 1_000.0);
        assert!(s.max_fanout >= 32);
    }

    #[test]
    fn empty_trace_has_no_stats() {
        assert!(Trace::default().stats().is_none());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn jsonl_round_trips() {
        let t = small_trace(200);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_rejects_garbage_and_disorder() {
        let garbage = b"not json\n";
        assert!(Trace::read_jsonl(&garbage[..]).is_err());

        let t1 = r#"{"id":0,"arrival_ns":100,"requests":[{"key":1,"value_bytes":10}]}"#;
        let t0 = r#"{"id":1,"arrival_ns":50,"requests":[{"key":2,"value_bytes":10}]}"#;
        let out_of_order = format!("{t1}\n{t0}\n");
        let err = Trace::read_jsonl(out_of_order.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let line = r#"{"id":0,"arrival_ns":1,"requests":[{"key":1,"value_bytes":2}]}"#;
        let text = format!("\n{line}\n\n");
        let t = Trace::read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn single_task_trace_stats() {
        let line = r#"{"id":0,"arrival_ns":5,"requests":[{"key":1,"value_bytes":100}]}"#;
        let t = Trace::read_jsonl(line.as_bytes()).unwrap();
        let s = t.stats().unwrap();
        assert_eq!(s.num_tasks, 1);
        assert_eq!(s.duration_ns, 0);
        assert_eq!(s.task_rate_per_sec, 0.0);
        assert_eq!(s.mean_value_bytes, 100.0);
    }
}
