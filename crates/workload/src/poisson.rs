//! Poisson arrival process.
//!
//! Task inter-arrival times are exponential with rate λ; the paper sets λ
//! to 70% of system capacity. Gaps are drawn as `Δt = E/λ` with `E` a
//! standard exponential from the ziggurat sampler in `brb_sim::dist` —
//! exact, always finite, and transcendental-free on the common path
//! (the old inverse CDF paid a `ln` per arrival).

use rand::Rng;

/// A Poisson process generating exponential inter-arrival gaps, tracking
/// the absolute time of the next arrival in nanoseconds.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_per_sec: f64,
    next_ns: u64,
}

impl PoissonProcess {
    /// Creates a process with `rate_per_sec` arrivals per second starting
    /// at time zero.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        PoissonProcess {
            rate_per_sec,
            next_ns: 0,
        }
    }

    /// The configured rate (arrivals/second).
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws one exponential gap in nanoseconds (at least 1 ns so arrivals
    /// are strictly ordered).
    pub fn sample_gap_ns<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let secs = brb_sim::dist::standard_exp(rng) / self.rate_per_sec;
        ((secs * 1e9).round() as u64).max(1)
    }

    /// Advances the process and returns the absolute time (ns) of the next
    /// arrival.
    pub fn next_arrival_ns<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        self.next_ns += self.sample_gap_ns(rng);
        self.next_ns
    }

    /// Time of the most recently returned arrival (0 before the first).
    pub fn last_arrival_ns(&self) -> u64 {
        self.next_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaps_average_to_inverse_rate() {
        let p = PoissonProcess::new(10_000.0); // mean gap 100µs
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| p.sample_gap_ns(&mut rng)).sum();
        let mean_ns = total as f64 / n as f64;
        let rel = (mean_ns - 100_000.0).abs() / 100_000.0;
        assert!(rel < 0.02, "mean gap {mean_ns}ns");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = PoissonProcess::new(1e9); // pathological: 1 arrival/ns
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = 0;
        for _ in 0..10_000 {
            let t = p.next_arrival_ns(&mut rng);
            assert!(t > prev, "arrivals must be strictly ordered");
            prev = t;
        }
    }

    #[test]
    fn coefficient_of_variation_is_one() {
        // Exponential gaps have CV = 1; catches accidentally-deterministic
        // or wrongly-shaped gap samplers.
        let p = PoissonProcess::new(1_000.0);
        let mut rng = StdRng::seed_from_u64(4);
        let gaps: Vec<f64> = (0..50_000)
            .map(|_| p.sample_gap_ns(&mut rng) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / (gaps.len() - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "CV {cv}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        PoissonProcess::new(0.0);
    }
}
