//! Generalized Pareto value-size sampling.
//!
//! The paper generates value sizes "using a Pareto distribution based on a
//! study conducted on Facebook's Memcached deployment" [Atikoglu et al.,
//! SIGMETRICS'12]. That study fits value sizes of the ETC pool with a
//! Generalized Pareto distribution with location θ = 0, scale σ = 214.476
//! and shape k = 0.348238; we use exactly those constants
//! ([`GeneralizedPareto::facebook_etc`]).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Location (θ) of the Facebook ETC value-size fit.
pub const ETC_LOCATION: f64 = 0.0;
/// Scale (σ) of the Facebook ETC value-size fit.
pub const ETC_SCALE: f64 = 214.476;
/// Shape (k) of the Facebook ETC value-size fit.
pub const ETC_SHAPE: f64 = 0.348238;

/// A Generalized Pareto distribution GPD(θ, σ, k) sampled by inverse CDF.
///
/// For shape `k ≠ 0`:  `x = θ + σ·((1-u)^(-k) − 1)/k`;
/// for `k = 0` it degenerates to the (shifted) exponential
/// `x = θ − σ·ln(1-u)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GeneralizedPareto {
    /// Location parameter θ (minimum of the support).
    pub location: f64,
    /// Scale parameter σ (> 0).
    pub scale: f64,
    /// Shape parameter k (tail index; heavier tail for larger k).
    pub shape: f64,
}

impl GeneralizedPareto {
    /// Creates a GPD with the given parameters.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive.
    pub fn new(location: f64, scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "GPD scale must be positive");
        GeneralizedPareto {
            location,
            scale,
            shape,
        }
    }

    /// The Facebook Memcached ETC value-size fit the paper cites.
    pub fn facebook_etc() -> Self {
        GeneralizedPareto::new(ETC_LOCATION, ETC_SCALE, ETC_SHAPE)
    }

    /// Theoretical mean `θ + σ/(1−k)`, defined for `k < 1`.
    pub fn mean(&self) -> f64 {
        assert!(self.shape < 1.0, "mean undefined for shape >= 1");
        self.location + self.scale / (1.0 - self.shape)
    }

    /// Inverse CDF at `u ∈ [0, 1)`.
    pub fn quantile(&self, u: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&u));
        if self.shape.abs() < 1e-12 {
            self.location - self.scale * (1.0 - u).ln()
        } else {
            self.location + self.scale * ((1.0 - u).powf(-self.shape) - 1.0) / self.shape
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.random::<f64>())
    }

    /// Draws one sample as an integer byte count, clamped to
    /// `[1, cap_bytes]`. Real deployments cap value sizes (Memcached's
    /// default limit is 1 MiB); the cap also keeps forecast service times
    /// finite under the heavy tail.
    pub fn sample_bytes<R: Rng + ?Sized>(&self, rng: &mut R, cap_bytes: u64) -> u64 {
        let raw = self.sample(rng);
        (raw.round().max(1.0) as u64).min(cap_bytes)
    }

    /// Mean of the capped-byte distribution, estimated by numeric
    /// integration of the quantile function (10k trapezoids). Used for
    /// service-rate calibration so "3500 req/s" holds under the cap.
    pub fn mean_bytes_capped(&self, cap_bytes: u64) -> f64 {
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let v = self.quantile(u).round().max(1.0).min(cap_bytes as f64);
            sum += v;
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn etc_constants_match_published_fit() {
        let d = GeneralizedPareto::facebook_etc();
        assert_eq!(d.location, 0.0);
        assert_eq!(d.scale, 214.476);
        assert_eq!(d.shape, 0.348238);
        // Mean of the uncapped fit: σ/(1−k) ≈ 329 bytes.
        assert!((d.mean() - 329.07).abs() < 0.5, "{}", d.mean());
    }

    #[test]
    fn quantile_is_monotone_and_anchored() {
        let d = GeneralizedPareto::facebook_etc();
        assert!((d.quantile(0.0) - 0.0).abs() < 1e-9);
        let mut prev = -1.0;
        for i in 0..100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q > prev);
            prev = q;
        }
    }

    #[test]
    fn shape_zero_degenerates_to_exponential() {
        let d = GeneralizedPareto::new(0.0, 100.0, 0.0);
        // Exponential with scale 100: median = 100·ln2.
        assert!((d.quantile(0.5) - 100.0 * 2f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn sample_mean_converges() {
        let d = GeneralizedPareto::facebook_etc();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let rel = (mean - d.mean()).abs() / d.mean();
        assert!(rel < 0.05, "sample mean {mean} vs {}", d.mean());
    }

    #[test]
    fn sample_bytes_respects_cap_and_floor() {
        let d = GeneralizedPareto::facebook_etc();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let b = d.sample_bytes(&mut rng, 4096);
            assert!((1..=4096).contains(&b));
        }
    }

    #[test]
    fn capped_mean_below_uncapped_mean() {
        let d = GeneralizedPareto::facebook_etc();
        let capped = d.mean_bytes_capped(1 << 20);
        assert!(capped < d.mean());
        assert!(capped > 250.0, "capped mean {capped} suspiciously low");
        // A tight cap bites harder.
        assert!(d.mean_bytes_capped(512) < d.mean_bytes_capped(1 << 20));
    }

    #[test]
    fn heavy_tail_produces_large_values() {
        let d = GeneralizedPareto::facebook_etc();
        // p99.9 of the ETC fit is orders of magnitude above the mean.
        assert!(d.quantile(0.999) > 10.0 * d.mean());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn non_positive_scale_rejected() {
        GeneralizedPareto::new(0.0, 0.0, 0.3);
    }
}
