//! # brb-workload — workload generation substrate
//!
//! The paper drives its simulation with a production workload gathered at
//! SoundCloud: ~500,000 tasks with a mean fan-out of 8.6 requests/task,
//! value sizes drawn from the Pareto fit of Facebook's Memcached (ETC)
//! study [Atikoglu et al., SIGMETRICS'12], and Poisson task arrivals at
//! 70% of system capacity.
//!
//! The production trace is proprietary, so this crate builds the closest
//! synthetic equivalent (see `DESIGN.md` §2 for the substitution argument):
//!
//! * [`pareto::GeneralizedPareto`] — inverse-CDF sampler with the published
//!   ETC value-size parameters (θ=0, σ=214.476, k=0.348238).
//! * [`zipf::Zipf`] — exact table-based Zipf sampler for key popularity.
//! * [`poisson::PoissonProcess`] — exponential inter-arrival times.
//! * [`fanout::FanoutDist`] — fan-out distributions including a
//!   SoundCloud-calibrated empirical mixture with mean ≈ 8.6 and a heavy
//!   tail.
//! * [`keyspace::KeySpace`] — key universe with pluggable popularity.
//! * [`taskgen::TaskGenerator`] — streams [`TaskSpec`]s combining all of
//!   the above.
//! * [`soundcloud`] — a playlist-structured trace builder: tasks fetch all
//!   tracks of a playlist, giving correlated keys within a task.
//! * [`trace::Trace`] — serializable trace container with summary
//!   statistics, so experiments can be replayed byte-identically.

pub mod fanout;
pub mod keyspace;
pub mod pareto;
pub mod poisson;
pub mod soundcloud;
pub mod taskgen;
pub mod trace;
pub mod zipf;

pub use fanout::FanoutDist;
pub use keyspace::KeySpace;
pub use pareto::GeneralizedPareto;
pub use poisson::PoissonProcess;
pub use taskgen::{RequestSpec, TaskGenerator, TaskSpec};
pub use trace::{Trace, TraceStats};
pub use zipf::Zipf;

/// Computes the task arrival rate (tasks/second) that loads a system to a
/// fraction `load` of its aggregate request service capacity.
///
/// The paper: "task inter-arrival times [are generated] using a Poisson
/// process where the mean rate is set to match 70% of system capacity".
/// With capacity `C` requests/s and mean fan-out `f̄`, the task rate is
/// `load × C / f̄`.
///
/// # Panics
/// Panics if `mean_fanout` is not positive.
pub fn task_rate_for_load(load: f64, capacity_rps: f64, mean_fanout: f64) -> f64 {
    assert!(mean_fanout > 0.0, "mean fan-out must be positive");
    load * capacity_rps / mean_fanout
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_task_rate() {
        // 9 servers × 4 cores × 3500 req/s = 126,000 req/s capacity.
        // At 70% load with fan-out 8.6 → ~10,256 tasks/s.
        let rate = task_rate_for_load(0.7, 126_000.0, 8.6);
        assert!((rate - 10_255.81).abs() < 0.01, "{rate}");
    }

    #[test]
    #[should_panic(expected = "mean fan-out must be positive")]
    fn zero_fanout_rejected() {
        task_rate_for_load(0.7, 1000.0, 0.0);
    }
}
