//! Task fan-out distributions.
//!
//! A task's *fan-out* is the number of data-store requests it contains
//! ("tens to thousands of data accesses" in the paper's motivation; the
//! SoundCloud trace averages 8.6). The fan-out distribution's tail matters:
//! the more requests a task has, the more likely one of them straggles.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over task fan-outs (requests per task), always ≥ 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FanoutDist {
    /// Every task has exactly `k` requests.
    Fixed(u32),
    /// Uniform over `[min, max]` inclusive.
    Uniform {
        /// Smallest fan-out (≥ 1).
        min: u32,
        /// Largest fan-out (≥ min).
        max: u32,
    },
    /// Shifted geometric: `1 + Geometric(p)`, mean `1 + (1-p)/p`.
    Geometric {
        /// Success probability `p ∈ (0, 1]`.
        p: f64,
    },
    /// A weighted mixture of inclusive integer ranges; within a chosen
    /// range the fan-out is uniform. Weights need not be normalized.
    Empirical {
        /// `(lo, hi, weight)` triples.
        ranges: Vec<(u32, u32, f64)>,
    },
}

impl FanoutDist {
    /// The SoundCloud-calibrated mixture used as the paper-trace
    /// substitute: mean ≈ 8.6 with a heavy tail reaching 128 requests
    /// (playlist fetches; see DESIGN.md §2).
    pub fn soundcloud_like() -> Self {
        FanoutDist::Empirical {
            ranges: vec![
                (1, 1, 34.0),   // single-track lookups
                (2, 4, 23.0),   // short batches
                (5, 10, 22.0),  // typical playlists
                (11, 20, 13.0), // long playlists
                (21, 50, 6.0),  // power-user playlists
                (51, 128, 2.0), // heavy tail
            ],
        }
    }

    /// Theoretical mean fan-out.
    pub fn mean(&self) -> f64 {
        match self {
            FanoutDist::Fixed(k) => *k as f64,
            FanoutDist::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
            FanoutDist::Geometric { p } => 1.0 + (1.0 - p) / p,
            FanoutDist::Empirical { ranges } => {
                let total: f64 = ranges.iter().map(|&(_, _, w)| w).sum();
                ranges
                    .iter()
                    .map(|&(lo, hi, w)| w / total * (lo as f64 + hi as f64) / 2.0)
                    .sum()
            }
        }
    }

    /// Largest fan-out this distribution can produce.
    pub fn max(&self) -> u32 {
        match self {
            FanoutDist::Fixed(k) => *k,
            FanoutDist::Uniform { max, .. } => *max,
            FanoutDist::Geometric { .. } => u32::MAX,
            FanoutDist::Empirical { ranges } => {
                ranges.iter().map(|&(_, hi, _)| hi).max().unwrap_or(1)
            }
        }
    }

    /// Validates structural invariants; called by samplers in debug builds
    /// and by config loading.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            FanoutDist::Fixed(k) if *k == 0 => Err("fixed fan-out must be >= 1".into()),
            FanoutDist::Uniform { min, max } if *min == 0 || min > max => {
                Err(format!("invalid uniform fan-out range [{min}, {max}]"))
            }
            FanoutDist::Geometric { p } if !(*p > 0.0 && *p <= 1.0) => {
                Err(format!("geometric p out of range: {p}"))
            }
            FanoutDist::Empirical { ranges } => {
                if ranges.is_empty() {
                    return Err("empirical fan-out needs at least one range".into());
                }
                for &(lo, hi, w) in ranges {
                    if lo == 0 || lo > hi {
                        return Err(format!("invalid range [{lo}, {hi}]"));
                    }
                    if w.is_nan() || w <= 0.0 {
                        return Err(format!("non-positive weight {w}"));
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Draws a fan-out (≥ 1).
    ///
    /// Empirical mixtures scan the weight list per draw; generators on
    /// hot paths should build a [`FanoutSampler`] once and draw through
    /// its O(1) alias table instead.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        debug_assert!(self.validate().is_ok());
        match self {
            FanoutDist::Fixed(k) => *k,
            FanoutDist::Uniform { min, max } => rng.random_range(*min..=*max),
            FanoutDist::Geometric { p } => {
                // Inverse CDF of the geometric on {0,1,...}, then shift
                // by 1. `1 − u ∈ (0, 1]` keeps the numerator finite; the
                // clamp bounds the (measure-zero) u → 1 edge.
                let u: f64 = rng.random();
                let g = (1.0 - u).max(f64::MIN_POSITIVE).ln() / (1.0 - p).ln();
                1 + g.floor().max(0.0).min(u32::MAX as f64 - 2.0) as u32
            }
            FanoutDist::Empirical { ranges } => {
                let total: f64 = ranges.iter().map(|&(_, _, w)| w).sum();
                let mut pick = rng.random::<f64>() * total;
                for &(lo, hi, w) in ranges {
                    if pick < w {
                        return rng.random_range(lo..=hi);
                    }
                    pick -= w;
                }
                let &(lo, hi, _) = ranges.last().expect("validated non-empty");
                rng.random_range(lo..=hi)
            }
        }
    }
}

/// A compiled fan-out sampler: the weighted-range scan of
/// [`FanoutDist::Empirical`] is replaced by an O(1) Vose alias draw over
/// the range classes ([`brb_sim::AliasTable`]); the other variants
/// delegate to [`FanoutDist::sample`] unchanged. Build once per
/// generator, draw millions of times.
#[derive(Debug, Clone)]
pub struct FanoutSampler {
    dist: FanoutDist,
    /// Alias table over the mixture's range classes (`Empirical` only).
    classes: Option<brb_sim::AliasTable>,
}

impl FanoutSampler {
    /// Compiles `dist` (validating it).
    ///
    /// # Panics
    /// Panics if the distribution fails [`FanoutDist::validate`].
    pub fn new(dist: FanoutDist) -> Self {
        dist.validate().expect("invalid fan-out distribution");
        let classes = match &dist {
            FanoutDist::Empirical { ranges } => {
                let weights: Vec<f64> = ranges.iter().map(|&(_, _, w)| w).collect();
                Some(brb_sim::AliasTable::new(&weights))
            }
            _ => None,
        };
        FanoutSampler { dist, classes }
    }

    /// The distribution this sampler was compiled from.
    pub fn dist(&self) -> &FanoutDist {
        &self.dist
    }

    /// Draws a fan-out (≥ 1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match (&self.dist, &self.classes) {
            (FanoutDist::Empirical { ranges }, Some(classes)) => {
                let (lo, hi, _) = ranges[classes.sample(rng)];
                rng.random_range(lo..=hi)
            }
            (dist, _) => dist.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(d: &FanoutDist, n: u64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn soundcloud_mixture_matches_paper_mean() {
        let d = FanoutDist::soundcloud_like();
        // The paper's trace averages 8.6 requests/task.
        assert!(
            (d.mean() - 8.6).abs() < 0.2,
            "calibrated mean {} drifted from 8.6",
            d.mean()
        );
        let emp = empirical_mean(&d, 200_000, 9);
        assert!((emp - d.mean()).abs() / d.mean() < 0.03, "{emp}");
    }

    #[test]
    fn soundcloud_mixture_has_heavy_tail() {
        let d = FanoutDist::soundcloud_like();
        let mut rng = StdRng::seed_from_u64(10);
        let big = (0..100_000).filter(|_| d.sample(&mut rng) > 50).count();
        // ~2% of tasks land in the 51-128 range.
        assert!((1_000..4_000).contains(&big), "tail mass {big}");
        assert_eq!(d.max(), 128);
    }

    #[test]
    fn fixed_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(FanoutDist::Fixed(5).sample(&mut rng), 5);
        assert_eq!(FanoutDist::Fixed(5).mean(), 5.0);
        let u = FanoutDist::Uniform { min: 2, max: 4 };
        for _ in 0..1000 {
            assert!((2..=4).contains(&u.sample(&mut rng)));
        }
        assert_eq!(u.mean(), 3.0);
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let d = FanoutDist::Geometric { p: 0.2 }; // mean 1 + 4 = 5
        assert!((d.mean() - 5.0).abs() < 1e-12);
        let emp = empirical_mean(&d, 200_000, 12);
        assert!((emp - 5.0).abs() < 0.1, "{emp}");
    }

    #[test]
    fn samples_never_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in [
            FanoutDist::Fixed(1),
            FanoutDist::Geometric { p: 0.9 },
            FanoutDist::soundcloud_like(),
        ] {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) >= 1);
            }
        }
    }

    /// The compiled sampler must reproduce the mixture: same mean, same
    /// class masses, same support as the scanning reference.
    #[test]
    fn fanout_sampler_matches_scan_reference() {
        let d = FanoutDist::soundcloud_like();
        let s = FanoutSampler::new(d.clone());
        assert_eq!(s.dist(), &d);
        let n = 200_000u64;
        let mut rng = StdRng::seed_from_u64(20);
        let mut mean = 0.0;
        let mut tail = 0u64;
        for _ in 0..n {
            let f = s.sample(&mut rng);
            assert!((1..=128).contains(&f));
            mean += f as f64;
            if f > 50 {
                tail += 1;
            }
        }
        mean /= n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.03, "mean {mean}");
        // Same ~2% heavy-tail mass as the scanning sampler's test.
        assert!(
            (1_000..4_000).contains(&(tail * 100_000 / n)),
            "tail {tail}"
        );
        // Non-empirical variants delegate unchanged.
        let fixed = FanoutSampler::new(FanoutDist::Fixed(5));
        assert_eq!(fixed.sample(&mut rng), 5);
    }

    #[test]
    #[should_panic(expected = "invalid uniform fan-out range")]
    fn fanout_sampler_rejects_invalid_dist() {
        FanoutSampler::new(FanoutDist::Uniform { min: 9, max: 2 });
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(FanoutDist::Fixed(0).validate().is_err());
        assert!(FanoutDist::Uniform { min: 5, max: 2 }.validate().is_err());
        assert!(FanoutDist::Geometric { p: 0.0 }.validate().is_err());
        assert!(FanoutDist::Empirical { ranges: vec![] }.validate().is_err());
        assert!(FanoutDist::Empirical {
            ranges: vec![(1, 2, -1.0)]
        }
        .validate()
        .is_err());
        assert!(FanoutDist::soundcloud_like().validate().is_ok());
    }
}
