//! Task generation: arrivals × fan-out × keys × value sizes.
//!
//! A [`TaskSpec`] is the unit of work the paper calls a *task*: a batch of
//! logically-related reads issued by one application server. The generator
//! combines a Poisson arrival process, a fan-out distribution, a key
//! popularity model and a value-size model into a deterministic stream.
//!
//! Value sizes are a **property of the key** (the same track always has the
//! same byte size), derived by hashing the key into a quantile of the
//! Generalized Pareto fit. This keeps client-side cost forecasts coherent:
//! two requests for the same key always forecast the same cost.

use crate::fanout::{FanoutDist, FanoutSampler};
use crate::keyspace::KeySpace;
use crate::pareto::GeneralizedPareto;
use crate::poisson::PoissonProcess;
use rand::Rng;
use serde::{Deserialize, Serialize};
// brb-lint: allow(D002) — membership-only dedup set below; never iterated
use std::collections::HashSet;

/// One read request within a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// The key to read.
    pub key: u64,
    /// Size of the value stored under `key`, in bytes.
    pub value_bytes: u64,
}

/// One task: a batch of reads arriving together at an application server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Dense task id (also its position in the trace).
    pub id: u64,
    /// Arrival time in nanoseconds since trace start.
    pub arrival_ns: u64,
    /// The task's requests; `len()` is the fan-out (≥ 1).
    pub requests: Vec<RequestSpec>,
}

impl TaskSpec {
    /// The task's fan-out.
    pub fn fanout(&self) -> usize {
        self.requests.len()
    }

    /// Total bytes the task reads.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.value_bytes).sum()
    }
}

/// Deterministic mapping from keys to value sizes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SizeModel {
    /// The value-size distribution.
    pub dist: GeneralizedPareto,
    /// Upper bound on value sizes in bytes (Memcached-style cap).
    pub cap_bytes: u64,
    /// Salt decorrelating the key→size map from other key-derived values.
    pub salt: u64,
}

impl SizeModel {
    /// The model the paper uses: Facebook ETC Pareto fit, 1 MiB cap.
    pub fn facebook_etc() -> Self {
        SizeModel {
            dist: GeneralizedPareto::facebook_etc(),
            cap_bytes: 1 << 20,
            salt: 0x5CA1_AB1E,
        }
    }

    /// The (deterministic) size of the value stored under `key`.
    pub fn size_of(&self, key: u64) -> u64 {
        // Hash the key into a uniform in [0,1), then invert the CDF.
        let h = splitmix64(key ^ self.salt);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let raw = self.dist.quantile(u);
        (raw.round().max(1.0) as u64).min(self.cap_bytes)
    }

    /// Mean size over the whole (hashed) key population — by construction
    /// this converges to the capped distribution mean.
    pub fn mean_bytes(&self) -> f64 {
        self.dist.mean_bytes_capped(self.cap_bytes)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streams [`TaskSpec`]s from composed distributions.
#[derive(Debug)]
pub struct TaskGenerator<R: Rng> {
    arrivals: PoissonProcess,
    fanout: FanoutSampler,
    keyspace: KeySpace,
    sizes: SizeModel,
    rng: R,
    next_id: u64,
}

impl<R: Rng> TaskGenerator<R> {
    /// Creates a generator. `rng` should be a dedicated labelled stream
    /// (see `brb_sim::RngFactory`) so workload randomness is independent of
    /// everything else in an experiment.
    pub fn new(
        arrivals: PoissonProcess,
        fanout: FanoutDist,
        keyspace: KeySpace,
        sizes: SizeModel,
        rng: R,
    ) -> Self {
        TaskGenerator {
            arrivals,
            // Compiles (and validates) the distribution: empirical
            // mixtures draw through an O(1) alias table.
            fanout: FanoutSampler::new(fanout),
            keyspace,
            sizes,
            rng,
            next_id: 0,
        }
    }

    /// The size model (exposed so engines can forecast costs consistently).
    pub fn size_model(&self) -> &SizeModel {
        &self.sizes
    }

    /// Generates the next task. Keys within a task are distinct whenever
    /// the key space allows it (a playlist lists each track once).
    pub fn next_task(&mut self) -> TaskSpec {
        let arrival_ns = self.arrivals.next_arrival_ns(&mut self.rng);
        let want = self.fanout.sample(&mut self.rng) as usize;
        let fanout = want.min(self.keyspace.num_keys() as usize);
        // Insert/contains only: rejection-samples distinct keys;
        // iteration order is never observed.
        // brb-lint: allow(D002) — membership-only dedup, never iterated
        let mut seen = HashSet::with_capacity(fanout);
        let mut requests = Vec::with_capacity(fanout);
        let mut attempts = 0usize;
        while requests.len() < fanout {
            let key = self.keyspace.sample_key(&mut self.rng);
            attempts += 1;
            // Hot Zipf keys repeat often; bound the resampling work and
            // accept a duplicate only if the space is effectively exhausted.
            if seen.insert(key) || attempts > fanout * 64 {
                requests.push(RequestSpec {
                    key,
                    value_bytes: self.sizes.size_of(key),
                });
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        TaskSpec {
            id,
            arrival_ns,
            requests,
        }
    }

    /// Generates `n` tasks into a vector.
    pub fn take(&mut self, n: usize) -> Vec<TaskSpec> {
        (0..n).map(|_| self.next_task()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspace::Popularity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(seed: u64) -> TaskGenerator<StdRng> {
        TaskGenerator::new(
            PoissonProcess::new(10_000.0),
            FanoutDist::soundcloud_like(),
            KeySpace::new(100_000, Popularity::Zipf(0.9)),
            SizeModel::facebook_etc(),
            StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn tasks_have_increasing_ids_and_arrivals() {
        let mut g = gen(1);
        let tasks = g.take(1000);
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, i as u64);
            if i > 0 {
                assert!(t.arrival_ns > tasks[i - 1].arrival_ns);
            }
            assert!(t.fanout() >= 1);
        }
    }

    #[test]
    fn keys_within_a_task_are_distinct() {
        let mut g = gen(2);
        for _ in 0..500 {
            let t = g.next_task();
            let distinct: HashSet<u64> = t.requests.iter().map(|r| r.key).collect();
            assert_eq!(distinct.len(), t.requests.len());
        }
    }

    #[test]
    fn sizes_are_key_deterministic() {
        let m = SizeModel::facebook_etc();
        assert_eq!(m.size_of(42), m.size_of(42));
        let mut g1 = gen(3);
        let mut g2 = gen(4); // different stream, same size model
        let t1 = g1.take(200);
        let t2 = g2.take(200);
        let mut sizes = std::collections::HashMap::new();
        for t in t1.iter().chain(t2.iter()) {
            for r in &t.requests {
                let prev = sizes.insert(r.key, r.value_bytes);
                if let Some(p) = prev {
                    assert_eq!(p, r.value_bytes, "key {} changed size", r.key);
                }
            }
        }
    }

    #[test]
    fn size_population_mean_matches_distribution() {
        let m = SizeModel::facebook_etc();
        let n = 100_000u64;
        let mean = (0..n).map(|k| m.size_of(k) as f64).sum::<f64>() / n as f64;
        let rel = (mean - m.mean_bytes()).abs() / m.mean_bytes();
        assert!(
            rel < 0.05,
            "population mean {mean} vs model {}",
            m.mean_bytes()
        );
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = gen(7).take(100);
        let b = gen(7).take(100);
        assert_eq!(a, b);
        let c = gen(8).take(100);
        assert_ne!(a, c);
    }

    #[test]
    fn fanout_capped_by_keyspace() {
        let mut g = TaskGenerator::new(
            PoissonProcess::new(100.0),
            FanoutDist::Fixed(50),
            KeySpace::new(10, Popularity::Uniform),
            SizeModel::facebook_etc(),
            StdRng::seed_from_u64(9),
        );
        let t = g.next_task();
        assert_eq!(t.fanout(), 10);
    }

    #[test]
    fn total_bytes_sums_requests() {
        let t = TaskSpec {
            id: 0,
            arrival_ns: 0,
            requests: vec![
                RequestSpec {
                    key: 1,
                    value_bytes: 10,
                },
                RequestSpec {
                    key: 2,
                    value_bytes: 32,
                },
            ],
        };
        assert_eq!(t.total_bytes(), 42);
        assert_eq!(t.fanout(), 2);
    }
}
