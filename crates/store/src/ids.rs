//! Shared strongly-typed identifiers.
//!
//! Defined once here so every crate (scheduling, selection, engine,
//! runtime) agrees on the types.

use brb_sim::define_id;

define_id!(
    /// An application server ("client" in the paper's terminology): the
    /// tier that receives user requests and fans out data-store reads.
    ClientId
);

define_id!(
    /// A storage server in the backend tier.
    ServerId
);

define_id!(
    /// A data partition (hash slice of the key space).
    PartitionId
);

define_id!(
    /// A replica group: the distinct set of servers holding copies of a
    /// partition. Sub-tasks are formed per replica group.
    GroupId
);

define_id!(
    /// A task: one end-user request fanning out to many reads.
    TaskId
);

define_id!(
    /// A single read request (sub-operation of a task).
    RequestId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: mixing them up would not compile. Here we
        // just sanity-check runtime behaviour.
        let c = ClientId::new(1);
        let s = ServerId::new(1);
        assert_eq!(c.raw(), s.raw());
        assert_eq!(format!("{c}"), "ClientId(1)");
        assert_eq!(format!("{s}"), "ServerId(1)");
    }
}
