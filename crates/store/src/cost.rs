//! Client-side cost forecasting.
//!
//! BRB's priority assignment consumes a *forecast* of each request's
//! service time, derived from the size of the value it requests ("requests
//! that have longer forecasted service times (based on the size of the
//! value they are requesting) should be given a higher priority"). The
//! forecast is what the *client* can know — it excludes server-side noise.
//!
//! [`CostModel`] wraps a [`ServiceModel`] and optionally degrades the
//! forecast (stale or quantized size information) so ablations can measure
//! how sensitive the BRB policies are to forecast quality.

use crate::service::ServiceModel;
use serde::{Deserialize, Serialize};

/// How accurately clients can forecast service times from value sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecastQuality {
    /// Clients know the exact expected service time for the size.
    Exact,
    /// Clients only know the size rounded up to the next power of two
    /// (e.g. a size-class hint from the storage tier).
    SizeClass,
    /// Clients see no size signal at all; every request forecasts the
    /// population mean (degrades BRB to size-blind task-awareness).
    Blind {
        /// The population mean value size used for the flat forecast.
        mean_value_bytes: f64,
    },
}

/// Forecasts request costs for priority assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    service: ServiceModel,
    quality: ForecastQuality,
}

impl CostModel {
    /// A cost model forecasting with the given quality against the
    /// cluster's service model.
    pub fn new(service: ServiceModel, quality: ForecastQuality) -> Self {
        CostModel { service, quality }
    }

    /// Exact forecasts (the paper's implicit assumption).
    pub fn exact(service: ServiceModel) -> Self {
        CostModel::new(service, ForecastQuality::Exact)
    }

    /// The forecast quality in use.
    pub fn quality(&self) -> ForecastQuality {
        self.quality
    }

    /// Forecast cost, in nanoseconds, of reading a value of `bytes`.
    /// Deterministic: equal inputs forecast equal costs.
    pub fn forecast_ns(&self, bytes: u64) -> u64 {
        let ns = match self.quality {
            ForecastQuality::Exact => self.service.expected_ns(bytes),
            ForecastQuality::SizeClass => {
                let class = bytes.max(1).next_power_of_two();
                self.service.expected_ns(class)
            }
            ForecastQuality::Blind { mean_value_bytes } => {
                self.service.expected_ns(mean_value_bytes.round() as u64)
            }
        };
        ns.round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceNoise;

    fn service() -> ServiceModel {
        ServiceModel::calibrated_size_linear(285_714.0, 300.0, 0.5, ServiceNoise::None)
    }

    #[test]
    fn exact_matches_service_expectation() {
        let c = CostModel::exact(service());
        for bytes in [1u64, 300, 5_000, 1 << 20] {
            assert_eq!(
                c.forecast_ns(bytes),
                service().expected_ns(bytes).round() as u64
            );
        }
    }

    #[test]
    fn size_class_rounds_up() {
        let c = CostModel::new(service(), ForecastQuality::SizeClass);
        // 300 → class 512.
        assert_eq!(
            c.forecast_ns(300),
            service().expected_ns(512).round() as u64
        );
        // Exact powers of two map to themselves.
        assert_eq!(
            c.forecast_ns(512),
            service().expected_ns(512).round() as u64
        );
        // Class forecasts never underestimate the exact forecast.
        for bytes in 1..2_000u64 {
            assert!(c.forecast_ns(bytes) >= CostModel::exact(service()).forecast_ns(bytes));
        }
    }

    #[test]
    fn blind_is_flat() {
        let c = CostModel::new(
            service(),
            ForecastQuality::Blind {
                mean_value_bytes: 300.0,
            },
        );
        assert_eq!(c.forecast_ns(1), c.forecast_ns(1 << 20));
        assert_eq!(c.forecast_ns(1), service().expected_ns(300).round() as u64);
    }

    #[test]
    fn forecasts_are_deterministic_and_positive() {
        let c = CostModel::exact(service());
        assert_eq!(c.forecast_ns(777), c.forecast_ns(777));
        assert!(c.forecast_ns(0) >= 1);
    }
}
