//! # brb-store — data-store substrate
//!
//! Models the replicated, partitioned data store BRB schedules against
//! (the paper targets Cassandra/Riak-style stores):
//!
//! * [`ids`] — strongly-typed identifiers shared across the workspace
//!   (clients, servers, partitions, replica groups, tasks, requests).
//! * [`partition::Ring`] — Cassandra-style ring placement: keys hash to
//!   partitions; partition *p* replicates on `R` consecutive servers. A
//!   *replica group* is the distinct server set of a partition; tasks are
//!   split into one sub-task per replica group.
//! * [`service::ServiceModel`] — per-request service times. The paper's
//!   servers average 3 500 requests/s per core with service cost driven by
//!   value size; [`service::ServiceModel::calibrated_size_linear`]
//!   constructs the size-proportional model whose mean over the workload's
//!   value-size distribution equals the target rate.
//! * [`cost::CostModel`] — the *client-side forecast* of a request's
//!   service time given the value size it requests (BRB's priority
//!   assignment input).
//! * [`kv::ShardedStore`] — a real, thread-safe, sharded in-memory KV
//!   store backing the `brb-rt` runtime.

pub mod cost;
pub mod ids;
pub mod kv;
pub mod partition;
pub mod service;

pub use cost::CostModel;
pub use ids::{ClientId, GroupId, PartitionId, RequestId, ServerId, TaskId};
pub use kv::ShardedStore;
pub use partition::Ring;
pub use service::{ServiceModel, ServiceNoise};
