//! Ring placement: keys → partitions → replica groups → servers.
//!
//! The paper's system model: "every server belongs to R replica groups and
//! can service requests for any of the replica groups it is part of. A
//! replica group is a collection of servers each of which contains a
//! replica of a data partition."
//!
//! We reproduce the Cassandra-style layout the paper's baseline (C3)
//! targets: servers sit on a ring; partition `p` is stored on the `R`
//! consecutive servers starting at `p mod N`. With `partitions = N` every
//! server belongs to exactly `R` replica groups, matching the model.

use crate::ids::{GroupId, PartitionId, ServerId};
use serde::{Deserialize, Serialize};

/// Ring configuration mapping keys to partitions and partitions to
/// replica servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    num_servers: u32,
    num_partitions: u32,
    replication: u32,
}

impl Ring {
    /// Creates a ring of `num_servers` servers, `num_partitions`
    /// partitions and replication factor `replication`.
    ///
    /// # Panics
    /// Panics if any parameter is zero, or `replication > num_servers`
    /// (a partition cannot have more replicas than servers).
    pub fn new(num_servers: u32, num_partitions: u32, replication: u32) -> Self {
        assert!(num_servers > 0, "need at least one server");
        assert!(num_partitions > 0, "need at least one partition");
        assert!(replication > 0, "replication factor must be >= 1");
        assert!(
            replication <= num_servers,
            "replication {replication} exceeds server count {num_servers}"
        );
        Ring {
            num_servers,
            num_partitions,
            replication,
        }
    }

    /// The paper's evaluation ring: 9 servers, 9 partitions, R = 3.
    pub fn paper_default() -> Self {
        Ring::new(9, 9, 3)
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// Replication factor R.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Number of *distinct* replica groups. With consecutive placement a
    /// group is determined by its starting server, so there are
    /// `min(num_servers, num_partitions)` distinct groups.
    pub fn num_groups(&self) -> u32 {
        self.num_servers.min(self.num_partitions)
    }

    /// Hashes a key to its partition.
    pub fn partition_of_key(&self, key: u64) -> PartitionId {
        PartitionId::new(splitmix64(key) % self.num_partitions as u64)
    }

    /// The replica group of a partition (groups are keyed by the
    /// partition's starting position on the ring).
    pub fn group_of_partition(&self, p: PartitionId) -> GroupId {
        GroupId::new(p.raw() % self.num_servers as u64)
    }

    /// Convenience: the replica group serving a key.
    pub fn group_of_key(&self, key: u64) -> GroupId {
        self.group_of_partition(self.partition_of_key(key))
    }

    /// The servers of replica group `g`, in ring order starting at the
    /// primary.
    pub fn replicas_of_group(&self, g: GroupId) -> Vec<ServerId> {
        assert!(g.raw() < self.num_servers as u64, "group out of range");
        (0..self.replication as u64)
            .map(|i| ServerId::new((g.raw() + i) % self.num_servers as u64))
            .collect()
    }

    /// The servers holding a replica of partition `p`.
    pub fn replicas_of_partition(&self, p: PartitionId) -> Vec<ServerId> {
        self.replicas_of_group(self.group_of_partition(p))
    }

    /// The servers holding a replica of `key`.
    pub fn replicas_of_key(&self, key: u64) -> Vec<ServerId> {
        self.replicas_of_group(self.group_of_key(key))
    }

    /// Whether `server` can serve keys of replica group `g`.
    pub fn server_in_group(&self, server: ServerId, g: GroupId) -> bool {
        let n = self.num_servers as u64;
        let dist = (server.raw() + n - g.raw() % n) % n;
        dist < self.replication as u64
    }

    /// The replica groups `server` belongs to (exactly R groups when
    /// `num_partitions >= num_servers`).
    pub fn groups_of_server(&self, server: ServerId) -> Vec<GroupId> {
        assert!(
            server.raw() < self.num_servers as u64,
            "server out of range"
        );
        let n = self.num_servers as u64;
        (0..self.replication as u64)
            .map(|i| GroupId::new((server.raw() + n - i) % n))
            .filter(|g| g.raw() < self.num_groups() as u64)
            .collect()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn paper_ring_shape() {
        let r = Ring::paper_default();
        assert_eq!(r.num_servers(), 9);
        assert_eq!(r.num_partitions(), 9);
        assert_eq!(r.replication(), 3);
        assert_eq!(r.num_groups(), 9);
    }

    #[test]
    fn replicas_are_consecutive_and_distinct() {
        let r = Ring::paper_default();
        for g in 0..9u64 {
            let reps = r.replicas_of_group(GroupId::new(g));
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ServerId::new(g));
            assert_eq!(reps[1], ServerId::new((g + 1) % 9));
            assert_eq!(reps[2], ServerId::new((g + 2) % 9));
            let distinct: std::collections::HashSet<_> = reps.iter().collect();
            assert_eq!(distinct.len(), 3);
        }
    }

    #[test]
    fn every_server_in_r_groups() {
        let r = Ring::paper_default();
        for s in 0..9u64 {
            let groups = r.groups_of_server(ServerId::new(s));
            assert_eq!(groups.len(), 3, "server {s}");
            for g in groups {
                assert!(r.server_in_group(ServerId::new(s), g));
                assert!(r.replicas_of_group(g).contains(&ServerId::new(s)));
            }
        }
    }

    #[test]
    fn membership_agrees_with_replica_lists() {
        let r = Ring::new(7, 7, 2);
        for g in 0..7u64 {
            let g = GroupId::new(g);
            let reps = r.replicas_of_group(g);
            for s in 0..7u64 {
                let s = ServerId::new(s);
                assert_eq!(r.server_in_group(s, g), reps.contains(&s));
            }
        }
    }

    #[test]
    fn keys_spread_over_partitions() {
        let r = Ring::paper_default();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 90_000;
        for key in 0..n {
            *counts.entry(r.partition_of_key(key).raw()).or_default() += 1;
        }
        assert_eq!(counts.len(), 9);
        for (&p, &c) in &counts {
            let expected = n as f64 / 9.0;
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "partition {p} has {c} keys ({dev:+.2})");
        }
    }

    #[test]
    fn key_to_replicas_consistency() {
        let r = Ring::paper_default();
        for key in 0..1000u64 {
            let g = r.group_of_key(key);
            assert_eq!(r.replicas_of_key(key), r.replicas_of_group(g));
            for s in r.replicas_of_key(key) {
                assert!(r.server_in_group(s, g));
            }
        }
    }

    #[test]
    fn replication_one_means_single_replica() {
        let r = Ring::new(5, 5, 1);
        for g in 0..5u64 {
            assert_eq!(r.replicas_of_group(GroupId::new(g)).len(), 1);
        }
    }

    #[test]
    fn more_partitions_than_servers() {
        let r = Ring::new(4, 16, 3);
        assert_eq!(r.num_groups(), 4);
        // Partitions 0, 4, 8, 12 share replica group 0.
        for p in [0u64, 4, 8, 12] {
            assert_eq!(r.group_of_partition(PartitionId::new(p)), GroupId::new(0));
        }
    }

    #[test]
    #[should_panic(expected = "replication 4 exceeds server count 3")]
    fn over_replication_rejected() {
        Ring::new(3, 3, 4);
    }
}
