//! Per-request service-time models.
//!
//! The paper's servers operate "at an average service rate of 3500
//! requests/s" per core, with request cost driven by the size of the value
//! read (BRB forecasts service times "based on the size of the value they
//! are requesting"). We model service time as
//!
//! ```text
//! t(bytes) = base + bytes · per_byte        (optionally × noise)
//! ```
//!
//! calibrated so that `E[t]` over the workload's value-size distribution
//! equals the target mean (1/3500 s). The multiplicative log-normal noise
//! term models everything the size forecast cannot see (cache state, GC,
//! compaction, CPU contention) and is mean-corrected so calibration holds.

use brb_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative service-time noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceNoise {
    /// No noise: service time is exactly the size-based forecast.
    None,
    /// Mean-corrected log-normal: multiply by `exp(σZ − σ²/2)`, which has
    /// expectation 1, so the calibrated mean rate is preserved.
    LogNormal {
        /// Log-scale standard deviation (0.2–0.5 is realistic for storage
        /// nodes).
        sigma: f64,
    },
}

impl ServiceNoise {
    fn sample_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            ServiceNoise::None => 1.0,
            ServiceNoise::LogNormal { sigma } => {
                // Ziggurat standard normal: exact distribution, no
                // transcendentals on the common path (`brb_sim::dist`).
                let z = brb_sim::dist::standard_normal(rng);
                (sigma * z - sigma * sigma / 2.0).exp()
            }
        }
    }
}

/// A service-time model for read requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Deterministic size-linear cost with optional multiplicative noise.
    SizeLinear {
        /// Fixed per-request overhead in nanoseconds (parsing, lookup,
        /// response framing).
        base_ns: f64,
        /// Additional cost per value byte, in nanoseconds.
        ns_per_byte: f64,
        /// Multiplicative noise applied to the actual (not forecast) time.
        noise: ServiceNoise,
    },
    /// Exponential service times with the given mean — the classic M/M/c
    /// abstraction, size-independent (useful as an ablation: without a
    /// size signal, UnifIncr degenerates).
    Exponential {
        /// Mean service time in nanoseconds.
        mean_ns: f64,
    },
    /// Constant service time (deterministic M/D/c ablation).
    Deterministic {
        /// The fixed service time in nanoseconds.
        ns: f64,
    },
}

impl ServiceModel {
    /// Builds a size-linear model whose *mean* service time over a
    /// workload with mean value size `mean_value_bytes` equals
    /// `mean_service_ns`. `base_fraction ∈ [0,1)` sets how much of the
    /// mean is fixed overhead vs. size-proportional cost.
    ///
    /// # Panics
    /// Panics on non-positive means or a fraction outside `[0, 1]`.
    pub fn calibrated_size_linear(
        mean_service_ns: f64,
        mean_value_bytes: f64,
        base_fraction: f64,
        noise: ServiceNoise,
    ) -> Self {
        assert!(mean_service_ns > 0.0, "mean service time must be positive");
        assert!(mean_value_bytes > 0.0, "mean value size must be positive");
        assert!(
            (0.0..=1.0).contains(&base_fraction),
            "base fraction must be in [0, 1]"
        );
        ServiceModel::SizeLinear {
            base_ns: mean_service_ns * base_fraction,
            ns_per_byte: mean_service_ns * (1.0 - base_fraction) / mean_value_bytes,
            noise,
        }
    }

    /// The paper's configuration: 3 500 req/s per core mean rate
    /// (285 714 ns mean service time), calibrated against `mean_value_bytes`,
    /// half fixed overhead, moderate log-normal noise.
    pub fn paper_default(mean_value_bytes: f64) -> Self {
        ServiceModel::calibrated_size_linear(
            1e9 / 3500.0,
            mean_value_bytes,
            0.5,
            ServiceNoise::LogNormal { sigma: 0.3 },
        )
    }

    /// The *forecast* service time for a value of `bytes` — what a client
    /// can predict from the value size alone (noise-free). This is the
    /// cost BRB's priority algorithms consume.
    pub fn expected_ns(&self, bytes: u64) -> f64 {
        match self {
            ServiceModel::SizeLinear {
                base_ns,
                ns_per_byte,
                ..
            } => base_ns + ns_per_byte * bytes as f64,
            ServiceModel::Exponential { mean_ns } => *mean_ns,
            ServiceModel::Deterministic { ns } => *ns,
        }
    }

    /// Draws the *actual* service time for a value of `bytes`.
    pub fn sample<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> SimDuration {
        let ns = match self {
            ServiceModel::SizeLinear { noise, .. } => {
                self.expected_ns(bytes) * noise.sample_factor(rng)
            }
            ServiceModel::Exponential { mean_ns } => {
                // Ziggurat standard exponential; always finite (the old
                // inverse CDF rode on `ln(1 − u)` staying away from 0).
                mean_ns * brb_sim::dist::standard_exp(rng)
            }
            ServiceModel::Deterministic { ns } => *ns,
        };
        SimDuration::from_secs_f64(ns.max(1.0) / 1e9)
    }

    /// Mean service time in nanoseconds over a workload with mean value
    /// size `mean_value_bytes`.
    pub fn mean_ns(&self, mean_value_bytes: f64) -> f64 {
        match self {
            ServiceModel::SizeLinear { .. } => {
                self.expected_ns(0)
                    + (self.expected_ns(1_000_000) - self.expected_ns(0)) * mean_value_bytes
                        / 1_000_000.0
            }
            ServiceModel::Exponential { mean_ns } => *mean_ns,
            ServiceModel::Deterministic { ns } => *ns,
        }
    }

    /// Mean service *rate* (requests/second) over the given workload.
    pub fn mean_rate(&self, mean_value_bytes: f64) -> f64 {
        1e9 / self.mean_ns(mean_value_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const MEAN_BYTES: f64 = 300.0;

    #[test]
    fn calibration_hits_target_mean() {
        let m =
            ServiceModel::calibrated_size_linear(285_714.0, MEAN_BYTES, 0.5, ServiceNoise::None);
        // A request of exactly mean size costs exactly the mean.
        assert!((m.expected_ns(300) - 285_714.0).abs() < 1.0);
        assert!((m.mean_ns(MEAN_BYTES) - 285_714.0).abs() < 1.0);
        assert!((m.mean_rate(MEAN_BYTES) - 3_500.0).abs() < 0.1);
    }

    #[test]
    fn bigger_values_cost_more() {
        let m = ServiceModel::paper_default(MEAN_BYTES);
        assert!(m.expected_ns(10_000) > m.expected_ns(100));
        assert!(m.expected_ns(1) >= 0.0);
    }

    #[test]
    fn base_fraction_bounds_cost_spread() {
        // base_fraction = 1 → size-independent.
        let flat =
            ServiceModel::calibrated_size_linear(1000.0, MEAN_BYTES, 1.0, ServiceNoise::None);
        assert_eq!(flat.expected_ns(1), flat.expected_ns(1_000_000));
        // base_fraction = 0 → fully proportional.
        let prop =
            ServiceModel::calibrated_size_linear(1000.0, MEAN_BYTES, 0.0, ServiceNoise::None);
        assert!((prop.expected_ns(600) / prop.expected_ns(300) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_preserves_mean() {
        let noisy = ServiceModel::calibrated_size_linear(
            285_714.0,
            MEAN_BYTES,
            0.5,
            ServiceNoise::LogNormal { sigma: 0.4 },
        );
        let mut rng = StdRng::seed_from_u64(6);
        let n = 200_000;
        let total: f64 = (0..n)
            .map(|_| noisy.sample(300, &mut rng).as_nanos() as f64)
            .sum();
        let mean = total / n as f64;
        let rel = (mean - 285_714.0).abs() / 285_714.0;
        assert!(rel < 0.02, "noisy mean {mean}");
    }

    #[test]
    fn noise_actually_varies() {
        let noisy = ServiceModel::paper_default(MEAN_BYTES);
        let mut rng = StdRng::seed_from_u64(7);
        let a = noisy.sample(300, &mut rng);
        let b = noisy.sample(300, &mut rng);
        assert_ne!(a, b, "log-normal noise should vary");
    }

    #[test]
    fn exponential_mean_and_cv() {
        let m = ServiceModel::Exponential { mean_ns: 100_000.0 };
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| m.sample(0, &mut rng).as_nanos() as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 100_000.0).abs() / 100_000.0 < 0.02);
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "CV {cv}");
        // Forecast for exponential is just the mean (size-blind).
        assert_eq!(m.expected_ns(123), 100_000.0);
    }

    #[test]
    fn deterministic_is_exact() {
        let m = ServiceModel::Deterministic { ns: 5_000.0 };
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(m.sample(77, &mut rng), SimDuration::from_micros(5));
        assert_eq!(m.expected_ns(77), 5_000.0);
    }

    #[test]
    fn sample_never_returns_zero() {
        let m = ServiceModel::calibrated_size_linear(10.0, MEAN_BYTES, 0.0, ServiceNoise::None);
        let mut rng = StdRng::seed_from_u64(10);
        assert!(m.sample(0, &mut rng).as_nanos() >= 1);
    }

    #[test]
    #[should_panic(expected = "base fraction")]
    fn bad_fraction_rejected() {
        ServiceModel::calibrated_size_linear(1.0, 1.0, 1.5, ServiceNoise::None);
    }

    /// An `Rng` that always returns the extreme bit pattern, driving
    /// every uniform toward the `u → 1` edge where a naive `ln(1 − u)`
    /// or `ln(u1)` would blow up.
    struct EdgeRng;

    impl rand::Rng for EdgeRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    /// Regression: the `u = 1` / `u1 = 0` logarithm edges must never
    /// produce an infinite (or NaN) draw. The extreme bit pattern pushes
    /// every uniform as close to 1 as an `f64` in `[0, 1)` allows — the
    /// exact inputs that used to ride on `ln` staying away from zero.
    #[test]
    fn sampling_edges_never_produce_infinite_times() {
        let mut edge = EdgeRng;
        for _ in 0..1_000 {
            let e = brb_sim::dist::standard_exp_inv_cdf(&mut edge);
            assert!(e.is_finite() && e >= 0.0, "inverse-CDF exp blew up: {e}");
        }
        let mut bm = brb_sim::BoxMuller::new();
        for _ in 0..1_000 {
            let z = bm.sample(&mut edge);
            assert!(z.is_finite(), "Box–Muller blew up: {z}");
        }
        // And over a long honest stream: every service draw stays finite
        // and positive for the exponential and noisy size-linear models.
        let models = [
            ServiceModel::Exponential { mean_ns: 50_000.0 },
            ServiceModel::calibrated_size_linear(
                285_714.0,
                MEAN_BYTES,
                0.5,
                ServiceNoise::LogNormal { sigma: 0.4 },
            ),
        ];
        let mut rng = StdRng::seed_from_u64(13);
        for m in models {
            for _ in 0..200_000 {
                let ns = m.sample(300, &mut rng).as_nanos();
                assert!(
                    (1..u64::MAX / 2).contains(&ns),
                    "bad sample {ns} from {m:?}"
                );
            }
        }
    }

    /// Statistical equivalence: routing the log-normal noise through the
    /// ziggurat must leave the service-time distribution unchanged
    /// relative to the Box–Muller baseline — same mean, variance and
    /// tail quantile within sampling tolerance.
    #[test]
    fn ziggurat_noise_matches_box_muller_baseline() {
        let sigma = 0.3f64;
        let model = ServiceModel::calibrated_size_linear(
            285_714.0,
            MEAN_BYTES,
            0.5,
            ServiceNoise::LogNormal { sigma },
        );
        let n = 200_000usize;
        // Actual model path (ziggurat under the hood).
        let mut rng = StdRng::seed_from_u64(21);
        let mut zig: Vec<f64> = (0..n)
            .map(|_| model.sample(300, &mut rng).as_nanos() as f64)
            .collect();
        // Baseline path: same mean-corrected log-normal factor, Z from
        // the cached-pair Box–Muller.
        let mut rng = StdRng::seed_from_u64(22);
        let mut bm = brb_sim::BoxMuller::new();
        let expected = model.expected_ns(300);
        let mut base: Vec<f64> = (0..n)
            .map(|_| {
                let z = bm.sample(&mut rng);
                (expected * (sigma * z - sigma * sigma / 2.0).exp()).max(1.0)
            })
            .collect();
        let stats = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var =
                xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
            (mean, var)
        };
        let (zm, zv) = stats(&zig);
        let (bm_mean, bv) = stats(&base);
        assert!((zm - bm_mean).abs() / bm_mean < 0.01, "{zm} vs {bm_mean}");
        assert!(
            (zv.sqrt() - bv.sqrt()).abs() / bv.sqrt() < 0.02,
            "stddev {} vs {}",
            zv.sqrt(),
            bv.sqrt()
        );
        zig.sort_by(f64::total_cmp);
        base.sort_by(f64::total_cmp);
        let p99 = (n as f64 * 0.99) as usize;
        assert!(
            (zig[p99] - base[p99]).abs() / base[p99] < 0.02,
            "p99 {} vs {}",
            zig[p99],
            base[p99]
        );
    }
}
