//! A real, thread-safe, sharded in-memory key-value store.
//!
//! Backs the `brb-rt` runtime (the non-simulated implementation). Sharding
//! by key hash keeps lock contention low under the multi-worker servers;
//! values are [`bytes::Bytes`] so reads hand out cheap reference-counted
//! slices instead of copies — the zero-copy idiom the networking guides
//! recommend for hot paths.

use bytes::Bytes;
use parking_lot::RwLock;
// Point get/insert under a key hash; shards are never iterated, so
// RandomState order can't leak into any output.
// brb-lint: allow(D002) — keyed access only, never iterated
use std::collections::HashMap;

/// A sharded `u64 → Bytes` store.
#[derive(Debug)]
pub struct ShardedStore {
    // brb-lint: allow(D002) — same: keyed access only, never iterated.
    shards: Vec<RwLock<HashMap<u64, Bytes>>>,
    mask: u64,
}

impl ShardedStore {
    /// Creates a store with `shards` shards (rounded up to a power of two).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let n = shards.next_power_of_two();
        ShardedStore {
            // brb-lint: allow(D002) — keyed access only, never iterated.
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u64) -> usize {
        (splitmix64(key) & self.mask) as usize
    }

    /// Inserts or replaces the value under `key`; returns the previous
    /// value if any.
    pub fn put(&self, key: u64, value: Bytes) -> Option<Bytes> {
        self.shards[self.shard_of(key)].write().insert(key, value)
    }

    /// Reads the value under `key` (cheap clone of a refcounted slice).
    pub fn get(&self, key: u64) -> Option<Bytes> {
        self.shards[self.shard_of(key)].read().get(&key).cloned()
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: u64) -> Option<Bytes> {
        self.shards[self.shard_of(key)].write().remove(&key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(&key)
    }

    /// Total number of keys across shards (racy under concurrent writes,
    /// exact when quiesced).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of stored values.
    pub fn value_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|v| v.len()).sum::<usize>())
            .sum()
    }

    /// Populates the store with `num_keys` keys whose values are
    /// zero-filled buffers sized by `size_of` — used to materialize a
    /// synthetic catalog for the runtime.
    pub fn populate_with<F: Fn(u64) -> u64>(&self, num_keys: u64, size_of: F) {
        for key in 0..num_keys {
            let size = size_of(key) as usize;
            self.put(key, Bytes::from(vec![0u8; size]));
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_remove_round_trip() {
        let s = ShardedStore::new(4);
        assert!(s.get(1).is_none());
        assert!(s.put(1, Bytes::from_static(b"hello")).is_none());
        assert_eq!(s.get(1).unwrap(), Bytes::from_static(b"hello"));
        assert!(s.contains(1));
        let old = s.put(1, Bytes::from_static(b"world")).unwrap();
        assert_eq!(old, Bytes::from_static(b"hello"));
        assert_eq!(s.remove(1).unwrap(), Bytes::from_static(b"world"));
        assert!(s.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedStore::new(3).num_shards(), 4);
        assert_eq!(ShardedStore::new(8).num_shards(), 8);
        assert_eq!(ShardedStore::new(1).num_shards(), 1);
    }

    #[test]
    fn len_and_bytes_accounting() {
        let s = ShardedStore::new(8);
        s.populate_with(100, |k| (k % 10) + 1);
        assert_eq!(s.len(), 100);
        let expect: usize = (0..100u64).map(|k| ((k % 10) + 1) as usize).sum();
        assert_eq!(s.value_bytes(), expect);
    }

    #[test]
    fn keys_distribute_across_shards() {
        let s = ShardedStore::new(16);
        s.populate_with(16_000, |_| 1);
        for shard in &s.shards {
            let n = shard.read().len();
            assert!((600..=1_400).contains(&n), "shard holds {n} keys");
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let s = Arc::new(ShardedStore::new(8));
        s.populate_with(1_000, |_| 8);
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let key = (i * 7 + t) % 1_000;
                    if i % 10 == 0 {
                        s.put(key, Bytes::from(vec![t as u8; 8]));
                    } else {
                        let v = s.get(key).expect("populated key vanished");
                        assert_eq!(v.len(), 8);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 1_000);
    }

    #[test]
    fn get_is_zero_copy() {
        let s = ShardedStore::new(1);
        let v = Bytes::from(vec![42u8; 1024]);
        let ptr = v.as_ptr();
        s.put(9, v);
        let got = s.get(9).unwrap();
        assert_eq!(got.as_ptr(), ptr, "get must not copy the payload");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedStore::new(0);
    }
}
