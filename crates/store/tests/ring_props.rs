//! Property-based tests on ring placement and service-time calibration.

use brb_store::ids::{GroupId, ServerId};
use brb_store::partition::Ring;
use brb_store::service::{ServiceModel, ServiceNoise};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// For any valid ring shape: every key maps to exactly R distinct
    /// replicas, membership is consistent in both directions, and every
    /// server belongs to at most R groups.
    #[test]
    fn ring_membership_invariants(
        servers in 1u32..32,
        partitions_mult in 1u32..4,
        replication in 1u32..8,
        keys in proptest::collection::vec(0u64..u64::MAX, 1..50),
    ) {
        let replication = replication.min(servers);
        let ring = Ring::new(servers, servers * partitions_mult, replication);

        for key in keys {
            let replicas = ring.replicas_of_key(key);
            prop_assert_eq!(replicas.len(), replication as usize);
            let distinct: std::collections::HashSet<_> = replicas.iter().collect();
            prop_assert_eq!(distinct.len(), replication as usize, "duplicate replicas");
            let group = ring.group_of_key(key);
            for s in &replicas {
                prop_assert!(ring.server_in_group(*s, group));
            }
        }

        for s in 0..servers as u64 {
            let groups = ring.groups_of_server(ServerId::new(s));
            prop_assert!(groups.len() <= replication as usize);
            for g in groups {
                prop_assert!(ring.replicas_of_group(g).contains(&ServerId::new(s)));
            }
        }
    }

    /// Group ids are always within range and stable.
    #[test]
    fn groups_in_range(servers in 1u32..64, key in 0u64..u64::MAX) {
        let ring = Ring::new(servers, servers, 1.max(servers / 3));
        let g = ring.group_of_key(key);
        prop_assert!(g.raw() < ring.num_groups() as u64);
        prop_assert_eq!(ring.group_of_key(key), g);
        let _ = GroupId::new(g.raw()); // usable as an id
    }

    /// Calibration: for any target rate and mean size, the size-linear
    /// model's expected time at the mean size equals the target, and the
    /// empirical mean under noise converges to it.
    #[test]
    fn service_calibration_holds(
        rate in 100.0f64..100_000.0,
        mean_bytes in 10.0f64..100_000.0,
        base_fraction in 0.0f64..=1.0,
    ) {
        let mean_ns = 1e9 / rate;
        let m = ServiceModel::calibrated_size_linear(
            mean_ns, mean_bytes, base_fraction, ServiceNoise::None,
        );
        let expect = m.expected_ns(mean_bytes.round() as u64);
        let rel = (expect - mean_ns).abs() / mean_ns;
        prop_assert!(rel < 0.01, "calibration off by {rel}");
        // Size monotonicity.
        prop_assert!(m.expected_ns(1) <= m.expected_ns(1_000_000));
    }

    /// Noise never changes the forecast, only the sample; samples stay
    /// positive.
    #[test]
    fn noise_only_affects_samples(
        sigma in 0.0f64..1.0,
        bytes in 1u64..1_000_000,
    ) {
        let clean = ServiceModel::calibrated_size_linear(
            285_714.0, 300.0, 0.2, ServiceNoise::None,
        );
        let noisy = ServiceModel::calibrated_size_linear(
            285_714.0, 300.0, 0.2, ServiceNoise::LogNormal { sigma },
        );
        prop_assert_eq!(clean.expected_ns(bytes), noisy.expected_ns(bytes));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            prop_assert!(noisy.sample(bytes, &mut rng).as_nanos() >= 1);
        }
    }
}
