//! Uniform reservoir sampling (Vitter's Algorithm R).
//!
//! Keeps a fixed-size uniform sample of an unbounded stream. We use it for
//! cheap *exact* quantiles over per-request latencies when the full stream
//! would be too large to keep, and in tests as an independent check on the
//! histogram.
//!
//! The RNG is injected per call so the reservoir itself stays deterministic
//! state: callers pass the labelled stream they own.

use serde::{Deserialize, Serialize};

/// Fixed-capacity uniform sample over a stream of `f64` values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<f64>,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity.min(4096)),
        }
    }

    /// Offers a value to the reservoir. `coin` must be a fresh uniform draw
    /// in `[0, 1)` from the caller's RNG stream (unused until the reservoir
    /// is full).
    pub fn offer(&mut self, value: f64, coin: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = (coin * self.seen as f64) as u64;
            if (j as usize) < self.capacity {
                self.samples[j as usize] = value;
            }
        }
    }

    /// Number of values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample (unsorted).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Whether the reservoir holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact quantile of the *sample* (sorts a copy); `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in reservoir"));
        crate::percentile::exact_percentile(&sorted, q.clamp(0.0, 1.0) * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fills_before_sampling() {
        let mut r = Reservoir::new(10);
        for i in 0..10 {
            r.offer(i as f64, 0.0);
        }
        assert_eq!(r.samples().len(), 10);
        assert_eq!(r.seen(), 10);
        let expect: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(r.samples(), expect.as_slice());
    }

    #[test]
    fn capacity_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(100);
        for i in 0..10_000 {
            r.offer(i as f64, rng.random());
        }
        assert_eq!(r.samples().len(), 100);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sample_is_approximately_uniform() {
        // Offer 0..n and check the sample mean is near n/2 — a coarse but
        // effective uniformity check for Algorithm R.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000u64;
        let mut r = Reservoir::new(2_000);
        for i in 0..n {
            r.offer(i as f64, rng.random());
        }
        let mean = r.samples().iter().sum::<f64>() / r.samples().len() as f64;
        let expected = (n - 1) as f64 / 2.0;
        let rel = (mean - expected).abs() / expected;
        assert!(rel < 0.05, "sample mean {mean} far from {expected}");
    }

    #[test]
    fn quantiles_of_sample() {
        let mut r = Reservoir::new(101);
        for i in 0..=100 {
            r.offer(i as f64, 0.0);
        }
        assert_eq!(r.quantile(0.5), Some(50.0));
        assert_eq!(r.quantile(1.0), Some(100.0));
        assert_eq!(r.quantile(0.0), Some(0.0));
    }

    #[test]
    fn empty_reservoir() {
        let r = Reservoir::new(5);
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Reservoir::new(0);
    }
}
