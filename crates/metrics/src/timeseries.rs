//! Windowed event-rate measurement over virtual time.
//!
//! The credits controller measures per-client demand over fixed
//! *measurement intervals* (100 ms by default in our realization) and the
//! engine tracks server utilization the same way. [`WindowedRate`] counts
//! events into fixed-width windows keyed by a `u64` timestamp (nanoseconds
//! in this workspace) and reports per-window rates.

use serde::{Deserialize, Serialize};

/// Counts events into fixed-width time windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedRate {
    window_ns: u64,
    /// Completed windows: (window_start_ns, count).
    completed: Vec<(u64, u64)>,
    current_window: u64,
    current_count: u64,
    total: u64,
}

impl WindowedRate {
    /// Creates a tracker with the given window width in nanoseconds.
    ///
    /// # Panics
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        WindowedRate {
            window_ns,
            completed: Vec::new(),
            current_window: 0,
            current_count: 0,
            total: 0,
        }
    }

    /// Records `count` events at time `at_ns`. Times must be non-decreasing
    /// across calls (virtual time is monotone).
    pub fn record_at(&mut self, at_ns: u64, count: u64) {
        let window = at_ns / self.window_ns;
        debug_assert!(window >= self.current_window, "time went backwards");
        if window != self.current_window {
            self.roll_to(window);
        }
        self.current_count += count;
        self.total += count;
    }

    /// Closes any window strictly before the one containing `at_ns` so the
    /// most recent completed window is observable even without new events.
    pub fn advance_to(&mut self, at_ns: u64) {
        let window = at_ns / self.window_ns;
        if window > self.current_window {
            self.roll_to(window);
        }
    }

    fn roll_to(&mut self, window: u64) {
        self.completed
            .push((self.current_window * self.window_ns, self.current_count));
        // Emit empty windows so rates over idle periods read as zero.
        for w in (self.current_window + 1)..window {
            self.completed.push((w * self.window_ns, 0));
        }
        self.current_window = window;
        self.current_count = 0;
    }

    /// Rate (events/second) of the most recently *completed* window, or
    /// `None` if no window has completed yet.
    pub fn last_window_rate(&self) -> Option<f64> {
        self.completed
            .last()
            .map(|&(_, c)| c as f64 / (self.window_ns as f64 / 1e9))
    }

    /// Count in the most recently completed window.
    pub fn last_window_count(&self) -> Option<u64> {
        self.completed.last().map(|&(_, c)| c)
    }

    /// All completed windows as `(window_start_ns, count)`.
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.completed
    }

    /// Total events recorded (including the open window).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean rate (events/second) over all completed windows.
    pub fn mean_rate(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.completed.iter().map(|&(_, c)| c).sum();
        sum as f64 / (self.completed.len() as f64 * self.window_ns as f64 / 1e9)
    }

    /// The configured window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

/// Accumulates busy time to report utilization over an interval.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BusyTime {
    busy_ns: u64,
}

impl BusyTime {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        BusyTime { busy_ns: 0 }
    }

    /// Adds a busy span.
    pub fn add(&mut self, ns: u64) {
        self.busy_ns += ns;
    }

    /// Total accumulated busy time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Utilization over an observation span: busy / (span × parallelism).
    /// Returns 0 for an empty span.
    pub fn utilization(&self, span_ns: u64, parallelism: u32) -> f64 {
        if span_ns == 0 || parallelism == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (span_ns as f64 * parallelism as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn counts_within_window() {
        let mut w = WindowedRate::new(100 * MS);
        w.record_at(10 * MS, 1);
        w.record_at(20 * MS, 2);
        assert_eq!(w.total(), 3);
        assert!(w.last_window_rate().is_none(), "window not yet complete");
    }

    #[test]
    fn window_rolls_and_reports_rate() {
        let mut w = WindowedRate::new(100 * MS);
        for i in 0..50 {
            w.record_at(i * MS, 1); // 50 events in window 0
        }
        w.record_at(150 * MS, 1); // rolls to window 1
        assert_eq!(w.last_window_count(), Some(50));
        // 50 events in 0.1s = 500/s.
        assert!((w.last_window_rate().unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn idle_windows_emit_zero() {
        let mut w = WindowedRate::new(100 * MS);
        w.record_at(0, 5);
        w.record_at(350 * MS, 1); // skips windows 1 and 2
        assert_eq!(w.windows(), &[(0, 5), (100 * MS, 0), (200 * MS, 0)]);
    }

    #[test]
    fn advance_without_events_closes_window() {
        let mut w = WindowedRate::new(100 * MS);
        w.record_at(10 * MS, 4);
        w.advance_to(250 * MS);
        assert_eq!(w.last_window_count(), Some(0));
        assert_eq!(w.windows()[0], (0, 4));
    }

    #[test]
    fn mean_rate_over_completed_windows() {
        let mut w = WindowedRate::new(1_000 * MS); // 1s windows
        w.record_at(0, 100);
        w.record_at(1_500 * MS, 300);
        w.advance_to(2_000 * MS);
        // Two completed windows: 100 and 300 events over 2s = 200/s.
        assert!((w.mean_rate() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn busy_time_utilization() {
        let mut b = BusyTime::new();
        b.add(500);
        b.add(500);
        assert_eq!(b.total_ns(), 1000);
        assert!((b.utilization(2000, 1) - 0.5).abs() < 1e-12);
        assert!((b.utilization(1000, 4) - 0.25).abs() < 1e-12);
        assert_eq!(b.utilization(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_window_rejected() {
        WindowedRate::new(0);
    }
}
