//! Exact percentiles over in-memory samples.
//!
//! Used for small sample sets (per-seed task latencies fit comfortably in
//! memory at the paper's scale) and to cross-validate the histogram's
//! bounded-error quantiles in tests.

use serde::{Deserialize, Serialize};

/// Computes the `p`-th percentile (`p ∈ [0, 100]`) of `sorted` using the
/// nearest-rank method: the smallest element such that at least `⌈p/100·n⌉`
/// elements are ≤ it. Returns `None` on an empty slice.
///
/// # Panics
/// Debug-asserts that the slice is sorted.
pub fn exact_percentile<T: Copy + PartialOrd>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let p = p.clamp(0.0, 100.0);
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    Some(sorted[rank - 1])
}

/// The percentile triple the paper reports (Figure 2's x-axis), plus the
/// mean for context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Number of samples the percentiles were computed from.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (median).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Percentiles {
    /// Computes the triple from unsorted `f64` samples (sorts a copy).
    pub fn from_samples(samples: &[f64]) -> Option<Percentiles> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency sample"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Percentiles {
            count: sorted.len() as u64,
            mean,
            p50: exact_percentile(&sorted, 50.0).unwrap(),
            p95: exact_percentile(&sorted, 95.0).unwrap(),
            p99: exact_percentile(&sorted, 99.0).unwrap(),
            max: *sorted.last().unwrap(),
        })
    }

    /// Computes the triple from a latency histogram whose values are in
    /// nanoseconds, converting to milliseconds (the paper's unit).
    pub fn from_histogram_ns(h: &crate::histogram::Histogram) -> Option<Percentiles> {
        if h.is_empty() {
            return None;
        }
        let to_ms = |ns: u64| ns as f64 / 1e6;
        Some(Percentiles {
            count: h.len(),
            mean: h.mean() / 1e6,
            p50: to_ms(h.value_at_percentile(50.0)),
            p95: to_ms(h.value_at_percentile(95.0)),
            p99: to_ms(h.value_at_percentile(99.0)),
            max: to_ms(h.max()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_basics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&v, 50.0), Some(50));
        assert_eq!(exact_percentile(&v, 95.0), Some(95));
        assert_eq!(exact_percentile(&v, 99.0), Some(99));
        assert_eq!(exact_percentile(&v, 100.0), Some(100));
        assert_eq!(exact_percentile(&v, 0.0), Some(1));
    }

    #[test]
    fn empty_yields_none() {
        let v: Vec<f64> = vec![];
        assert_eq!(exact_percentile(&v, 50.0), None);
        assert!(Percentiles::from_samples(&v).is_none());
    }

    #[test]
    fn single_element() {
        assert_eq!(exact_percentile(&[7.0], 50.0), Some(7.0));
        let p = Percentiles::from_samples(&[7.0]).unwrap();
        assert_eq!(p.p50, 7.0);
        assert_eq!(p.p99, 7.0);
        assert_eq!(p.mean, 7.0);
    }

    #[test]
    fn from_samples_handles_unsorted_input() {
        let p = Percentiles::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(p.p50, 3.0);
        assert_eq!(p.max, 5.0);
        assert_eq!(p.count, 5);
        assert!((p.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_and_exact_agree_within_error_bound() {
        use crate::histogram::Histogram;
        let mut h = Histogram::for_latency_ns();
        let mut samples = Vec::new();
        // Deterministic pseudo-random latencies between 100µs and 10ms.
        let mut x: u64 = 0x12345678;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ns = 100_000 + (x >> 40) % 9_900_000;
            h.record(ns);
            samples.push(ns as f64 / 1e6);
        }
        let exact = Percentiles::from_samples(&samples).unwrap();
        let hist = Percentiles::from_histogram_ns(&h).unwrap();
        for (e, g) in [
            (exact.p50, hist.p50),
            (exact.p95, hist.p95),
            (exact.p99, hist.p99),
        ] {
            let rel = (e - g).abs() / e;
            assert!(rel < 0.005, "exact {e} vs hist {g} (rel {rel})");
        }
    }
}
