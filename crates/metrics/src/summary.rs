//! Streaming moments and cross-seed aggregation.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance — numerically stable
/// single-pass moments over a stream of samples.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A statistic measured once per seed, reported as mean ± stddev.
///
/// The paper averages each percentile over six seeded runs and notes the
/// standard deviation is "largely negligible"; [`SeedSummary`] is how we
/// reproduce (and verify) that claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedSummary {
    /// The per-seed observations, in seed order.
    pub values: Vec<f64>,
}

impl SeedSummary {
    /// Wraps per-seed observations.
    pub fn new(values: Vec<f64>) -> Self {
        SeedSummary { values }
    }

    /// Mean across seeds (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation across seeds.
    pub fn stddev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Half-width of a ~95% normal confidence interval (1.96 · σ/√n).
    pub fn ci95_half_width(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.values.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((rs.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.min(), 0.0);
        assert_eq!(rs.max(), 0.0);
    }

    #[test]
    fn single_seed_stddev_is_zero_not_nan() {
        // Regression pin: a one-seed cell must report stddev 0.0 — a
        // NaN here would poison every downstream report and serialize
        // as null in the JSONL.
        let one = SeedSummary::new(vec![42.0]);
        assert_eq!(one.stddev(), 0.0);
        assert!(one.stddev().is_finite());
        assert_eq!(one.cv(), 0.0);
        assert_eq!(one.ci95_half_width(), 0.0);
        let mut rs = RunningStats::new();
        rs.push(42.0);
        assert_eq!(rs.stddev(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i < 37 {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn seed_summary_moments() {
        let s = SeedSummary::new(vec![10.0, 12.0, 11.0, 9.0, 10.0, 11.0]);
        assert!((s.mean() - 10.5).abs() < 1e-12);
        assert!(s.stddev() > 0.0);
        assert!(s.cv() < 0.2, "paper claims negligible stddev across seeds");
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn seed_summary_degenerate_cases() {
        assert_eq!(SeedSummary::new(vec![]).mean(), 0.0);
        assert_eq!(SeedSummary::new(vec![5.0]).stddev(), 0.0);
        assert_eq!(SeedSummary::new(vec![0.0, 0.0]).cv(), 0.0);
    }
}
