//! HDR-style log-linear histogram with bounded relative error.
//!
//! The layout follows the classic HdrHistogram design: values are grouped
//! into exponential *buckets*, each split into a fixed number of linear
//! *sub-buckets*, so any recorded value is representable with a relative
//! error below `10^-significant_digits`. Memory is proportional to
//! `log2(max/min) × 10^significant_digits`, independent of sample count —
//! we record hundreds of millions of request latencies per experiment
//! without allocating per sample.

use serde::{Deserialize, Serialize};

/// Configuration and counts for a log-linear histogram of `u64` values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lowest_discernible: u64,
    highest_trackable: u64,
    significant_digits: u8,
    unit_magnitude: u32,
    sub_bucket_half_count_magnitude: u32,
    sub_bucket_count: u32,
    sub_bucket_half_count: u32,
    sub_bucket_mask: u64,
    bucket_count: u32,
    counts: Vec<u64>,
    total: u64,
    /// Values above `highest_trackable` are clamped and counted here too.
    saturated: u64,
    min_recorded: u64,
    max_recorded: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lowest_discernible, highest_trackable]`
    /// with `significant_digits` decimal digits of precision (1..=5).
    ///
    /// # Panics
    /// Panics if the bounds are inverted, `lowest_discernible` is zero, or
    /// `significant_digits` is out of range.
    pub fn new(lowest_discernible: u64, highest_trackable: u64, significant_digits: u8) -> Self {
        assert!(lowest_discernible >= 1, "lowest_discernible must be >= 1");
        assert!(
            highest_trackable >= lowest_discernible * 2,
            "highest_trackable must be at least 2x lowest_discernible"
        );
        assert!(
            (1..=5).contains(&significant_digits),
            "significant_digits must be in 1..=5"
        );

        let largest_resolvable = 2 * 10u64.pow(significant_digits as u32);
        let unit_magnitude = lowest_discernible.ilog2();
        // Smallest power of two >= largest_resolvable.
        let sub_bucket_count_magnitude = 64 - (largest_resolvable - 1).leading_zeros();
        let sub_bucket_half_count_magnitude = sub_bucket_count_magnitude.saturating_sub(1);
        let sub_bucket_count = 1u32 << sub_bucket_count_magnitude;
        let sub_bucket_half_count = sub_bucket_count / 2;
        let sub_bucket_mask = ((sub_bucket_count as u64) - 1) << unit_magnitude;

        // Number of buckets needed so the last bucket covers
        // highest_trackable.
        let mut smallest_untrackable = (sub_bucket_count as u64) << unit_magnitude;
        let mut bucket_count = 1u32;
        while smallest_untrackable <= highest_trackable {
            if smallest_untrackable > u64::MAX / 2 {
                bucket_count += 1;
                break;
            }
            smallest_untrackable <<= 1;
            bucket_count += 1;
        }

        let counts_len = ((bucket_count as usize) + 1) * (sub_bucket_half_count as usize);
        Histogram {
            lowest_discernible,
            highest_trackable,
            significant_digits,
            unit_magnitude,
            sub_bucket_half_count_magnitude,
            sub_bucket_count,
            sub_bucket_half_count,
            sub_bucket_mask,
            bucket_count,
            counts: vec![0; counts_len],
            total: 0,
            saturated: 0,
            min_recorded: u64::MAX,
            max_recorded: 0,
        }
    }

    /// A histogram suited to latencies in nanoseconds: 1 µs discernible,
    /// 100 s trackable, 3 significant digits (≤0.1% relative error).
    pub fn for_latency_ns() -> Self {
        Histogram::new(1_000, 100_000_000_000, 3)
    }

    /// Records one occurrence of `value`. Values below the discernible
    /// floor are clamped up; values above the trackable ceiling are clamped
    /// down and tallied in [`Histogram::saturated_count`].
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let clamped = if value > self.highest_trackable {
            self.saturated += count;
            self.highest_trackable
        } else {
            value.max(self.lowest_discernible)
        };
        let idx = self.counts_index_for(clamped);
        self.counts[idx] += count;
        self.total += count;
        self.min_recorded = self.min_recorded.min(clamped);
        self.max_recorded = self.max_recorded.max(clamped);
    }

    /// Total recorded count.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// How many recorded values exceeded the trackable ceiling.
    pub fn saturated_count(&self) -> u64 {
        self.saturated
    }

    /// Smallest recorded value (after clamping), or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min_recorded
        }
    }

    /// Largest recorded value (after clamping), or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max_recorded
        }
    }

    /// Arithmetic mean of recorded values, using bucket midpoints.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                sum += self.median_equivalent(self.value_from_index(i)) as f64 * c as f64;
            }
        }
        sum / self.total as f64
    }

    /// The value at quantile `q ∈ [0, 1]`: the smallest representable value
    /// such that at least `ceil(q × total)` recorded values are ≤ it.
    /// Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64)
            .max(1)
            .min(self.total);
        let mut running = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            running += c;
            if running >= target {
                return self
                    .highest_equivalent(self.value_from_index(i))
                    .min(self.max_recorded);
            }
        }
        self.max_recorded
    }

    /// Convenience: value at a percentile in `[0, 100]`.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        self.value_at_quantile(p / 100.0)
    }

    /// Number of recorded values `<= value` (using bucket resolution).
    pub fn count_at_or_below(&self, value: u64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let clamped = value
            .min(self.highest_trackable)
            .max(self.lowest_discernible);
        let idx = self.counts_index_for(clamped);
        self.counts[..=idx].iter().sum()
    }

    /// Merges `other` into `self`.
    ///
    /// # Panics
    /// Panics if the histograms were built with different configurations.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (
                self.lowest_discernible,
                self.highest_trackable,
                self.significant_digits
            ),
            (
                other.lowest_discernible,
                other.highest_trackable,
                other.significant_digits
            ),
            "cannot merge histograms with different configurations"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.saturated += other.saturated;
        if other.total > 0 {
            self.min_recorded = self.min_recorded.min(other.min_recorded);
            self.max_recorded = self.max_recorded.max(other.max_recorded);
        }
    }

    /// Resets all counts, keeping the configuration.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.saturated = 0;
        self.min_recorded = u64::MAX;
        self.max_recorded = 0;
    }

    /// The configured relative-error bound, `10^-significant_digits`.
    pub fn relative_error_bound(&self) -> f64 {
        10f64.powi(-(self.significant_digits as i32))
    }

    /// Iterates `(bucket_lower_value, count)` over non-empty buckets.
    pub fn iter_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.value_from_index(i), c))
    }

    // --- index math (HdrHistogram layout) ---

    fn bucket_index(&self, value: u64) -> u32 {
        // Index of the exponential bucket containing `value`.
        let pow2ceiling = 64 - (value | self.sub_bucket_mask).leading_zeros();
        pow2ceiling - self.unit_magnitude - (self.sub_bucket_half_count_magnitude + 1)
    }

    fn sub_bucket_index(&self, value: u64, bucket_idx: u32) -> u32 {
        (value >> (bucket_idx + self.unit_magnitude)) as u32
    }

    fn counts_index_for(&self, value: u64) -> usize {
        let bucket_idx = self.bucket_index(value);
        let sub_idx = self.sub_bucket_index(value, bucket_idx);
        debug_assert!(sub_idx < self.sub_bucket_count);
        debug_assert!(bucket_idx == 0 || sub_idx >= self.sub_bucket_half_count);
        let base = ((bucket_idx as usize) + 1) * (self.sub_bucket_half_count as usize);
        let offset = (sub_idx as isize) - (self.sub_bucket_half_count as isize);
        (base as isize + offset) as usize
    }

    fn value_from_index(&self, index: usize) -> u64 {
        let mut bucket_idx = (index >> self.sub_bucket_half_count_magnitude) as isize - 1;
        let mut sub_idx = (index & ((self.sub_bucket_half_count as usize) - 1))
            + self.sub_bucket_half_count as usize;
        if bucket_idx < 0 {
            sub_idx -= self.sub_bucket_half_count as usize;
            bucket_idx = 0;
        }
        (sub_idx as u64) << (bucket_idx as u32 + self.unit_magnitude)
    }

    /// Width of the bucket containing `value`.
    fn size_of_equivalent_range(&self, value: u64) -> u64 {
        let bucket_idx = self.bucket_index(value);
        1u64 << (self.unit_magnitude + bucket_idx)
    }

    /// Largest value indistinguishable from `value`.
    fn highest_equivalent(&self, value: u64) -> u64 {
        let bucket_idx = self.bucket_index(value);
        let lower =
            (self.sub_bucket_index(value, bucket_idx) as u64) << (bucket_idx + self.unit_magnitude);
        lower + self.size_of_equivalent_range(value) - 1
    }

    /// Midpoint of the bucket containing `value`.
    fn median_equivalent(&self, value: u64) -> u64 {
        let bucket_idx = self.bucket_index(value);
        let lower =
            (self.sub_bucket_index(value, bucket_idx) as u64) << (bucket_idx + self.unit_magnitude);
        lower + (self.size_of_equivalent_range(value) >> 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(1, 1_000_000, 3);
        h.record(100);
        h.record(200);
        h.record_n(300, 3);
        assert_eq!(h.len(), 5);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn exact_at_low_values() {
        // With 3 significant digits, values below 2000 land in dedicated
        // unit-width sub-buckets: quantiles are exact.
        let mut h = Histogram::new(1, 1_000_000, 3);
        for v in 1..=1000 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.5), 500);
        assert_eq!(h.value_at_quantile(0.99), 990);
        assert_eq!(h.value_at_quantile(1.0), 1000);
        assert_eq!(h.value_at_quantile(0.0), 1);
    }

    #[test]
    fn relative_error_bounded_at_high_values() {
        let mut h = Histogram::new(1, u64::MAX / 4, 3);
        let value = 1_234_567_890;
        h.record(value);
        let got = h.value_at_quantile(1.0);
        let err = (got as f64 - value as f64).abs() / value as f64;
        assert!(
            err <= h.relative_error_bound(),
            "error {err} exceeds bound {}",
            h.relative_error_bound()
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::for_latency_ns();
        for i in 0..10_000u64 {
            h.record(1_000 + i * 37);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v >= prev, "quantile {q} not monotone: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn saturation_is_tracked() {
        let mut h = Histogram::new(1_000, 10_000, 2);
        h.record(50_000);
        assert_eq!(h.saturated_count(), 1);
        assert!(h.max() <= 10_000 + 10_000 / 100);
    }

    #[test]
    fn below_floor_clamps_up() {
        let mut h = Histogram::new(1_000, 1_000_000, 3);
        h.record(3);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new(1, 1_000_000, 3);
        let mut b = Histogram::new(1, 1_000_000, 3);
        let mut u = Histogram::new(1, 1_000_000, 3);
        for v in [5u64, 100, 20_000, 999_999] {
            a.record(v);
            u.record(v);
        }
        for v in [7u64, 300, 40_000] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), u.len());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(a.value_at_quantile(q), u.value_at_quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merge_rejects_mismatched_config() {
        let mut a = Histogram::new(1, 1_000_000, 3);
        let b = Histogram::new(1, 1_000_000, 2);
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new(1, 1000, 2);
        h.record(500);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn mean_close_to_true_mean() {
        let mut h = Histogram::new(1, 10_000_000, 3);
        let mut sum = 0u64;
        let n = 5_000u64;
        for i in 0..n {
            let v = 1 + i * 13;
            h.record(v);
            sum += v;
        }
        let true_mean = sum as f64 / n as f64;
        let err = (h.mean() - true_mean).abs() / true_mean;
        assert!(err < 0.01, "mean error {err}");
    }

    #[test]
    fn count_at_or_below_matches_quantile_inverse() {
        let mut h = Histogram::new(1, 100_000, 3);
        for v in 1..=100u64 {
            h.record(v * 100);
        }
        assert_eq!(h.count_at_or_below(100), 1);
        assert_eq!(h.count_at_or_below(5_000), 50);
        assert_eq!(h.count_at_or_below(10_000), 100);
    }

    #[test]
    fn latency_preset_covers_typical_range() {
        let mut h = Histogram::for_latency_ns();
        h.record(50_000); // 50µs
        h.record(1_000_000); // 1ms
        h.record(10_000_000_000); // 10s
        assert_eq!(h.saturated_count(), 0);
        assert_eq!(h.len(), 3);
    }
}
