//! # brb-metrics — measurement substrate
//!
//! Latency measurement for the BRB reproduction. The paper reports task
//! read latencies at the median, 95th and 99th percentiles averaged over
//! six seeded runs; this crate provides the machinery to do that honestly:
//!
//! * [`histogram::Histogram`] — an HDR-style log-linear histogram with
//!   configurable significant digits, built from scratch (no external
//!   histogram crate). Records `u64` values (we use nanoseconds) with
//!   bounded relative error, supports merging and quantile queries.
//! * [`summary::RunningStats`] — Welford mean/variance for streaming data.
//! * [`summary::SeedSummary`] — aggregates a statistic across seeds into
//!   mean ± stddev (the paper: "experiments are repeated 6 times with
//!   different random seeds ... standard deviation is largely negligible").
//! * [`percentile`] — exact percentiles on sorted samples, used to
//!   cross-validate the histogram in tests.
//! * [`timeseries::WindowedRate`] — windowed event-rate tracking, used for
//!   utilization accounting and the credits controller's demand estimates.
//! * [`reservoir::Reservoir`] — uniform reservoir sampling for cheap exact
//!   quantiles over huge streams.
//! * [`stats`] — significance statistics for paired A/B comparison:
//!   Welch's t, deterministic paired-bootstrap CIs, order-statistic
//!   quantile CIs, and Kendall tau for cross-backend ordering checks.

pub mod histogram;
pub mod percentile;
pub mod reservoir;
pub mod stats;
pub mod summary;
pub mod timeseries;

pub use histogram::Histogram;
pub use percentile::{exact_percentile, Percentiles};
pub use reservoir::Reservoir;
pub use stats::{
    benjamini_hochberg, kendall_tau, paired_bootstrap_ci, quantile_ci, welch_t, BootstrapCi, WelchT,
};
pub use summary::{RunningStats, SeedSummary};
pub use timeseries::{BusyTime, WindowedRate};
