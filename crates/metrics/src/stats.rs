//! Significance statistics for paired experiment comparison.
//!
//! The lab's `compare` verb reports per-seed paired differences between
//! strategies (common random numbers make the pairing free variance
//! reduction). This module supplies the inference machinery it needs,
//! all deterministic and dependency-free:
//!
//! * [`welch_t`] — Welch's unequal-variance t statistic with
//!   Welch–Satterthwaite degrees of freedom and a two-sided p-value
//!   computed through the regularized incomplete beta function (no
//!   lookup tables, no approximation past f64 round-off).
//! * [`paired_bootstrap_ci`] — a percentile bootstrap confidence
//!   interval over the mean paired difference, driven by a SplitMix64
//!   stream seeded by the caller — reruns are byte-identical.
//! * [`quantile_ci`] — a distribution-free order-statistic confidence
//!   interval for a quantile (exact binomial ranks, log-space pmf so
//!   large samples don't underflow).
//! * [`kendall_tau`] — rank-order agreement between two metric vectors,
//!   used to check strategy-ordering concordance across backends.
//! * [`benjamini_hochberg`] — step-up false-discovery-rate adjustment
//!   over a family of p-values, for reports that test many
//!   (cell × strategy × metric) hypotheses at once.

use serde::{Deserialize, Serialize};

/// Welch's t test outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelchT {
    /// The t statistic (mean(a) − mean(b) over the pooled standard
    /// error). `±∞` when both samples are degenerate with distinct
    /// means.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value under the Student t distribution.
    pub p: f64,
}

/// Welch's unequal-variance t statistic for `mean(a) - mean(b)`.
///
/// Returns `None` unless both samples have at least two observations —
/// a variance estimate needs n ≥ 2, and refusing is better than
/// emitting NaN garbage. Two zero-variance samples are handled exactly:
/// equal means give `t = 0, p = 1`; distinct means give `t = ±∞,
/// p = 0` (the difference is certain under the observed data).
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<WelchT> {
    let (na, nb) = (a.len(), b.len());
    if na < 2 || nb < 2 {
        return None;
    }
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let sea = va / na as f64;
    let seb = vb / nb as f64;
    let se2 = sea + seb;
    if se2 == 0.0 {
        let diff = ma - mb;
        return Some(if diff == 0.0 {
            WelchT {
                t: 0.0,
                df: (na + nb - 2) as f64,
                p: 1.0,
            }
        } else {
            WelchT {
                t: diff.signum() * f64::INFINITY,
                df: (na + nb - 2) as f64,
                p: 0.0,
            }
        });
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / (sea * sea / (na as f64 - 1.0) + seb * seb / (nb as f64 - 1.0));
    Some(WelchT {
        t,
        df,
        p: student_t_two_sided_p(t, df),
    })
}

/// Two-sided p-value of a Student t statistic with `df` degrees of
/// freedom: `P(|T| ≥ |t|) = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t.is_nan() { f64::NAN } else { 0.0 };
    }
    if df <= 0.0 {
        return f64::NAN;
    }
    reg_inc_beta(df / 2.0, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

/// A percentile-bootstrap confidence interval over a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// The sample mean of the input differences.
    pub mean: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

impl BootstrapCi {
    /// Whether the interval excludes zero — the "significant" verdict
    /// the compare report prints.
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }
}

/// Percentile bootstrap CI for the mean of `diffs` at the given
/// confidence level (e.g. `0.95`).
///
/// The resampling stream is SplitMix64 seeded with `seed`, so the same
/// `(diffs, resamples, confidence, seed)` always produces bit-identical
/// bounds — the compare report derives the seed from the scenario's
/// seed list, never from wall-clock state. Returns `None` on an empty
/// sample, zero resamples, or a confidence outside `(0, 1)`.
pub fn paired_bootstrap_ci(
    diffs: &[f64],
    resamples: u32,
    confidence: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if diffs.is_empty() || resamples == 0 || !(confidence > 0.0 && confidence < 1.0) {
        return None;
    }
    let n = diffs.len();
    let mut rng = SplitMix64::new(seed);
    let mut means = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += diffs[(rng.next_u64() % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    let rank = |p: f64| {
        // Nearest-rank on the sorted resample means.
        let r = (p * means.len() as f64).ceil() as usize;
        means[r.clamp(1, means.len()) - 1]
    };
    Some(BootstrapCi {
        mean: diffs.iter().sum::<f64>() / n as f64,
        lo: rank(alpha / 2.0),
        hi: rank(1.0 - alpha / 2.0),
    })
}

/// Distribution-free order-statistic confidence interval for the `q`-th
/// quantile (`q ∈ (0, 1)`) of `sorted` at the given confidence level.
///
/// The bracketing ranks come from the exact Binomial(n, q) tails
/// (computed in log space, so n in the tens of thousands is fine);
/// the interval always contains the nearest-rank sample quantile.
/// Returns `None` on an empty slice or out-of-domain `q`/`confidence`.
pub fn quantile_ci(sorted: &[f64], q: f64, confidence: f64) -> Option<(f64, f64)> {
    let n = sorted.len();
    if n == 0 || !(q > 0.0 && q < 1.0) || !(confidence > 0.0 && confidence < 1.0) {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let alpha = 1.0 - confidence;
    let ln_q = q.ln();
    let ln_1q = (1.0 - q).ln();
    let nf = n as f64;
    let ln_pmf = |k: usize| {
        let kf = k as f64;
        ln_gamma(nf + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0)
            + kf * ln_q
            + (nf - kf) * ln_1q
    };
    // lo = the largest rank whose strictly-below probability stays
    // within the lower tail budget; hi symmetric from the upper tail.
    let mut cum = 0.0;
    let mut lo = 0usize;
    let mut hi = n - 1;
    let mut hi_set = false;
    for k in 0..n {
        // P(X < k) so far; X ~ Binomial(n, q) counts samples below Q(q).
        if cum <= alpha / 2.0 {
            lo = k;
        }
        cum += ln_pmf(k).exp();
        if !hi_set && cum >= 1.0 - alpha / 2.0 {
            hi = k;
            hi_set = true;
        }
    }
    // Keep the nearest-rank point estimate inside the interval even at
    // extreme q where a one-sided tail collapses.
    let point = ((q * nf).ceil() as usize).clamp(1, n) - 1;
    Some((sorted[lo.min(point)], sorted[hi.max(point)]))
}

/// Kendall rank correlation (tau-a) between two equally-long vectors:
/// `+1` for identical orderings, `−1` for exactly reversed, with tied
/// pairs contributing zero. Returns `None` unless both have the same
/// length ≥ 2.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 2 || ys.len() != n {
        return None;
    }
    let mut score = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[j] - xs[i];
            let dy = ys[j] - ys[i];
            let s = (dx * dy).partial_cmp(&0.0)?;
            score += match s {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }
    Some(score as f64 / (n * (n - 1) / 2) as f64)
}

/// Benjamini–Hochberg step-up adjustment: maps a family of p-values to
/// FDR-adjusted values, positionally (`out[i]` adjusts `ps[i]`).
///
/// With the p-values ranked ascending as `p_(1) ≤ … ≤ p_(m)`, the
/// adjusted value at rank `k` is `min over j ≥ k of p_(j) · m / j`,
/// clamped to 1 — the smallest FDR level at which that hypothesis would
/// still be rejected. Deterministic; ties share their adjusted value
/// (stable sort by value, then the running minimum from the top makes
/// tied raw p-values indistinguishable). An empty family yields an
/// empty vector.
pub fn benjamini_hochberg(ps: &[f64]) -> Vec<f64> {
    let m = ps.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        ps[a]
            .partial_cmp(&ps[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut adjusted = vec![0.0; m];
    let mut running_min = 1.0f64;
    for (rank, &i) in order.iter().enumerate().rev() {
        let raw = ps[i] * m as f64 / (rank + 1) as f64;
        running_min = running_min.min(raw).min(1.0);
        adjusted[i] = running_min;
    }
    adjusted
}

/// Mean and unbiased sample variance (variance 0 when n < 2).
fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// A SplitMix64 stream: tiny, fast, and deterministic across platforms
/// (Vigna's reference constants — the same finalizer `brb-sim`'s
/// `RngFactory` uses for seed derivation).
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// Special functions: ln Γ and the regularized incomplete beta.
// ---------------------------------------------------------------------------

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (g = 7, 9 terms —
/// ~15 significant digits over the range the t test exercises).
// The coefficients are the canonical published values; keep them
// verbatim even where they exceed f64 precision.
#[allow(clippy::excessive_precision)]
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma needs a positive argument");
    let x = x - 1.0;
    let mut acc = 0.99999999999980993;
    for (i, &c) in COEF.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta `I_x(a, b)` via the Lentz continued
/// fraction (converges for every `x ∈ [0, 1]` after the symmetry
/// split).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction kernel for [`reg_inc_beta`] (Numerical Recipes'
/// `betacf`, modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const EPS: f64 = 3.0e-14;
    const TINY: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=200 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ] {
            assert!((ln_gamma(n) - f64::ln(fact)).abs() < 1e-12, "ln_gamma({n})");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn t_p_value_has_closed_forms_at_small_df() {
        // df = 1 is Cauchy: two-sided p = 1 − (2/π)·atan(t).
        for t in [0.0f64, 0.5, 1.0, 2.0, 10.0] {
            let want = 1.0 - 2.0 / std::f64::consts::PI * t.atan();
            let got = student_t_two_sided_p(t, 1.0);
            assert!((got - want).abs() < 1e-10, "df=1 t={t}: {got} vs {want}");
        }
        // df = 2: two-sided p = 1 − t/√(t² + 2).
        for t in [0.0f64, 0.5, 1.0, 2.0, 10.0] {
            let want = 1.0 - t / (t * t + 2.0).sqrt();
            let got = student_t_two_sided_p(t, 2.0);
            assert!((got - want).abs() < 1e-10, "df=2 t={t}: {got} vs {want}");
        }
        // A tabulated reference value: t = 2.0, df = 10 → p ≈ 0.07338803.
        assert!((student_t_two_sided_p(2.0, 10.0) - 0.073_388_03).abs() < 1e-7);
        // Symmetric in the sign of t.
        assert_eq!(
            student_t_two_sided_p(-2.5, 7.0),
            student_t_two_sided_p(2.5, 7.0)
        );
    }

    #[test]
    fn welch_on_a_known_case() {
        // Equal variances, equal sizes: collapses to the pooled t test
        // with df = 2n − 2 exactly.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let w = welch_t(&a, &b).unwrap();
        // t = −1 / √(2·(5/3)/4) = −√(6/5).
        assert!((w.t - -(6.0f64 / 5.0).sqrt()).abs() < 1e-12, "{}", w.t);
        assert!((w.df - 6.0).abs() < 1e-9, "{}", w.df);
        assert!(w.p > 0.3 && w.p < 0.4, "{}", w.p);
    }

    #[test]
    fn welch_refuses_tiny_samples_and_handles_degenerate_variance() {
        assert!(welch_t(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t(&[1.0, 2.0], &[]).is_none());
        let same = welch_t(&[3.0, 3.0], &[3.0, 3.0]).unwrap();
        assert_eq!((same.t, same.p), (0.0, 1.0));
        let apart = welch_t(&[3.0, 3.0], &[5.0, 5.0]).unwrap();
        assert_eq!(apart.t, f64::NEG_INFINITY);
        assert_eq!(apart.p, 0.0);
    }

    #[test]
    fn welch_is_antisymmetric() {
        let a = [10.0, 12.0, 9.0, 11.0];
        let b = [13.0, 15.0, 14.0];
        let ab = welch_t(&a, &b).unwrap();
        let ba = welch_t(&b, &a).unwrap();
        assert!((ab.t + ba.t).abs() < 1e-12);
        assert!((ab.p - ba.p).abs() < 1e-12);
        assert!((ab.df - ba.df).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_is_deterministic_and_degenerate_on_constant_diffs() {
        let diffs = [2.5, 2.5, 2.5];
        let ci = paired_bootstrap_ci(&diffs, 1000, 0.95, 42).unwrap();
        assert_eq!((ci.mean, ci.lo, ci.hi), (2.5, 2.5, 2.5));
        assert!(ci.excludes_zero());

        let diffs = [1.0, -0.5, 2.0, 0.25, -1.0];
        let a = paired_bootstrap_ci(&diffs, 4000, 0.95, 7).unwrap();
        let b = paired_bootstrap_ci(&diffs, 4000, 0.95, 7).unwrap();
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        assert!(a.lo <= a.mean && a.mean <= a.hi);
        assert!(!a.excludes_zero(), "mixed-sign diffs straddle zero: {a:?}");
    }

    #[test]
    fn bootstrap_rejects_bad_inputs() {
        assert!(paired_bootstrap_ci(&[], 100, 0.95, 1).is_none());
        assert!(paired_bootstrap_ci(&[1.0], 0, 0.95, 1).is_none());
        assert!(paired_bootstrap_ci(&[1.0], 100, 1.0, 1).is_none());
        assert!(paired_bootstrap_ci(&[1.0], 100, 0.0, 1).is_none());
    }

    #[test]
    fn bootstrap_detects_a_consistent_win() {
        // All diffs the same sign: the 95% CI must exclude zero.
        let diffs = [3.0, 4.5, 2.0, 5.0, 3.5, 4.0];
        let ci = paired_bootstrap_ci(&diffs, 5000, 0.95, 99).unwrap();
        assert!(ci.lo > 0.0, "{ci:?}");
        assert!(ci.excludes_zero());
    }

    #[test]
    fn quantile_ci_brackets_the_sample_quantile() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (lo, hi) = quantile_ci(&sorted, 0.5, 0.95).unwrap();
        assert!(lo <= 50.0 && 50.0 <= hi, "({lo}, {hi})");
        assert!(lo >= 35.0 && hi <= 65.0, "95% CI too loose: ({lo}, {hi})");
        // Extreme quantiles stay in range and keep the point inside.
        let (lo, hi) = quantile_ci(&sorted, 0.99, 0.95).unwrap();
        assert!(lo <= 99.0 && 99.0 <= hi, "({lo}, {hi})");
        assert!(quantile_ci(&[], 0.5, 0.95).is_none());
        assert!(quantile_ci(&sorted, 0.0, 0.95).is_none());
    }

    #[test]
    fn quantile_ci_survives_large_samples() {
        // (1-q)^n underflows past n ≈ 1074 at q = 0.5; log-space pmf
        // must not.
        let sorted: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let (lo, hi) = quantile_ci(&sorted, 0.5, 0.95).unwrap();
        assert!(lo > 24_000.0 && hi < 26_000.0, "({lo}, {hi})");
        assert!(lo <= 25_000.0 && 25_000.0 <= hi);
    }

    #[test]
    fn kendall_tau_endpoints() {
        let up = [1.0, 2.0, 3.0, 4.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&up, &up), Some(1.0));
        assert_eq!(kendall_tau(&up, &down), Some(-1.0));
        assert_eq!(kendall_tau(&up, &[1.0, 1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(kendall_tau(&up, &down[..3]), None);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
    }

    #[test]
    fn benjamini_hochberg_matches_hand_computation() {
        // m = 4, sorted: 0.005, 0.01, 0.03, 0.04. Raw step-up values
        // p·m/rank: 0.005·4/1 = 0.02, 0.01·4/2 = 0.02, 0.03·4/3 = 0.04,
        // 0.04·4/4 = 0.04; the running minimum from the top changes
        // nothing here, so mapped back to input order:
        let ps = [0.01, 0.04, 0.03, 0.005];
        assert_eq!(benjamini_hochberg(&ps), vec![0.02, 0.04, 0.04, 0.02]);

        // The monotonicity repair: sorted 0.01, 0.02, 0.022 gives raw
        // 0.03, 0.03, 0.022 — rank 3's smaller value caps the earlier
        // ranks, so every hypothesis adjusts to 0.022.
        let ps = [0.02, 0.01, 0.022];
        for adj in benjamini_hochberg(&ps) {
            assert!((adj - 0.022).abs() < 1e-12, "{adj}");
        }

        // Clamped to 1 (0.6·2/1 = 1.2 caps), empty stays empty,
        // singleton is identity.
        assert_eq!(benjamini_hochberg(&[0.6, 1.0]), vec![1.0, 1.0]);
        assert!(benjamini_hochberg(&[]).is_empty());
        assert_eq!(benjamini_hochberg(&[0.37]), vec![0.37]);
    }
}
