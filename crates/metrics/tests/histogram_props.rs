//! Property-based tests: the histogram's quantiles must stay within the
//! configured relative-error bound of exact quantiles, for arbitrary data.

use brb_metrics::{exact_percentile, Histogram};
use proptest::prelude::*;

proptest! {
    /// For any data set, histogram quantiles are within the relative error
    /// bound of the exact nearest-rank percentile.
    #[test]
    fn quantiles_within_error_bound(
        values in proptest::collection::vec(1_000u64..10_000_000_000, 1..500),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..10),
    ) {
        let mut h = Histogram::new(1_000, 100_000_000_000, 3);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for &q in &qs {
            let exact = exact_percentile(&sorted, q * 100.0).unwrap() as f64;
            let got = h.value_at_quantile(q) as f64;
            let bound = h.relative_error_bound() * 2.0; // both ends quantized
            let rel = (got - exact).abs() / exact;
            prop_assert!(rel <= bound, "q={q}: exact {exact} got {got} rel {rel}");
        }
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone_and_bracketed(
        values in proptest::collection::vec(1u64..1_000_000, 1..300),
    ) {
        let mut h = Histogram::new(1, 10_000_000, 3);
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.value_at_quantile(q);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!(h.value_at_quantile(0.0) >= h.min() * 999 / 1000);
        prop_assert!(h.value_at_quantile(1.0) <= h.max());
    }

    /// Merging two histograms equals recording the union of their data.
    #[test]
    fn merge_is_union(
        a in proptest::collection::vec(1u64..1_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new(1, 10_000_000, 3);
        let mut hb = Histogram::new(1, 10_000_000, 3);
        let mut hu = Histogram::new(1, 10_000_000, 3);
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.len(), hu.len());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            prop_assert_eq!(ha.value_at_quantile(q), hu.value_at_quantile(q));
        }
    }

    /// Total count is conserved and count_at_or_below is monotone.
    #[test]
    fn counts_consistent(values in proptest::collection::vec(1u64..100_000, 1..200)) {
        let mut h = Histogram::new(1, 1_000_000, 2);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.len(), values.len() as u64);
        let mut prev = 0;
        for threshold in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let c = h.count_at_or_below(threshold);
            prop_assert!(c >= prev);
            prev = c;
        }
        prop_assert_eq!(h.count_at_or_below(1_000_000), values.len() as u64);
    }
}
