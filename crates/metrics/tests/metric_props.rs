//! Property tests for the metrics layer beyond the histogram-accuracy
//! suite (`histogram_props.rs`): percentile ordering, merge algebra and
//! reservoir determinism. These are the invariants every latency number
//! in a report rests on — the thinnest-covered crate in the workspace
//! until this file.

use brb_metrics::{Histogram, Percentiles, Reservoir};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new(1_000, 100_000_000_000, 3);
    for &v in values {
        h.record(v);
    }
    h
}

/// Quantile fingerprint used to compare histograms observationally.
fn quantiles(h: &Histogram) -> Vec<u64> {
    (0..=20)
        .map(|i| h.value_at_quantile(i as f64 / 20.0))
        .collect()
}

proptest! {
    /// The paper's reporting triple is ordered for arbitrary samples:
    /// p50 ≤ p95 ≤ p99 ≤ max, and the mean sits inside [min, max] —
    /// through both the exact path and the histogram path.
    #[test]
    fn percentile_triple_is_monotone(
        values in proptest::collection::vec(0.001f64..1e7, 1..400),
    ) {
        let p = Percentiles::from_samples(&values).expect("non-empty");
        prop_assert!(p.p50 <= p.p95, "p50 {} > p95 {}", p.p50, p.p95);
        prop_assert!(p.p95 <= p.p99, "p95 {} > p99 {}", p.p95, p.p99);
        prop_assert!(p.p99 <= p.max, "p99 {} > max {}", p.p99, p.max);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(p.mean >= lo && p.mean <= p.max);
        prop_assert_eq!(p.count, values.len() as u64);
    }

    /// The same ordering holds through the histogram's bounded-error
    /// quantiles and the ms conversion.
    #[test]
    fn histogram_percentile_triple_is_monotone(
        values in proptest::collection::vec(1_000u64..50_000_000_000, 1..400),
    ) {
        let h = hist_of(&values);
        let p = Percentiles::from_histogram_ns(&h).expect("non-empty");
        prop_assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max);
        prop_assert_eq!(p.count, values.len() as u64);
    }

    /// Histogram merge is commutative: a ⊕ b ≡ b ⊕ a observationally
    /// (quantile sweep, count, min/max, saturation).
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(1u64..200_000_000_000, 0..200),
        b in proptest::collection::vec(1u64..200_000_000_000, 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.saturated_count(), ba.saturated_count());
        prop_assert_eq!(quantiles(&ab), quantiles(&ba));
    }

    /// Histogram merge is associative: (a ⊕ b) ⊕ c ≡ a ⊕ (b ⊕ c) — the
    /// property that lets a sweep reduce per-seed histograms in any
    /// grouping (e.g. a parallel tree reduction) without changing a
    /// single reported number.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(1u64..200_000_000_000, 0..150),
        b in proptest::collection::vec(1u64..200_000_000_000, 0..150),
        c in proptest::collection::vec(1u64..200_000_000_000, 0..150),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.len(), right.len());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert_eq!(left.saturated_count(), right.saturated_count());
        prop_assert_eq!(quantiles(&left), quantiles(&right));
    }

    /// Merging equals recording the union stream in one histogram.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(1u64..200_000_000_000, 0..200),
        b in proptest::collection::vec(1u64..200_000_000_000, 0..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = hist_of(&union);
        prop_assert_eq!(merged.len(), direct.len());
        prop_assert_eq!(quantiles(&merged), quantiles(&direct));
    }

    /// Reservoir sampling is deterministic under a fixed seed: the same
    /// stream and the same coin sequence reproduce the identical sample,
    /// bit for bit — the property the engine's labelled RNG streams
    /// rely on for common-random-numbers runs.
    #[test]
    fn reservoir_is_deterministic_under_fixed_seeds(
        seed in 0u64..u64::MAX,
        n in 1usize..2_000,
        capacity in 1usize..128,
    ) {
        let fill = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(capacity);
            for i in 0..n {
                r.offer(i as f64, rng.random());
            }
            r
        };
        let a = fill(seed);
        let b = fill(seed);
        prop_assert_eq!(a.samples(), b.samples());
        prop_assert_eq!(a.seen(), b.seen());
        // A different seed is allowed to differ, but must keep the
        // structural invariants.
        let c = fill(seed ^ 0x9e37_79b9_7f4a_7c15);
        prop_assert_eq!(c.seen(), n as u64);
        prop_assert_eq!(c.samples().len(), n.min(capacity));
        for &s in c.samples() {
            prop_assert!(s >= 0.0 && s < n as f64);
        }
    }

    /// Reservoir quantiles are quantiles *of the held sample*: bracketed
    /// by the sample's extremes and monotone in q.
    #[test]
    fn reservoir_quantiles_are_sample_quantiles(
        seed in 0u64..u64::MAX,
        values in proptest::collection::vec(-1e6f64..1e6, 1..300),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Reservoir::new(64);
        for &v in &values {
            r.offer(v, rng.random());
        }
        let lo = r.samples().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = r.samples().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = r.quantile(i as f64 / 10.0).expect("non-empty");
            prop_assert!(q >= lo && q <= hi);
            prop_assert!(q >= prev, "quantiles not monotone");
            prev = q;
        }
    }
}
