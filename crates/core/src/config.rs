//! Experiment configuration: cluster, workload, strategy.
//!
//! [`ClusterConfig::paper_default`] and [`WorkloadConfig::paper_default`]
//! encode every constant §2.2 reports: 18 clients, 9 servers at 4 cores,
//! 3 500 req/s per core, 50 µs one-way latency, ~500 k tasks at mean
//! fan-out 8.6, ETC-Pareto value sizes, Poisson arrivals at 70% of
//! capacity. Complete experiment descriptions are assembled by the
//! `brb-lab` scenario layer (registry presets / `ScenarioBuilder`), the
//! sole entry point since the deprecated `figure2*` constructors were
//! removed.

use brb_net::{LatencyModel, PlanMode};
use brb_sched::{CoDelConfig, CreditsConfig, PolicyKind, QueueBound};
use brb_store::cost::ForecastQuality;
use brb_store::service::{ServiceModel, ServiceNoise};
use brb_workload::taskgen::SizeModel;
use brb_workload::{task_rate_for_load, FanoutDist};
use serde::{Deserialize, Serialize};

/// The backend cluster being simulated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of application servers (the paper's "clients").
    pub num_clients: u32,
    /// Number of storage servers.
    pub num_servers: u32,
    /// Worker cores per storage server ("concurrency level").
    pub cores_per_server: u32,
    /// Replication factor R.
    pub replication: u32,
    /// Partitions on the ring (defaults to `num_servers`).
    pub num_partitions: u32,
    /// Mean service rate per core, requests/second.
    pub service_rate_per_core: f64,
    /// Fraction of mean service cost that is fixed overhead (vs.
    /// size-proportional); see `brb-store::service`.
    pub service_base_fraction: f64,
    /// Server-side service-time noise.
    pub service_noise: ServiceNoise,
    /// One-way network latency model.
    pub latency: LatencyModel,
    /// How well clients forecast service costs from value sizes.
    pub forecast: ForecastQuality,
    /// Per-server speed factors (1.0 = nominal; 0.5 = half speed — the
    /// degraded-node scenario C3 was designed around). Empty means all
    /// servers run at nominal speed. Clients and the credits controller
    /// are *not* told about these factors: adapting to them is the
    /// strategies' job.
    pub server_speed_factors: Vec<f64>,
}

/// `Default` is the paper's cluster, so spec files can omit `[cluster]`
/// entirely and still describe a valid scenario.
impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl ClusterConfig {
    /// The paper's cluster (§2.2).
    pub fn paper_default() -> Self {
        ClusterConfig {
            num_clients: 18,
            num_servers: 9,
            cores_per_server: 4,
            replication: 3,
            num_partitions: 9,
            service_rate_per_core: 3_500.0,
            // Service cost is dominated by value size (the paper forecasts
            // cost from the requested value's size); 20% fixed overhead.
            service_base_fraction: 0.2,
            service_noise: ServiceNoise::LogNormal { sigma: 0.3 },
            latency: LatencyModel::paper_constant(),
            forecast: ForecastQuality::Exact,
            server_speed_factors: Vec::new(),
        }
    }

    /// The speed factor of one server (1.0 when unspecified).
    pub fn speed_of(&self, server: usize) -> f64 {
        self.server_speed_factors
            .get(server)
            .copied()
            .unwrap_or(1.0)
    }

    /// Aggregate service capacity in requests/second.
    pub fn capacity_rps(&self) -> f64 {
        self.num_servers as f64 * self.cores_per_server as f64 * self.service_rate_per_core
    }

    /// Per-server capacity in requests/second.
    pub fn server_capacity_rps(&self) -> f64 {
        self.cores_per_server as f64 * self.service_rate_per_core
    }

    /// Builds the calibrated service model for a workload whose values
    /// average `mean_value_bytes`.
    pub fn service_model(&self, mean_value_bytes: f64) -> ServiceModel {
        ServiceModel::calibrated_size_linear(
            1e9 / self.service_rate_per_core,
            mean_value_bytes,
            self.service_base_fraction,
            self.service_noise,
        )
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_clients == 0 || self.num_servers == 0 || self.cores_per_server == 0 {
            return Err("cluster dimensions must be positive".into());
        }
        if self.num_partitions == 0 {
            return Err("need at least one partition".into());
        }
        if self.replication == 0 || self.replication > self.num_servers {
            return Err(format!(
                "replication {} invalid for {} servers",
                self.replication, self.num_servers
            ));
        }
        if self.service_rate_per_core <= 0.0 {
            return Err("service rate must be positive".into());
        }
        if self.server_speed_factors.len() > self.num_servers as usize {
            return Err("more speed factors than servers".into());
        }
        if self
            .server_speed_factors
            .iter()
            .any(|&f| !f.is_finite() || f <= 0.0)
        {
            return Err("speed factors must be positive and finite".into());
        }
        self.latency.validate()
    }
}

/// How tasks are generated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Independent sampling: fan-out distribution × Zipf keys.
    Synthetic {
        /// Fan-out distribution.
        fanout: FanoutDist,
        /// Number of keys in the universe.
        num_keys: u64,
        /// Zipf exponent for key popularity (0 = uniform).
        zipf_exponent: f64,
    },
    /// Playlist-structured SoundCloud substitute (correlated key sets).
    Playlist {
        /// Number of tracks in the catalog.
        num_tracks: u64,
        /// Number of playlists.
        num_playlists: u64,
        /// Zipf exponent for playlist popularity.
        playlist_zipf: f64,
    },
}

/// The offered workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of tasks per run (paper: ~500 000).
    pub num_tasks: usize,
    /// Offered load as a fraction of aggregate capacity (paper: 0.7).
    pub load: f64,
    /// Task structure.
    pub kind: WorkloadKind,
    /// Value-size model (paper: Facebook ETC Pareto).
    pub sizes: SizeModel,
}

/// `Default` is the paper's workload, so spec files can omit
/// `[workload]` entirely and still describe a valid scenario.
impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl WorkloadConfig {
    /// The paper's workload at full scale (~500 k tasks). The default kind
    /// is the playlist-structured SoundCloud substitute: tasks fetch all
    /// tracks of a Zipf-popular playlist, reproducing the correlated key
    /// sets of the production trace.
    pub fn paper_default() -> Self {
        WorkloadConfig {
            num_tasks: 500_000,
            load: 0.7,
            kind: WorkloadKind::Playlist {
                num_tracks: 1_000_000,
                num_playlists: 100_000,
                playlist_zipf: 0.8,
            },
            sizes: SizeModel::facebook_etc(),
        }
    }

    /// The independent-sampling variant (no cross-task key correlation);
    /// used by ablations to isolate the effect of correlated playlists.
    pub fn paper_synthetic() -> Self {
        WorkloadConfig {
            kind: WorkloadKind::Synthetic {
                fanout: FanoutDist::soundcloud_like(),
                num_keys: 1_000_000,
                zipf_exponent: 0.9,
            },
            ..Self::paper_default()
        }
    }

    /// Mean fan-out implied by the workload kind. For playlist workloads
    /// this is the length distribution's mean (popularity-independent).
    pub fn mean_fanout(&self) -> f64 {
        match &self.kind {
            WorkloadKind::Synthetic { fanout, .. } => fanout.mean(),
            WorkloadKind::Playlist { .. } => FanoutDist::soundcloud_like().mean(),
        }
    }

    /// Task arrival rate (tasks/s) against a cluster.
    pub fn task_rate(&self, cluster: &ClusterConfig) -> f64 {
        task_rate_for_load(self.load, cluster.capacity_rps(), self.mean_fanout())
    }

    /// Sets `num_tasks` and shrinks the key/catalog universe to match, so
    /// scaled-down runs keep a realistic key-reuse rate. The mapping is a
    /// function of `num_tasks` alone (not of the current catalog), so
    /// re-applying it is idempotent — every path that scales a scenario
    /// (the `brb-lab` `scale_catalog` lowering rule, core's own test
    /// helper) must produce identical configs, pinned by the
    /// `figure2-small` lowering golden.
    pub fn scale_to_tasks(&mut self, num_tasks: usize) {
        self.num_tasks = num_tasks;
        match &mut self.kind {
            WorkloadKind::Synthetic { num_keys, .. } => {
                *num_keys = (num_tasks as u64 * 20).max(1_000)
            }
            WorkloadKind::Playlist {
                num_tracks,
                num_playlists,
                ..
            } => {
                *num_tracks = (num_tasks as u64 * 10).max(1_000);
                *num_playlists = (num_tasks as u64).max(100);
            }
        }
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_tasks == 0 {
            return Err("need at least one task".into());
        }
        if !(self.load > 0.0 && self.load < 1.5) {
            return Err(format!("load {} out of sane range", self.load));
        }
        match &self.kind {
            WorkloadKind::Synthetic {
                fanout,
                num_keys,
                zipf_exponent,
            } => {
                fanout.validate()?;
                if *num_keys == 0 {
                    return Err("empty key space".into());
                }
                if *zipf_exponent < 0.0 {
                    return Err("negative zipf exponent".into());
                }
            }
            WorkloadKind::Playlist {
                num_tracks,
                num_playlists,
                ..
            } => {
                if *num_tracks == 0 || *num_playlists == 0 {
                    return Err("empty playlist catalog".into());
                }
            }
        }
        Ok(())
    }
}

/// Replica selection strategies available to direct dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Uniform random replica.
    Random,
    /// Round-robin across replicas.
    RoundRobin,
    /// Fewest client-local outstanding requests.
    LeastOutstanding,
    /// True-shortest-queue oracle (unrealizable bound).
    Oracle,
    /// The C3 baseline (scoring + rate control).
    C3,
}

impl SelectorKind {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::RoundRobin => "round-robin",
            SelectorKind::LeastOutstanding => "least-outstanding",
            SelectorKind::Oracle => "oracle",
            SelectorKind::C3 => "c3",
        }
    }
}

/// A complete scheduling strategy — one bar group of Figure 2, or an
/// ablation combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Strategy {
    /// Direct dispatch: per-request replica selection, per-server queues.
    Direct {
        /// Replica selection.
        selector: SelectorKind,
        /// Priority assignment (Fifo = task-oblivious).
        policy: PolicyKind,
        /// `true` → servers use priority queues; `false` → FIFO.
        priority_queues: bool,
    },
    /// BRB's practical realization: credits controller + per-server
    /// priority queues.
    Credits {
        /// Priority assignment (EqualMax / UnifIncr in the paper).
        policy: PolicyKind,
        /// Controller tuning (spec files may omit it for the defaults).
        #[serde(default)]
        credits: CreditsConfig,
    },
    /// BRB's ideal realization: single global priority queue with
    /// work-pulling servers.
    Model {
        /// Priority assignment.
        policy: PolicyKind,
    },
    /// The "tail at scale" duplication baseline the paper's introduction
    /// cites as complementary: task-oblivious direct dispatch, but any
    /// request still pending after `delay_us` is re-issued to another
    /// replica; the first response wins (the straggler's work is wasted).
    Hedged {
        /// Replica selection for both the original and the hedge.
        selector: SelectorKind,
        /// Hedge trigger delay in microseconds (≈ a high percentile of
        /// normal response time; Dean & Barroso suggest p95).
        delay_us: u64,
    },
}

impl Strategy {
    /// The C3 baseline exactly as the paper runs it.
    pub fn c3() -> Self {
        Strategy::Direct {
            selector: SelectorKind::C3,
            policy: PolicyKind::Fifo,
            priority_queues: false,
        }
    }

    /// `EqualMax - Credits` (Figure 2).
    pub fn equal_max_credits() -> Self {
        Strategy::Credits {
            policy: PolicyKind::EqualMax,
            credits: CreditsConfig::default(),
        }
    }

    /// `EqualMax - Model` (Figure 2).
    pub fn equal_max_model() -> Self {
        Strategy::Model {
            policy: PolicyKind::EqualMax,
        }
    }

    /// `UniformIncr - Credits` (Figure 2).
    pub fn unif_incr_credits() -> Self {
        Strategy::Credits {
            policy: PolicyKind::UnifIncr,
            credits: CreditsConfig::default(),
        }
    }

    /// `UniformIncr - Model` (Figure 2).
    pub fn unif_incr_model() -> Self {
        Strategy::Model {
            policy: PolicyKind::UnifIncr,
        }
    }

    /// The five strategies of Figure 2, in the paper's legend order.
    pub fn figure2_set() -> Vec<Strategy> {
        vec![
            Strategy::c3(),
            Strategy::equal_max_credits(),
            Strategy::equal_max_model(),
            Strategy::unif_incr_credits(),
            Strategy::unif_incr_model(),
        ]
    }

    /// The "tail at scale" hedging baseline with least-outstanding
    /// selection and a 5 ms trigger (≈ p99 of healthy response times
    /// under the paper's configuration). Triggers near the median are
    /// unstable: every hedge adds load, which inflates latencies, which
    /// fires more hedges — we reproduce that runaway in the ablation.
    pub fn hedged_default() -> Self {
        Strategy::Hedged {
            selector: SelectorKind::LeastOutstanding,
            delay_us: 5_000,
        }
    }

    /// The priority policy this strategy schedules with.
    pub fn policy(&self) -> PolicyKind {
        match self {
            Strategy::Direct { policy, .. } => *policy,
            Strategy::Credits { policy, .. } => *policy,
            Strategy::Model { policy } => *policy,
            Strategy::Hedged { .. } => PolicyKind::Fifo,
        }
    }

    /// Stable display name, matching the paper's legend where applicable.
    pub fn name(&self) -> String {
        match self {
            Strategy::Direct {
                selector,
                policy,
                priority_queues,
            } => {
                if *selector == SelectorKind::C3 && *policy == PolicyKind::Fifo {
                    "C3".to_string()
                } else {
                    format!(
                        "{}+{}{}",
                        selector.name(),
                        policy_label(*policy),
                        if *priority_queues { "-pq" } else { "" }
                    )
                }
            }
            Strategy::Credits { policy, .. } => format!("{} - Credits", policy_label(*policy)),
            Strategy::Model { policy } => format!("{} - Model", policy_label(*policy)),
            Strategy::Hedged { selector, delay_us } => {
                format!("hedged({}, {}us)", selector.name(), delay_us)
            }
        }
    }
}

fn policy_label(p: PolicyKind) -> &'static str {
    match p {
        PolicyKind::Fifo => "FIFO",
        PolicyKind::EqualMax => "EqualMax",
        PolicyKind::UnifIncr => "UniformIncr",
        PolicyKind::UnifIncrSubtask => "UniformIncrSub",
        PolicyKind::Sjf => "SJF",
        PolicyKind::Edf => "EDF",
    }
}

/// Server-queue bound and AQM knobs (the overload lane). All queues are
/// unbounded when absent — the pre-overload behavior every golden hash
/// pins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Per-queue capacity: arrivals finding this many queued are
    /// tail-dropped and NACKed back to the client.
    pub capacity: usize,
    /// Admission-control watermark: arrivals finding at least this many
    /// queued are shed before the queue fills (`None` disables
    /// shedding; must not exceed `capacity`).
    #[serde(default)]
    pub shed_above: Option<usize>,
    /// CoDel-style AQM at dequeue (`None` disables it): head-of-line
    /// requests whose sojourn exceeded the target for a sustained
    /// interval are dropped at an inverse-sqrt-tightening cadence.
    #[serde(default)]
    pub codel: Option<CoDelConfig>,
    /// Split the drop/shed counters by priority class (log₂ buckets of
    /// the assigned priority key) and report them as the additive
    /// `priority_classes` run field — makes per-class starvation under
    /// shedding observable (e.g. EqualMax favoring small tasks). Off by
    /// default: the split is extra report surface, and existing
    /// serializations must stay byte-identical.
    #[serde(default)]
    pub priority_stats: bool,
}

impl QueueConfig {
    /// The tail-drop/shed bound this config describes.
    pub fn bound(&self) -> QueueBound {
        QueueBound {
            capacity: self.capacity,
            shed_above: self.shed_above,
        }
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.bound().validate()?;
        if let Some(codel) = &self.codel {
            codel.validate()?;
        }
        Ok(())
    }
}

/// Client-side request timeout and retry knobs (the overload lane).
/// Clients never time out when absent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeoutConfig {
    /// Per-attempt timeout in microseconds, measured dispatch → response.
    pub timeout_us: u64,
    /// Retries allowed after the first attempt (0 = a single timeout is
    /// terminal).
    pub max_retries: u32,
    /// First-retry backoff in microseconds; doubles per retry (capped
    /// exponential backoff). 0 retries immediately — the retry-storm
    /// configuration.
    #[serde(default)]
    pub backoff_base_us: u64,
    /// Cap on the exponential backoff in microseconds.
    #[serde(default)]
    pub backoff_cap_us: u64,
    /// Retry budget: a client stops retrying once its retries reach this
    /// percentage of its dispatches (`None` = unbudgeted).
    #[serde(default)]
    pub retry_budget_percent: Option<u32>,
}

impl TimeoutConfig {
    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeout_us == 0 {
            return Err("timeout must be positive".into());
        }
        if self.max_retries > 16 {
            return Err(format!("max_retries {} above cap 16", self.max_retries));
        }
        if self.backoff_cap_us < self.backoff_base_us {
            return Err(format!(
                "backoff cap {}us below base {}us",
                self.backoff_cap_us, self.backoff_base_us
            ));
        }
        if let Some(p) = self.retry_budget_percent {
            if p == 0 || p > 100 {
                return Err(format!("retry budget {p}% out of (0, 100]"));
            }
        }
        Ok(())
    }
}

/// The overload lane's knobs: bounded/AQM-managed server queues and
/// client-side timeouts with retries. The default (both `None`) is the
/// pre-overload engine exactly — unbounded queues, no timeouts — and
/// every pre-existing golden hash runs with that default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Server-queue bound + AQM (`None` = unbounded).
    #[serde(default)]
    pub queue: Option<QueueConfig>,
    /// Client timeouts + retries (`None` = never time out).
    #[serde(default)]
    pub timeout: Option<TimeoutConfig>,
}

impl OverloadConfig {
    /// Whether every knob is off (legacy behavior).
    pub fn is_off(&self) -> bool {
        self.queue.is_none() && self.timeout.is_none()
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(q) = &self.queue {
            q.validate()?;
        }
        if let Some(t) = &self.timeout {
            t.validate()?;
        }
        Ok(())
    }
}

/// Everything one seeded run needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The cluster.
    pub cluster: ClusterConfig,
    /// The offered workload.
    pub workload: WorkloadConfig,
    /// The strategy under test.
    pub strategy: Strategy,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Fraction of the run (by arrival time) treated as warm-up and
    /// excluded from latency statistics.
    pub warmup_fraction: f64,
    /// Server queue length that triggers a congestion signal (credits).
    pub congestion_queue_threshold: usize,
    /// When set, the engine samples a telemetry snapshot (per-server
    /// queue depths, busy cores, client backlogs) every this many
    /// nanoseconds of virtual time. `None` (the default) costs nothing.
    #[serde(default)]
    pub telemetry_interval_ns: Option<u64>,
    /// How the engine computes per-message network delays: `Compiled`
    /// (the default) timestamps through the precompiled
    /// [`brb_net::FabricPlan`]; `PerMessage` forces the historical
    /// `Fabric::delay`-per-message draw — the reference slow path the
    /// differential tests and `kernel_bench` compare against. Results
    /// are byte-identical either way (test-enforced).
    #[serde(default)]
    pub net: PlanMode,
    /// Overload-lane knobs (bounded queues, timeouts + retries). The
    /// default is everything off — the legacy engine, bit for bit.
    #[serde(default)]
    pub overload: OverloadConfig,
}

/// The paper's harness constants around one (strategy, seed, task-count)
/// cell — what the removed `figure2_small` shim built. Kept crate-local
/// for core's own tests, which cannot depend on `brb-lab` (every
/// external caller goes through the registry presets, test-enforced to
/// lower to this exact configuration).
#[cfg(test)]
pub(crate) fn paper_small_config(
    strategy: Strategy,
    seed: u64,
    num_tasks: usize,
) -> ExperimentConfig {
    let mut workload = WorkloadConfig::paper_default();
    workload.scale_to_tasks(num_tasks);
    ExperimentConfig {
        cluster: ClusterConfig::paper_default(),
        workload,
        strategy,
        seed,
        warmup_fraction: 0.05,
        congestion_queue_threshold: 96,
        telemetry_interval_ns: None,
        net: PlanMode::Compiled,
        overload: OverloadConfig::default(),
    }
}

impl ExperimentConfig {
    /// Validates the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        self.workload.validate()?;
        if !(0.0..0.9).contains(&self.warmup_fraction) {
            return Err(format!(
                "warmup fraction {} out of range",
                self.warmup_fraction
            ));
        }
        if self.congestion_queue_threshold == 0 {
            return Err("congestion threshold must be positive".into());
        }
        if let Strategy::Credits { credits, .. } = &self.strategy {
            credits.validate()?;
        }
        self.overload.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_pinned() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.num_clients, 18);
        assert_eq!(c.num_servers, 9);
        assert_eq!(c.cores_per_server, 4);
        assert_eq!(c.replication, 3);
        assert_eq!(c.service_rate_per_core, 3_500.0);
        assert_eq!(c.capacity_rps(), 126_000.0);
        assert_eq!(c.server_capacity_rps(), 14_000.0);
        assert_eq!(c.latency, LatencyModel::Constant { delay_ns: 50_000 });

        let w = WorkloadConfig::paper_default();
        assert_eq!(w.num_tasks, 500_000);
        assert_eq!(w.load, 0.7);
        assert!((w.mean_fanout() - 8.6).abs() < 0.2);
        // ≈10,256 tasks/s at 70% of capacity.
        let rate = w.task_rate(&c);
        assert!((10_000.0..10_500.0).contains(&rate), "{rate}");
    }

    #[test]
    fn figure2_set_matches_legend() {
        let names: Vec<String> = Strategy::figure2_set().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "C3",
                "EqualMax - Credits",
                "EqualMax - Model",
                "UniformIncr - Credits",
                "UniformIncr - Model"
            ]
        );
    }

    #[test]
    fn strategy_policies() {
        assert_eq!(Strategy::c3().policy(), PolicyKind::Fifo);
        assert_eq!(Strategy::equal_max_model().policy(), PolicyKind::EqualMax);
        assert_eq!(Strategy::unif_incr_credits().policy(), PolicyKind::UnifIncr);
    }

    #[test]
    fn paper_scale_config_validates() {
        for s in Strategy::figure2_set() {
            let mut cfg = paper_small_config(s, 1, 1_000);
            cfg.workload = WorkloadConfig::paper_default();
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn small_config_shrinks_keyspace() {
        let cfg = paper_small_config(Strategy::c3(), 1, 100);
        assert_eq!(cfg.workload.num_tasks, 100);
        match cfg.workload.kind {
            WorkloadKind::Playlist {
                num_tracks,
                num_playlists,
                ..
            } => {
                assert_eq!(num_tracks, 1_000);
                assert_eq!(num_playlists, 100);
            }
            _ => panic!("unexpected kind"),
        }
        assert!(cfg.validate().is_ok());

        let synth = WorkloadConfig::paper_synthetic();
        match synth.kind {
            WorkloadKind::Synthetic { num_keys, .. } => assert_eq!(num_keys, 1_000_000),
            _ => panic!("unexpected kind"),
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = paper_small_config(Strategy::c3(), 1, 1_000);
        cfg.cluster.replication = 99;
        assert!(cfg.validate().is_err());

        let mut cfg = paper_small_config(Strategy::c3(), 1, 1_000);
        cfg.workload.load = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = paper_small_config(Strategy::c3(), 1, 1_000);
        cfg.warmup_fraction = 0.95;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn configs_serialize_round_trip() {
        let cfg = paper_small_config(Strategy::equal_max_credits(), 3, 500);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 3);
        assert_eq!(back.strategy.name(), "EqualMax - Credits");
        assert_eq!(back.net, PlanMode::Compiled);
    }

    #[test]
    fn net_mode_defaults_to_compiled_on_old_configs() {
        // Configs serialized before the `net` field existed (and spec
        // files that omit it) must deserialize to the fast path.
        let mut cfg = paper_small_config(Strategy::c3(), 1, 100);
        cfg.net = PlanMode::PerMessage;
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json.replace(",\"net\":\"PerMessage\"", "");
        assert_ne!(json, stripped, "net field missing from serialization");
        let back: ExperimentConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.net, PlanMode::Compiled);
    }

    #[test]
    fn overload_defaults_to_off_on_old_configs() {
        // Configs serialized before the overload lane existed (and spec
        // files that omit it) must deserialize with every knob off.
        let cfg = paper_small_config(Strategy::c3(), 1, 100);
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("\"overload\""));
        let stripped = json.replace(",\"overload\":{\"queue\":null,\"timeout\":null}", "");
        assert_ne!(json, stripped, "overload field missing from serialization");
        let back: ExperimentConfig = serde_json::from_str(&stripped).unwrap();
        assert!(back.overload.is_off());
    }

    #[test]
    fn overload_validation_rejects_nonsense() {
        let base = paper_small_config(Strategy::c3(), 1, 100);

        let mut cfg = base.clone();
        cfg.overload.queue = Some(QueueConfig {
            capacity: 0,
            shed_above: None,
            codel: None,
            priority_stats: false,
        });
        assert!(cfg.validate().is_err(), "zero capacity");

        let mut cfg = base.clone();
        cfg.overload.queue = Some(QueueConfig {
            capacity: 8,
            shed_above: Some(9),
            codel: None,
            priority_stats: false,
        });
        assert!(cfg.validate().is_err(), "watermark above capacity");

        let mut cfg = base.clone();
        cfg.overload.queue = Some(QueueConfig {
            capacity: 8,
            shed_above: None,
            codel: Some(CoDelConfig {
                target_ns: 0,
                interval_ns: 1,
            }),
            priority_stats: false,
        });
        assert!(cfg.validate().is_err(), "zero CoDel target");

        let mut cfg = base.clone();
        cfg.overload.timeout = Some(TimeoutConfig {
            timeout_us: 0,
            max_retries: 1,
            backoff_base_us: 0,
            backoff_cap_us: 0,
            retry_budget_percent: None,
        });
        assert!(cfg.validate().is_err(), "zero timeout");

        let mut cfg = base.clone();
        cfg.overload.timeout = Some(TimeoutConfig {
            timeout_us: 10_000,
            max_retries: 2,
            backoff_base_us: 1_000,
            backoff_cap_us: 100,
            retry_budget_percent: None,
        });
        assert!(cfg.validate().is_err(), "cap below base");

        let mut cfg = base;
        cfg.overload.queue = Some(QueueConfig {
            capacity: 64,
            shed_above: Some(48),
            codel: Some(CoDelConfig::paper_default()),
            priority_stats: false,
        });
        cfg.overload.timeout = Some(TimeoutConfig {
            timeout_us: 10_000,
            max_retries: 2,
            backoff_base_us: 1_000,
            backoff_cap_us: 8_000,
            retry_budget_percent: Some(10),
        });
        assert!(cfg.validate().is_ok(), "sane overload config rejected");
        assert!(!cfg.overload.is_off());
    }

    #[test]
    fn overload_config_round_trips() {
        let mut cfg = paper_small_config(Strategy::c3(), 1, 100);
        cfg.overload.queue = Some(QueueConfig {
            capacity: 64,
            shed_above: Some(48),
            codel: Some(CoDelConfig::paper_default()),
            priority_stats: false,
        });
        cfg.overload.timeout = Some(TimeoutConfig {
            timeout_us: 10_000,
            max_retries: 2,
            backoff_base_us: 1_000,
            backoff_cap_us: 8_000,
            retry_budget_percent: Some(10),
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.overload, cfg.overload);
    }

    #[test]
    fn ablation_strategy_names() {
        let s = Strategy::Direct {
            selector: SelectorKind::LeastOutstanding,
            policy: PolicyKind::EqualMax,
            priority_queues: true,
        };
        assert_eq!(s.name(), "least-outstanding+EqualMax-pq");
    }
}
