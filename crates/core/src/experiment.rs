//! Experiment runners: single seeded runs and the paper's multi-seed
//! averaged comparisons.
//!
//! [`run_strategies_multi_seed`] fans its (strategy × seed) cells out
//! across OS threads — each cell is an independent deterministic
//! simulation, so the sweep scales with cores while producing results
//! byte-identical to the sequential path (guarded by a test). Worker
//! count comes from [`worker_count`] (`BRB_THREADS` overrides the
//! detected parallelism).

use crate::config::{ExperimentConfig, Strategy};
use crate::engine::{Counters, EngineWorld};
use brb_metrics::{Percentiles, SeedSummary};
use brb_sim::Simulation;
use brb_workload::taskgen::TaskSpec;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Overload-lane outcomes of one run, present only when any overload
/// knob is on. `dropped` / `timed_out` / `shed` count **tasks** — the
/// terminal outcomes of the conservation invariant
/// `completed + dropped + timed_out + shed == issued` — while `retries`
/// counts request attempts re-issued after NACKs or timeouts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadStats {
    /// Completed tasks per virtual second — the metric that stays
    /// meaningful past the saturation knee, where latency percentiles
    /// only measure the queue bound.
    pub goodput: f64,
    /// Tasks terminally failed by a queue drop (tail-drop or AQM).
    pub dropped: u64,
    /// Tasks terminally failed by timeout (incl. retries-exhausted).
    pub timed_out: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Tasks terminally failed by admission-control shedding.
    pub shed: u64,
}

/// One priority class's share of the terminal drop/shed counts,
/// reported only when `QueueConfig::priority_stats` is on. The class is
/// the bit length of the failing request's priority key: class 0 is
/// priority 0, class `k` covers keys in `[2^(k-1), 2^k)` — coarse
/// log₂ buckets so the report stays bounded under arbitrary key spreads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityClassStats {
    /// log₂ bucket of the priority key (bit length).
    pub class: u8,
    /// Tasks of this class terminally failed by a queue drop.
    pub dropped: u64,
    /// Tasks of this class terminally failed by admission shedding.
    pub shed: u64,
}

/// The result of one seeded run of one strategy.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Strategy display name.
    pub strategy: String,
    /// Master seed.
    pub seed: u64,
    /// Task latency percentiles in **milliseconds** (the paper's unit).
    pub task_latency_ms: Percentiles,
    /// Per-request latency percentiles in milliseconds.
    pub request_latency_ms: Percentiles,
    /// Client-side hold time percentiles in milliseconds.
    pub hold_time_ms: Option<Percentiles>,
    /// Mean server utilization over the run.
    pub utilization: f64,
    /// Tasks completed.
    pub completed_tasks: usize,
    /// Tasks included in latency statistics (post-warm-up).
    pub measured_tasks: u64,
    /// Virtual duration of the run in seconds.
    pub sim_secs: f64,
    /// Events executed.
    pub events: u64,
    /// Requests dispatched.
    pub dispatched: u64,
    /// Congestion signals (credits realization only).
    pub congestion_signals: u64,
    /// Demand reports delivered (credits realization only).
    pub demand_reports: u64,
    /// Hedge duplicates issued (hedged strategy only).
    pub hedges_issued: u64,
    /// Responses that arrived after their request had completed (wasted
    /// work under hedging).
    pub duplicate_responses: u64,
    /// Overload-lane outcomes; `None` when every knob is off.
    pub overload: Option<OverloadStats>,
    /// Per-priority-class drop/shed split, sorted by class; `None`
    /// unless `QueueConfig::priority_stats` requested it.
    pub priority_classes: Option<Vec<PriorityClassStats>>,
}

// Report-v1 stability: the key order here *is* the schema (pinned by
// the lab golden tests), and the overload keys exist only when the lane
// is on — a knobs-off run serializes byte-identically to the
// pre-overload schema, which is what keeps every historical
// `run_hashes.json` entry valid. Hand-written because the derive
// stand-in cannot conditionally omit fields.
impl Serialize for RunResult {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("strategy".into(), self.strategy.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("task_latency_ms".into(), self.task_latency_ms.to_value()),
            (
                "request_latency_ms".into(),
                self.request_latency_ms.to_value(),
            ),
            ("hold_time_ms".into(), self.hold_time_ms.to_value()),
            ("utilization".into(), self.utilization.to_value()),
            ("completed_tasks".into(), self.completed_tasks.to_value()),
            ("measured_tasks".into(), self.measured_tasks.to_value()),
            ("sim_secs".into(), self.sim_secs.to_value()),
            ("events".into(), self.events.to_value()),
            ("dispatched".into(), self.dispatched.to_value()),
            (
                "congestion_signals".into(),
                self.congestion_signals.to_value(),
            ),
            ("demand_reports".into(), self.demand_reports.to_value()),
            ("hedges_issued".into(), self.hedges_issued.to_value()),
            (
                "duplicate_responses".into(),
                self.duplicate_responses.to_value(),
            ),
        ];
        if let Some(o) = &self.overload {
            entries.push(("goodput".into(), o.goodput.to_value()));
            entries.push(("dropped".into(), o.dropped.to_value()));
            entries.push(("timed_out".into(), o.timed_out.to_value()));
            entries.push(("retries".into(), o.retries.to_value()));
            entries.push(("shed".into(), o.shed.to_value()));
        }
        if let Some(pc) = &self.priority_classes {
            entries.push(("priority_classes".into(), pc.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for RunResult {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::__private::{as_object, field};
        let obj = as_object(v, "RunResult")?;
        // The flattened overload keys are present all-or-nothing;
        // `goodput` is the sentinel.
        let overload = if obj.iter().any(|(k, _)| k == "goodput") {
            Some(OverloadStats {
                goodput: field(obj, "goodput")?,
                dropped: field(obj, "dropped")?,
                timed_out: field(obj, "timed_out")?,
                retries: field(obj, "retries")?,
                shed: field(obj, "shed")?,
            })
        } else {
            None
        };
        let priority_classes = if obj.iter().any(|(k, _)| k == "priority_classes") {
            Some(field(obj, "priority_classes")?)
        } else {
            None
        };
        Ok(RunResult {
            strategy: field(obj, "strategy")?,
            seed: field(obj, "seed")?,
            task_latency_ms: field(obj, "task_latency_ms")?,
            request_latency_ms: field(obj, "request_latency_ms")?,
            hold_time_ms: field(obj, "hold_time_ms")?,
            utilization: field(obj, "utilization")?,
            completed_tasks: field(obj, "completed_tasks")?,
            measured_tasks: field(obj, "measured_tasks")?,
            sim_secs: field(obj, "sim_secs")?,
            events: field(obj, "events")?,
            dispatched: field(obj, "dispatched")?,
            congestion_signals: field(obj, "congestion_signals")?,
            demand_reports: field(obj, "demand_reports")?,
            hedges_issued: field(obj, "hedges_issued")?,
            duplicate_responses: field(obj, "duplicate_responses")?,
            overload,
            priority_classes,
        })
    }
}

/// Runs one strategy once and collects its metrics.
///
/// # Panics
/// Panics if the configuration is invalid or the run fails to complete
/// every task (which would indicate an engine bug, not a config problem).
pub fn run_experiment(cfg: ExperimentConfig) -> RunResult {
    let world = EngineWorld::new(cfg);
    run_world(world)
}

/// Runs one strategy over an externally-supplied trace (replay mode).
pub fn run_experiment_on_trace(
    cfg: ExperimentConfig,
    trace: Vec<brb_workload::taskgen::TaskSpec>,
) -> RunResult {
    let world = EngineWorld::with_trace(cfg, trace);
    run_world(world)
}

fn run_world(world: EngineWorld) -> RunResult {
    let strategy = world.config().strategy.name();
    let seed = world.config().seed;
    let mut sim = Simulation::new(world);
    EngineWorld::prime(&mut sim);
    let stats = sim.run();
    let w = sim.world();
    assert!(
        w.is_finished(),
        "run did not resolve: {} completed + {} failed of {} tasks",
        w.completed_tasks(),
        w.failed_tasks(),
        w.total_tasks()
    );
    let counters: Counters = w.counters;
    let overload = if w.config().overload.is_off() {
        None
    } else {
        Some(OverloadStats {
            goodput: w.completed_tasks() as f64 / stats.end_time.as_secs_f64(),
            dropped: counters.tasks_dropped,
            timed_out: counters.tasks_timed_out,
            retries: counters.retries_issued,
            shed: counters.tasks_shed,
        })
    };
    let priority_classes = w.dropshed_by_class.as_ref().map(|by_class| {
        by_class
            .iter()
            .map(|(&class, &(dropped, shed))| PriorityClassStats {
                class,
                dropped,
                shed,
            })
            .collect()
    });
    RunResult {
        strategy,
        seed,
        task_latency_ms: Percentiles::from_histogram_ns(&w.task_latency)
            .expect("no measured tasks"),
        request_latency_ms: Percentiles::from_histogram_ns(&w.request_latency)
            .expect("no measured requests"),
        hold_time_ms: Percentiles::from_histogram_ns(&w.hold_time),
        utilization: w.mean_utilization(stats.end_time.as_nanos()),
        completed_tasks: w.completed_tasks(),
        measured_tasks: w.measured_tasks(),
        sim_secs: stats.end_time.as_secs_f64(),
        events: stats.events_executed,
        dispatched: counters.dispatched,
        congestion_signals: counters.congestion_signals,
        demand_reports: counters.demand_reports,
        hedges_issued: counters.hedges_issued,
        duplicate_responses: counters.duplicate_responses,
        overload,
        priority_classes,
    }
}

/// A strategy's metrics aggregated across seeds: the paper's reporting
/// unit ("read latencies averaged across experiments").
#[derive(Debug, Clone)]
pub struct StrategySummary {
    /// Strategy display name.
    pub strategy: String,
    /// Per-seed results.
    pub runs: Vec<RunResult>,
    /// Median task latency across seeds (ms): mean ± stddev.
    pub p50_ms: SeedStat,
    /// 95th percentile task latency across seeds (ms).
    pub p95_ms: SeedStat,
    /// 99th percentile task latency across seeds (ms).
    pub p99_ms: SeedStat,
    /// Mean task latency across seeds (ms).
    pub mean_ms: SeedStat,
    /// Across-seed overload outcomes; `None` when the lane is off.
    pub overload: Option<OverloadSummary>,
}

/// Overload-lane outcomes aggregated across seeds (mean ± stddev each).
#[derive(Debug, Clone, Copy)]
pub struct OverloadSummary {
    /// Completed tasks per virtual second.
    pub goodput: SeedStat,
    /// Tasks failed by queue drops.
    pub dropped: SeedStat,
    /// Tasks failed by timeout.
    pub timed_out: SeedStat,
    /// Retry attempts issued.
    pub retries: SeedStat,
    /// Tasks shed by admission control.
    pub shed: SeedStat,
}

// Same additive-schema rule as `RunResult`: the summary's overload keys
// are appended only when the lane ran, so knobs-off reports keep the
// historical byte layout.
impl Serialize for StrategySummary {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("strategy".into(), self.strategy.to_value()),
            ("runs".into(), self.runs.to_value()),
            ("p50_ms".into(), self.p50_ms.to_value()),
            ("p95_ms".into(), self.p95_ms.to_value()),
            ("p99_ms".into(), self.p99_ms.to_value()),
            ("mean_ms".into(), self.mean_ms.to_value()),
        ];
        if let Some(o) = &self.overload {
            entries.push(("goodput".into(), o.goodput.to_value()));
            entries.push(("dropped".into(), o.dropped.to_value()));
            entries.push(("timed_out".into(), o.timed_out.to_value()));
            entries.push(("retries".into(), o.retries.to_value()));
            entries.push(("shed".into(), o.shed.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for StrategySummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::__private::{as_object, field};
        let obj = as_object(v, "StrategySummary")?;
        let overload = if obj.iter().any(|(k, _)| k == "goodput") {
            Some(OverloadSummary {
                goodput: field(obj, "goodput")?,
                dropped: field(obj, "dropped")?,
                timed_out: field(obj, "timed_out")?,
                retries: field(obj, "retries")?,
                shed: field(obj, "shed")?,
            })
        } else {
            None
        };
        Ok(StrategySummary {
            strategy: field(obj, "strategy")?,
            runs: field(obj, "runs")?,
            p50_ms: field(obj, "p50_ms")?,
            p95_ms: field(obj, "p95_ms")?,
            p99_ms: field(obj, "p99_ms")?,
            mean_ms: field(obj, "mean_ms")?,
            overload,
        })
    }
}

/// Mean ± stddev of one statistic across seeds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeedStat {
    /// Mean across seeds.
    pub mean: f64,
    /// Sample standard deviation across seeds.
    pub stddev: f64,
}

impl SeedStat {
    fn from_values(values: Vec<f64>) -> SeedStat {
        let s = SeedSummary::new(values);
        SeedStat {
            mean: s.mean(),
            stddev: s.stddev(),
        }
    }
}

impl StrategySummary {
    /// Aggregates per-seed runs (all for the same strategy).
    pub fn from_runs(runs: Vec<RunResult>) -> StrategySummary {
        assert!(!runs.is_empty(), "need at least one run");
        let strategy = runs[0].strategy.clone();
        assert!(
            runs.iter().all(|r| r.strategy == strategy),
            "mixed strategies in one summary"
        );
        let collect = |f: fn(&RunResult) -> f64| runs.iter().map(f).collect::<Vec<_>>();
        // Aggregate overload outcomes only when every seed ran the lane
        // (mixed on/off within one strategy would be a config bug).
        let overload = if runs.iter().all(|r| r.overload.is_some()) {
            let ov = |f: fn(&OverloadStats) -> f64| {
                SeedStat::from_values(
                    runs.iter()
                        .map(|r| f(r.overload.as_ref().expect("checked above")))
                        .collect(),
                )
            };
            Some(OverloadSummary {
                goodput: ov(|o| o.goodput),
                dropped: ov(|o| o.dropped as f64),
                timed_out: ov(|o| o.timed_out as f64),
                retries: ov(|o| o.retries as f64),
                shed: ov(|o| o.shed as f64),
            })
        } else {
            None
        };
        StrategySummary {
            strategy,
            p50_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.p50)),
            p95_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.p95)),
            p99_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.p99)),
            mean_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.mean)),
            overload,
            runs,
        }
    }
}

/// The sweep worker count: `BRB_THREADS` when set (and positive), else
/// the detected available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("BRB_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Generates one seed's workload trace from the sweep's base config.
fn trace_of(base: &ExperimentConfig, seed: u64) -> Vec<TaskSpec> {
    let mut cfg = base.clone();
    cfg.seed = seed;
    EngineWorld::generate_trace(&cfg)
}

/// Runs one cell against its seed's shared trace.
fn run_cell(cfg: ExperimentConfig, trace: Arc<Vec<TaskSpec>>) -> RunResult {
    run_world(EngineWorld::with_shared_trace(cfg, trace))
}

/// Runs independent experiment cells across scoped threads, returning
/// results in strategy-major input order. Work-stealing via an atomic
/// cursor: cells differ wildly in cost (credits machinery vs. direct
/// dispatch), so static chunking would leave cores idle.
///
/// Traces are generated once per seed — they depend only on
/// `(seed, workload)`, never on the strategy, so the strategies of a
/// seed share one allocation behind an `Arc` (the paper's
/// common-random-numbers setup, now also an optimization). Cells
/// *execute* seed-major: a seed's trace is generated lazily by the
/// first worker that needs it and dropped as soon as its last strategy
/// cell completes, so live traces are bounded by the worker count (a
/// figure2-scale trace is tens of megabytes; a sweep must not pin one
/// per seed for its whole duration).
fn run_cells_with(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
    threads: usize,
) -> Vec<RunResult> {
    let num_cells = strategies.len() * seeds.len();
    let threads = threads.min(num_cells);
    let cell_cfg = |si: usize, ti: usize| {
        let mut cfg = base.clone();
        cfg.strategy = strategies[si].clone();
        cfg.seed = seeds[ti];
        cfg
    };
    if threads <= 1 {
        // Seed-major execution, strategy-major result order.
        let mut slots: Vec<Option<RunResult>> = (0..num_cells).map(|_| None).collect();
        for ti in 0..seeds.len() {
            let trace = Arc::new(trace_of(base, seeds[ti]));
            for si in 0..strategies.len() {
                slots[si * seeds.len() + ti] = Some(run_cell(cell_cfg(si, ti), Arc::clone(&trace)));
            }
        }
        return slots
            .into_iter()
            .map(|r| r.expect("every cell runs"))
            .collect();
    }
    // Seed-major work order (the result slot index stays strategy-major).
    let order: Vec<(usize, usize)> = (0..seeds.len())
        .flat_map(|ti| (0..strategies.len()).map(move |si| (si, ti)))
        .collect();
    // Lazily-generated shared traces plus a per-seed countdown of
    // outstanding cells; the slot is emptied when the count hits zero.
    let traces: Vec<Mutex<Option<Arc<Vec<TaskSpec>>>>> =
        seeds.iter().map(|_| Mutex::new(None)).collect();
    let remaining: Vec<AtomicUsize> = seeds
        .iter()
        .map(|_| AtomicUsize::new(strategies.len()))
        .collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = (0..num_cells).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(si, ti)) = order.get(j) else { break };
                let trace = {
                    let mut slot = traces[ti].lock().expect("trace slot poisoned");
                    match &*slot {
                        Some(t) => Arc::clone(t),
                        None => {
                            let t = Arc::new(trace_of(base, seeds[ti]));
                            *slot = Some(Arc::clone(&t));
                            t
                        }
                    }
                };
                let result = run_cell(cell_cfg(si, ti), trace);
                if remaining[ti].fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last cell of this seed: release the trace.
                    traces[ti].lock().expect("trace slot poisoned").take();
                }
                *slots[si * seeds.len() + ti]
                    .lock()
                    .expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell completes")
        })
        .collect()
}

/// Runs every strategy over every seed with the same base configuration —
/// the harness behind Figure 2 and the ablation sweeps. The same seed is
/// reused across strategies (common random numbers), so the workload trace
/// is identical for every strategy under a given seed.
///
/// Cells run in parallel across [`worker_count`] threads; each cell is a
/// self-contained deterministic simulation (its own RNG streams, its own
/// calendar), so the output is byte-identical to
/// [`run_strategies_multi_seed_sequential`] regardless of thread count
/// or interleaving.
pub fn run_strategies_multi_seed(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
) -> Vec<StrategySummary> {
    run_strategies_multi_seed_with_threads(base, strategies, seeds, worker_count())
}

/// [`run_strategies_multi_seed`] with an explicit worker count — for
/// differential tests and benchmarks that must not depend on the
/// machine's parallelism or the `BRB_THREADS` environment.
pub fn run_strategies_multi_seed_with_threads(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
    threads: usize,
) -> Vec<StrategySummary> {
    let results = run_cells_with(base, strategies, seeds, threads);
    summarize(results, seeds.len())
}

/// The single-threaded reference path: identical results to
/// [`run_strategies_multi_seed`], kept for differential tests and as the
/// wall-clock baseline in `--bin kernel_bench`.
pub fn run_strategies_multi_seed_sequential(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
) -> Vec<StrategySummary> {
    let results = run_cells_with(base, strategies, seeds, 1);
    summarize(results, seeds.len())
}

/// Groups flat per-cell results (strategy-major order) into summaries.
fn summarize(results: Vec<RunResult>, seeds_per_strategy: usize) -> Vec<StrategySummary> {
    assert!(seeds_per_strategy > 0, "need at least one seed");
    assert_eq!(results.len() % seeds_per_strategy, 0);
    let mut out = Vec::with_capacity(results.len() / seeds_per_strategy);
    let mut iter = results.into_iter();
    while iter.len() > 0 {
        let runs: Vec<RunResult> = iter.by_ref().take(seeds_per_strategy).collect();
        out.push(StrategySummary::from_runs(runs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;

    fn small(strategy: Strategy, seed: u64) -> ExperimentConfig {
        crate::config::paper_small_config(strategy, seed, 1_500)
    }

    #[test]
    fn run_result_is_complete() {
        let r = run_experiment(small(Strategy::c3(), 1));
        assert_eq!(r.strategy, "C3");
        assert_eq!(r.completed_tasks, 1_500);
        assert!(r.task_latency_ms.p50 > 0.0);
        assert!(r.task_latency_ms.p99 >= r.task_latency_ms.p95);
        assert!(r.task_latency_ms.p95 >= r.task_latency_ms.p50);
        assert!(r.request_latency_ms.p50 > 0.0);
        // A task is never faster than one request round trip (100µs) plus
        // service; p50 well above 0.1ms.
        assert!(r.task_latency_ms.p50 > 0.1, "{}", r.task_latency_ms.p50);
        assert!(r.utilization > 0.0);
        assert!(r.events > 0);
        assert!(r.sim_secs > 0.0);
    }

    #[test]
    fn multi_seed_summary_aggregates() {
        let base = small(Strategy::c3(), 0);
        let out = run_strategies_multi_seed(
            &base,
            &[Strategy::c3(), Strategy::equal_max_model()],
            &[1, 2],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].runs.len(), 2);
        assert_eq!(out[0].strategy, "C3");
        assert_eq!(out[1].strategy, "EqualMax - Model");
        for s in &out {
            assert!(s.p99_ms.mean >= s.p50_ms.mean);
            assert!(s.p50_ms.mean > 0.0);
        }
    }

    #[test]
    fn seeds_share_the_workload_across_strategies() {
        // Common random numbers: dispatched request counts must match
        // exactly across strategies for the same seed.
        let base = small(Strategy::c3(), 0);
        let out =
            run_strategies_multi_seed(&base, &[Strategy::c3(), Strategy::unif_incr_model()], &[9]);
        assert_eq!(out[0].runs[0].dispatched, out[1].runs[0].dispatched);
    }

    /// The parallel runner must be invisible in the results: every
    /// `RunResult` serializes byte-identically to the sequential path's,
    /// for every (strategy, seed) cell, for **every worker count** — the
    /// shapes `BRB_THREADS` can force — including more workers than
    /// cells (maximum interleaving). With the ziggurat/alias samplers in
    /// the hot path, this is also the end-to-end proof that the new
    /// draw sequences are scheduling-independent.
    #[test]
    fn any_thread_count_matches_sequential_byte_for_byte() {
        let base = small(Strategy::c3(), 0);
        let strategies = [
            Strategy::c3(),
            Strategy::equal_max_credits(),
            Strategy::equal_max_model(),
        ];
        let seeds = [1u64, 2];
        let seq = run_strategies_multi_seed_sequential(&base, &strategies, &seeds);
        for threads in [1usize, 2, 3, 8] {
            let par = run_strategies_multi_seed_with_threads(&base, &strategies, &seeds, threads);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.strategy, p.strategy);
                assert_eq!(s.runs.len(), p.runs.len());
                for (sr, pr) in s.runs.iter().zip(&p.runs) {
                    let sj = serde_json::to_string(sr).unwrap();
                    let pj = serde_json::to_string(pr).unwrap();
                    assert_eq!(
                        sj, pj,
                        "cell ({}, seed {}) diverged at {threads} threads",
                        sr.strategy, sr.seed
                    );
                }
            }
        }
    }

    // Note: `BRB_THREADS` itself is exercised end-to-end by the
    // `kernel_bench` CI step (the emitted JSON records the worker count).
    // Mutating the environment from an in-process test would race the
    // other tests' `env::var` reads — worker-count *behavior* is covered
    // shape by shape above instead.

    #[test]
    fn worker_count_is_positive() {
        // Whatever the machine or BRB_THREADS says, a sweep always gets
        // at least one worker.
        assert!(worker_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "mixed strategies")]
    fn summary_rejects_mixed_strategies() {
        let a = run_experiment(small(Strategy::c3(), 1));
        let b = run_experiment(small(Strategy::equal_max_model(), 1));
        StrategySummary::from_runs(vec![a, b]);
    }

    #[test]
    fn results_serialize() {
        let r = run_experiment(small(Strategy::equal_max_credits(), 3));
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.completed_tasks, r.completed_tasks);
        assert!(back.overload.is_none());
        // Knobs off ⇒ the overload keys must not exist at all (their
        // absence is what keeps historical golden hashes valid).
        assert!(!json.contains("goodput"));
        assert!(!json.contains("\"shed\""));
    }

    #[test]
    fn overload_fields_flatten_additively_and_round_trip() {
        let mut cfg = small(Strategy::c3(), 4);
        cfg.workload.load = 1.2;
        cfg.overload.queue = Some(crate::config::QueueConfig {
            capacity: 64,
            shed_above: None,
            codel: None,
            priority_stats: false,
        });
        let r = run_experiment(cfg);
        let o = r.overload.expect("knobs on ⇒ stats present");
        assert!(o.goodput > 0.0);
        assert_eq!(
            r.completed_tasks as u64 + o.dropped + o.timed_out + o.shed,
            1_500,
            "conservation must hold in the report"
        );
        let json = serde_json::to_string(&r).unwrap();
        // Appended after the 15 legacy keys, in schema order.
        let pos = |k: &str| json.find(k).unwrap_or_else(|| panic!("missing {k}"));
        assert!(pos("\"duplicate_responses\"") < pos("\"goodput\""));
        assert!(pos("\"goodput\"") < pos("\"dropped\""));
        assert!(pos("\"dropped\"") < pos("\"timed_out\""));
        assert!(pos("\"timed_out\"") < pos("\"retries\""));
        assert!(pos("\"retries\"") < pos("\"shed\""));
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.overload, r.overload);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        let summary = StrategySummary::from_runs(vec![r]);
        let sj = serde_json::to_string(&summary).unwrap();
        assert!(sj.contains("\"goodput\""));
        let sback: StrategySummary = serde_json::from_str(&sj).unwrap();
        assert_eq!(serde_json::to_string(&sback).unwrap(), sj);
    }

    #[test]
    fn priority_class_split_is_additive_and_sums_match() {
        let mut cfg = small(Strategy::c3(), 7);
        cfg.workload.load = 1.3;
        cfg.overload.queue = Some(crate::config::QueueConfig {
            capacity: 64,
            shed_above: Some(48),
            codel: None,
            priority_stats: true,
        });
        let r = run_experiment(cfg.clone());
        let o = r.overload.expect("knobs on ⇒ stats present");
        assert!(o.dropped + o.shed > 0, "split needs failures to classify");
        let pc = r
            .priority_classes
            .as_ref()
            .expect("priority_stats on ⇒ split present");
        assert_eq!(pc.iter().map(|c| c.dropped).sum::<u64>(), o.dropped);
        assert_eq!(pc.iter().map(|c| c.shed).sum::<u64>(), o.shed);
        assert!(
            pc.windows(2).all(|w| w[0].class < w[1].class),
            "classes sorted ascending"
        );
        let json = serde_json::to_string(&r).unwrap();
        // Appended after the overload block, round-trips byte-stably.
        let pos = |k: &str| json.find(k).unwrap_or_else(|| panic!("missing {k}"));
        assert!(pos("\"shed\"") < pos("\"priority_classes\""));
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        // The knob is observation-only: same run with it off produces
        // identical outcomes and no extra key.
        let mut off = cfg;
        off.overload.queue.as_mut().unwrap().priority_stats = false;
        let r_off = run_experiment(off);
        assert!(r_off.priority_classes.is_none());
        let off_json = serde_json::to_string(&r_off).unwrap();
        assert!(!off_json.contains("priority_classes"));
        assert_eq!(r_off.overload, r.overload);
    }

    /// The regression the overload lane exists to pin: at 1.3× offered
    /// load an unbounded system completes everything but its tail is
    /// the standing backlog; bounding + CoDel trades a slice of the
    /// offered work (drops > 0) for a far smaller served tail.
    #[test]
    fn bounded_codel_beats_the_unbounded_tail_past_saturation() {
        let mut unbounded = small(Strategy::c3(), 11);
        unbounded.workload.load = 1.3;
        let mut bounded = unbounded.clone();
        bounded.overload.queue = Some(crate::config::QueueConfig {
            capacity: 64,
            shed_above: None,
            codel: Some(brb_sched::CoDelConfig::paper_default()),
            priority_stats: false,
        });
        let u = run_experiment(unbounded);
        let b = run_experiment(bounded);
        assert!(u.overload.is_none(), "knobs off must stay legacy-shaped");
        assert_eq!(u.completed_tasks, 1_500, "unbounded completes everything");
        let ov = b.overload.expect("knobs on ⇒ stats present");
        assert!(ov.dropped > 0, "past saturation the bound must engage");
        assert!(ov.goodput > 0.0);
        assert_eq!(
            b.completed_tasks as u64 + ov.dropped + ov.timed_out + ov.shed,
            1_500
        );
        assert!(
            b.task_latency_ms.p99 < u.task_latency_ms.p99,
            "bounded p99 {}ms should beat unbounded p99 {}ms",
            b.task_latency_ms.p99,
            u.task_latency_ms.p99
        );
    }
}
