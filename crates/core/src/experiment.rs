//! Experiment runners: single seeded runs and the paper's multi-seed
//! averaged comparisons.
//!
//! [`run_strategies_multi_seed`] fans its (strategy × seed) cells out
//! across OS threads — each cell is an independent deterministic
//! simulation, so the sweep scales with cores while producing results
//! byte-identical to the sequential path (guarded by a test). Worker
//! count comes from [`worker_count`] (`BRB_THREADS` overrides the
//! detected parallelism).

use crate::config::{ExperimentConfig, Strategy};
use crate::engine::{Counters, EngineWorld};
use brb_metrics::{Percentiles, SeedSummary};
use brb_sim::Simulation;
use brb_workload::taskgen::TaskSpec;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The result of one seeded run of one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Strategy display name.
    pub strategy: String,
    /// Master seed.
    pub seed: u64,
    /// Task latency percentiles in **milliseconds** (the paper's unit).
    pub task_latency_ms: Percentiles,
    /// Per-request latency percentiles in milliseconds.
    pub request_latency_ms: Percentiles,
    /// Client-side hold time percentiles in milliseconds.
    pub hold_time_ms: Option<Percentiles>,
    /// Mean server utilization over the run.
    pub utilization: f64,
    /// Tasks completed.
    pub completed_tasks: usize,
    /// Tasks included in latency statistics (post-warm-up).
    pub measured_tasks: u64,
    /// Virtual duration of the run in seconds.
    pub sim_secs: f64,
    /// Events executed.
    pub events: u64,
    /// Requests dispatched.
    pub dispatched: u64,
    /// Congestion signals (credits realization only).
    pub congestion_signals: u64,
    /// Demand reports delivered (credits realization only).
    pub demand_reports: u64,
    /// Hedge duplicates issued (hedged strategy only).
    pub hedges_issued: u64,
    /// Responses that arrived after their request had completed (wasted
    /// work under hedging).
    pub duplicate_responses: u64,
}

/// Runs one strategy once and collects its metrics.
///
/// # Panics
/// Panics if the configuration is invalid or the run fails to complete
/// every task (which would indicate an engine bug, not a config problem).
pub fn run_experiment(cfg: ExperimentConfig) -> RunResult {
    let world = EngineWorld::new(cfg);
    run_world(world)
}

/// Runs one strategy over an externally-supplied trace (replay mode).
pub fn run_experiment_on_trace(
    cfg: ExperimentConfig,
    trace: Vec<brb_workload::taskgen::TaskSpec>,
) -> RunResult {
    let world = EngineWorld::with_trace(cfg, trace);
    run_world(world)
}

fn run_world(world: EngineWorld) -> RunResult {
    let strategy = world.config().strategy.name();
    let seed = world.config().seed;
    let mut sim = Simulation::new(world);
    EngineWorld::prime(&mut sim);
    let stats = sim.run();
    let w = sim.world();
    assert!(
        w.is_finished(),
        "run did not complete: {}/{} tasks",
        w.completed_tasks(),
        w.total_tasks()
    );
    let counters: Counters = w.counters;
    RunResult {
        strategy,
        seed,
        task_latency_ms: Percentiles::from_histogram_ns(&w.task_latency)
            .expect("no measured tasks"),
        request_latency_ms: Percentiles::from_histogram_ns(&w.request_latency)
            .expect("no measured requests"),
        hold_time_ms: Percentiles::from_histogram_ns(&w.hold_time),
        utilization: w.mean_utilization(stats.end_time.as_nanos()),
        completed_tasks: w.completed_tasks(),
        measured_tasks: w.measured_tasks(),
        sim_secs: stats.end_time.as_secs_f64(),
        events: stats.events_executed,
        dispatched: counters.dispatched,
        congestion_signals: counters.congestion_signals,
        demand_reports: counters.demand_reports,
        hedges_issued: counters.hedges_issued,
        duplicate_responses: counters.duplicate_responses,
    }
}

/// A strategy's metrics aggregated across seeds: the paper's reporting
/// unit ("read latencies averaged across experiments").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategySummary {
    /// Strategy display name.
    pub strategy: String,
    /// Per-seed results.
    pub runs: Vec<RunResult>,
    /// Median task latency across seeds (ms): mean ± stddev.
    pub p50_ms: SeedStat,
    /// 95th percentile task latency across seeds (ms).
    pub p95_ms: SeedStat,
    /// 99th percentile task latency across seeds (ms).
    pub p99_ms: SeedStat,
    /// Mean task latency across seeds (ms).
    pub mean_ms: SeedStat,
}

/// Mean ± stddev of one statistic across seeds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeedStat {
    /// Mean across seeds.
    pub mean: f64,
    /// Sample standard deviation across seeds.
    pub stddev: f64,
}

impl SeedStat {
    fn from_values(values: Vec<f64>) -> SeedStat {
        let s = SeedSummary::new(values);
        SeedStat {
            mean: s.mean(),
            stddev: s.stddev(),
        }
    }
}

impl StrategySummary {
    /// Aggregates per-seed runs (all for the same strategy).
    pub fn from_runs(runs: Vec<RunResult>) -> StrategySummary {
        assert!(!runs.is_empty(), "need at least one run");
        let strategy = runs[0].strategy.clone();
        assert!(
            runs.iter().all(|r| r.strategy == strategy),
            "mixed strategies in one summary"
        );
        let collect = |f: fn(&RunResult) -> f64| runs.iter().map(f).collect::<Vec<_>>();
        StrategySummary {
            strategy,
            p50_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.p50)),
            p95_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.p95)),
            p99_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.p99)),
            mean_ms: SeedStat::from_values(collect(|r| r.task_latency_ms.mean)),
            runs,
        }
    }
}

/// The sweep worker count: `BRB_THREADS` when set (and positive), else
/// the detected available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("BRB_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Generates one seed's workload trace from the sweep's base config.
fn trace_of(base: &ExperimentConfig, seed: u64) -> Vec<TaskSpec> {
    let mut cfg = base.clone();
    cfg.seed = seed;
    EngineWorld::generate_trace(&cfg)
}

/// Runs one cell against its seed's shared trace.
fn run_cell(cfg: ExperimentConfig, trace: Arc<Vec<TaskSpec>>) -> RunResult {
    run_world(EngineWorld::with_shared_trace(cfg, trace))
}

/// Runs independent experiment cells across scoped threads, returning
/// results in strategy-major input order. Work-stealing via an atomic
/// cursor: cells differ wildly in cost (credits machinery vs. direct
/// dispatch), so static chunking would leave cores idle.
///
/// Traces are generated once per seed — they depend only on
/// `(seed, workload)`, never on the strategy, so the strategies of a
/// seed share one allocation behind an `Arc` (the paper's
/// common-random-numbers setup, now also an optimization). Cells
/// *execute* seed-major: a seed's trace is generated lazily by the
/// first worker that needs it and dropped as soon as its last strategy
/// cell completes, so live traces are bounded by the worker count (a
/// figure2-scale trace is tens of megabytes; a sweep must not pin one
/// per seed for its whole duration).
fn run_cells_with(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
    threads: usize,
) -> Vec<RunResult> {
    let num_cells = strategies.len() * seeds.len();
    let threads = threads.min(num_cells);
    let cell_cfg = |si: usize, ti: usize| {
        let mut cfg = base.clone();
        cfg.strategy = strategies[si].clone();
        cfg.seed = seeds[ti];
        cfg
    };
    if threads <= 1 {
        // Seed-major execution, strategy-major result order.
        let mut slots: Vec<Option<RunResult>> = (0..num_cells).map(|_| None).collect();
        for ti in 0..seeds.len() {
            let trace = Arc::new(trace_of(base, seeds[ti]));
            for si in 0..strategies.len() {
                slots[si * seeds.len() + ti] = Some(run_cell(cell_cfg(si, ti), Arc::clone(&trace)));
            }
        }
        return slots
            .into_iter()
            .map(|r| r.expect("every cell runs"))
            .collect();
    }
    // Seed-major work order (the result slot index stays strategy-major).
    let order: Vec<(usize, usize)> = (0..seeds.len())
        .flat_map(|ti| (0..strategies.len()).map(move |si| (si, ti)))
        .collect();
    // Lazily-generated shared traces plus a per-seed countdown of
    // outstanding cells; the slot is emptied when the count hits zero.
    let traces: Vec<Mutex<Option<Arc<Vec<TaskSpec>>>>> =
        seeds.iter().map(|_| Mutex::new(None)).collect();
    let remaining: Vec<AtomicUsize> = seeds
        .iter()
        .map(|_| AtomicUsize::new(strategies.len()))
        .collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = (0..num_cells).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(si, ti)) = order.get(j) else { break };
                let trace = {
                    let mut slot = traces[ti].lock().expect("trace slot poisoned");
                    match &*slot {
                        Some(t) => Arc::clone(t),
                        None => {
                            let t = Arc::new(trace_of(base, seeds[ti]));
                            *slot = Some(Arc::clone(&t));
                            t
                        }
                    }
                };
                let result = run_cell(cell_cfg(si, ti), trace);
                if remaining[ti].fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last cell of this seed: release the trace.
                    traces[ti].lock().expect("trace slot poisoned").take();
                }
                *slots[si * seeds.len() + ti]
                    .lock()
                    .expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell completes")
        })
        .collect()
}

/// Runs every strategy over every seed with the same base configuration —
/// the harness behind Figure 2 and the ablation sweeps. The same seed is
/// reused across strategies (common random numbers), so the workload trace
/// is identical for every strategy under a given seed.
///
/// Cells run in parallel across [`worker_count`] threads; each cell is a
/// self-contained deterministic simulation (its own RNG streams, its own
/// calendar), so the output is byte-identical to
/// [`run_strategies_multi_seed_sequential`] regardless of thread count
/// or interleaving.
pub fn run_strategies_multi_seed(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
) -> Vec<StrategySummary> {
    run_strategies_multi_seed_with_threads(base, strategies, seeds, worker_count())
}

/// [`run_strategies_multi_seed`] with an explicit worker count — for
/// differential tests and benchmarks that must not depend on the
/// machine's parallelism or the `BRB_THREADS` environment.
pub fn run_strategies_multi_seed_with_threads(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
    threads: usize,
) -> Vec<StrategySummary> {
    let results = run_cells_with(base, strategies, seeds, threads);
    summarize(results, seeds.len())
}

/// The single-threaded reference path: identical results to
/// [`run_strategies_multi_seed`], kept for differential tests and as the
/// wall-clock baseline in `--bin kernel_bench`.
pub fn run_strategies_multi_seed_sequential(
    base: &ExperimentConfig,
    strategies: &[Strategy],
    seeds: &[u64],
) -> Vec<StrategySummary> {
    let results = run_cells_with(base, strategies, seeds, 1);
    summarize(results, seeds.len())
}

/// Groups flat per-cell results (strategy-major order) into summaries.
fn summarize(results: Vec<RunResult>, seeds_per_strategy: usize) -> Vec<StrategySummary> {
    assert!(seeds_per_strategy > 0, "need at least one seed");
    assert_eq!(results.len() % seeds_per_strategy, 0);
    let mut out = Vec::with_capacity(results.len() / seeds_per_strategy);
    let mut iter = results.into_iter();
    while iter.len() > 0 {
        let runs: Vec<RunResult> = iter.by_ref().take(seeds_per_strategy).collect();
        out.push(StrategySummary::from_runs(runs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;

    fn small(strategy: Strategy, seed: u64) -> ExperimentConfig {
        crate::config::paper_small_config(strategy, seed, 1_500)
    }

    #[test]
    fn run_result_is_complete() {
        let r = run_experiment(small(Strategy::c3(), 1));
        assert_eq!(r.strategy, "C3");
        assert_eq!(r.completed_tasks, 1_500);
        assert!(r.task_latency_ms.p50 > 0.0);
        assert!(r.task_latency_ms.p99 >= r.task_latency_ms.p95);
        assert!(r.task_latency_ms.p95 >= r.task_latency_ms.p50);
        assert!(r.request_latency_ms.p50 > 0.0);
        // A task is never faster than one request round trip (100µs) plus
        // service; p50 well above 0.1ms.
        assert!(r.task_latency_ms.p50 > 0.1, "{}", r.task_latency_ms.p50);
        assert!(r.utilization > 0.0);
        assert!(r.events > 0);
        assert!(r.sim_secs > 0.0);
    }

    #[test]
    fn multi_seed_summary_aggregates() {
        let base = small(Strategy::c3(), 0);
        let out = run_strategies_multi_seed(
            &base,
            &[Strategy::c3(), Strategy::equal_max_model()],
            &[1, 2],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].runs.len(), 2);
        assert_eq!(out[0].strategy, "C3");
        assert_eq!(out[1].strategy, "EqualMax - Model");
        for s in &out {
            assert!(s.p99_ms.mean >= s.p50_ms.mean);
            assert!(s.p50_ms.mean > 0.0);
        }
    }

    #[test]
    fn seeds_share_the_workload_across_strategies() {
        // Common random numbers: dispatched request counts must match
        // exactly across strategies for the same seed.
        let base = small(Strategy::c3(), 0);
        let out =
            run_strategies_multi_seed(&base, &[Strategy::c3(), Strategy::unif_incr_model()], &[9]);
        assert_eq!(out[0].runs[0].dispatched, out[1].runs[0].dispatched);
    }

    /// The parallel runner must be invisible in the results: every
    /// `RunResult` serializes byte-identically to the sequential path's,
    /// for every (strategy, seed) cell, for **every worker count** — the
    /// shapes `BRB_THREADS` can force — including more workers than
    /// cells (maximum interleaving). With the ziggurat/alias samplers in
    /// the hot path, this is also the end-to-end proof that the new
    /// draw sequences are scheduling-independent.
    #[test]
    fn any_thread_count_matches_sequential_byte_for_byte() {
        let base = small(Strategy::c3(), 0);
        let strategies = [
            Strategy::c3(),
            Strategy::equal_max_credits(),
            Strategy::equal_max_model(),
        ];
        let seeds = [1u64, 2];
        let seq = run_strategies_multi_seed_sequential(&base, &strategies, &seeds);
        for threads in [1usize, 2, 3, 8] {
            let par = run_strategies_multi_seed_with_threads(&base, &strategies, &seeds, threads);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.strategy, p.strategy);
                assert_eq!(s.runs.len(), p.runs.len());
                for (sr, pr) in s.runs.iter().zip(&p.runs) {
                    let sj = serde_json::to_string(sr).unwrap();
                    let pj = serde_json::to_string(pr).unwrap();
                    assert_eq!(
                        sj, pj,
                        "cell ({}, seed {}) diverged at {threads} threads",
                        sr.strategy, sr.seed
                    );
                }
            }
        }
    }

    // Note: `BRB_THREADS` itself is exercised end-to-end by the
    // `kernel_bench` CI step (the emitted JSON records the worker count).
    // Mutating the environment from an in-process test would race the
    // other tests' `env::var` reads — worker-count *behavior* is covered
    // shape by shape above instead.

    #[test]
    fn worker_count_is_positive() {
        // Whatever the machine or BRB_THREADS says, a sweep always gets
        // at least one worker.
        assert!(worker_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "mixed strategies")]
    fn summary_rejects_mixed_strategies() {
        let a = run_experiment(small(Strategy::c3(), 1));
        let b = run_experiment(small(Strategy::equal_max_model(), 1));
        StrategySummary::from_runs(vec![a, b]);
    }

    #[test]
    fn results_serialize() {
        let r = run_experiment(small(Strategy::equal_max_credits(), 3));
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.completed_tasks, r.completed_tasks);
    }
}
