//! A minimal index-keyed slab: O(1) insert/remove with free-list reuse.
//!
//! The engine pools its hot-path records here — [`InFlight`] requests and
//! controller message payloads — so calendar events carry a 4-byte
//! [`u32`] key instead of an owned payload, and a steady-state run does
//! no per-event heap allocation: freed slots (and the `Vec` payloads in
//! them) are recycled for the next request.
//!
//! [`InFlight`]: crate::engine::InFlight

/// An index-keyed arena with a free list.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Stores `value`, returning its key. Reuses freed slots before
    /// growing.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.entries[idx as usize].is_none(), "free-list corruption");
            self.entries[idx as usize] = Some(value);
            idx
        } else {
            let idx = u32::try_from(self.entries.len()).expect("slab exceeds u32 keys");
            self.entries.push(Some(value));
            idx
        }
    }

    /// Borrows the entry at `key`.
    ///
    /// # Panics
    /// Panics if `key` is vacant — a vacant access is a lifecycle bug
    /// (an event referring to a freed record), never a recoverable state.
    pub fn get(&self, key: u32) -> &T {
        self.entries[key as usize]
            .as_ref()
            .expect("slab key is vacant")
    }

    /// Mutably borrows the entry at `key`.
    ///
    /// # Panics
    /// Panics if `key` is vacant.
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        self.entries[key as usize]
            .as_mut()
            .expect("slab key is vacant")
    }

    /// Removes and returns the entry at `key`, recycling the slot.
    ///
    /// # Panics
    /// Panics if `key` is vacant.
    pub fn remove(&mut self, key: u32) -> T {
        let value = self.entries[key as usize]
            .take()
            .expect("slab key is vacant");
        self.free.push(key);
        self.len -= 1;
        value
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trips() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(*slab.get(a), "a");
        assert_eq!(*slab.get(b), "b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.len(), 1);
        *slab.get_mut(b) = "b2";
        assert_eq!(*slab.get(b), "b2");
    }

    #[test]
    fn freed_slots_are_reused_before_growth() {
        let mut slab = Slab::with_capacity(4);
        let keys: Vec<u32> = (0..4).map(|i| slab.insert(i)).collect();
        for &k in &keys {
            slab.remove(k);
        }
        assert!(slab.is_empty());
        // Re-inserting reuses the same four slots, no growth.
        let reused: Vec<u32> = (0..4).map(|i| slab.insert(i + 10)).collect();
        let mut all: Vec<u32> = keys.clone();
        all.sort_unstable();
        let mut got = reused.clone();
        got.sort_unstable();
        assert_eq!(all, got);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn vacant_access_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(1);
        slab.remove(k);
        slab.get(k);
    }
}
