//! The discrete-event engine: clients, servers, controller and network
//! wired into one [`World`].
//!
//! Every request follows the same life cycle regardless of strategy:
//!
//! ```text
//! task arrives at client ──► split/forecast/prioritize (task.rs)
//!   ──► client hold queue (per replica group)
//!   ──► pump: replica selection + admission (selector / credits / model)
//!   ──► network ──► server queue ──► core service ──► network ──► client
//!   ──► task completes when its last response lands
//! ```
//!
//! What differs per strategy is only the *pump* admission rule and the
//! server queue discipline:
//!
//! * **Direct** (C3 & ablations): the client's [`ReplicaSelector`] picks a
//!   replica (and may rate-limit); servers run FIFO or priority queues.
//! * **Credits**: dispatch spends a token from the per-server
//!   [`CreditBucket`]; held requests wait (that wait counts toward task
//!   latency); servers run priority queues; a controller re-allocates
//!   grant rates every adaptation interval from demand reports and
//!   congestion signals.
//! * **Model**: requests flow into the global priority queue after normal
//!   network latency; idle server cores work-pull with zero coordination
//!   cost.

use crate::config::{ExperimentConfig, SelectorKind, Strategy, TimeoutConfig, WorkloadKind};
use crate::slab::Slab;
use crate::task::TaskBuilder;
use crate::timeline::{Timeline, TimelineSample};
use brb_metrics::Histogram;
use brb_net::{Fabric, FabricPlan, NetNodeId};
use brb_sched::{
    CoDel, CreditBucket, CreditController, CreditsConfig, DropReason, EnqueueOutcome, GlobalQueue,
    GrantTable, PolicyKind, Priority, PriorityQueue, QueueBound, RequestQueue,
};
use brb_select::{
    C3Config, C3Selector, LeastOutstandingSelector, OracleSelector, RandomSelector,
    ReplicaSelector, ResponseFeedback, RoundRobinSelector, Selection, SelectionCtx,
};
use brb_sim::{Ctx, DetRng, RngFactory, SimDuration, SimTime, World};
use brb_store::cost::CostModel;
use brb_store::ids::{GroupId, ServerId};
use brb_store::partition::Ring;
use brb_store::service::ServiceModel;
use brb_workload::keyspace::{KeySpace, Popularity};
use brb_workload::soundcloud::{SoundCloudConfig, SoundCloudModel};
use brb_workload::taskgen::{TaskGenerator, TaskSpec};
use brb_workload::PoissonProcess;
use std::sync::Arc;

/// Slab key of a pooled [`InFlight`] record. Calendar events carry this
/// 4-byte key instead of the record itself, and queues hold keys instead
/// of payloads — the record lives in `EngineWorld::requests` from task
/// arrival until its last referencing event has fired, then its slot is
/// recycled for a later request. Steady state allocates nothing.
pub type ReqId = u32;

/// Slab key of a pooled controller-message payload (`Vec<(u16, f64)>` of
/// per-server demands or grants). The vectors rotate through
/// `EngineWorld::payload_pool`, so the measurement/adaptation tick chains
/// stop allocating once the pool is warm.
pub type PayloadId = u32;

/// A request in flight through the system. Kept `Copy`-small: millions of
/// these move through the calendar per run.
#[derive(Debug, Clone, Copy)]
pub struct InFlight {
    /// Index of the owning task in the trace.
    pub task_idx: u32,
    /// Index of this request within its task (for hedging dedup).
    pub req_idx: u16,
    /// The owning client.
    pub client: u16,
    /// Replica group of the key.
    pub group: u16,
    /// Value size in bytes (values are capped at 1 MiB, fits u32).
    pub value_bytes: u32,
    /// Assigned scheduling priority.
    pub priority: Priority,
    /// When the client dispatched it (ns); 0 while held.
    pub dispatched_ns: u64,
    /// When the attempt entered a server (or the global) queue (ns);
    /// only maintained when queue knobs are on — it feeds the AQM's
    /// sojourn measurement.
    pub enqueued_ns: u64,
    /// Whether this is a hedge duplicate (hedges are never re-hedged).
    pub is_hedge: bool,
    /// Which attempt of its logical request this record is (0 = the
    /// original; retries increment).
    pub attempt: u8,
    /// Set when a newer attempt replaced this one (its timeout fired or
    /// its NACK was answered with a retry): whichever of its remaining
    /// events still fire must not retry or fail the task again.
    pub superseded: bool,
}

/// The engine's event alphabet. Every payload is either a small scalar
/// or a slab key ([`ReqId`]/[`PayloadId`]), keeping the enum at 24 bytes
/// (asserted in tests) — calendar entries stay small and no event
/// carries a heap allocation. The old alphabet moved a 32-byte
/// [`InFlight`] or a `Vec` through every event.
#[derive(Debug)]
pub enum Ev {
    /// Task `task_idx` arrives at its client.
    TaskArrive(u32),
    /// Re-attempt dispatch of held requests at a client.
    Pump(u16),
    /// A request reaches a server's queue.
    ReqAtServer(u16, ReqId),
    /// A core finishes serving a request (`service_ns` spent).
    SvcDone(u16, ReqId, u64),
    /// A response reaches the owning client: `from` server, its queue
    /// length on departure, and the service time — the full
    /// [`ResponseFeedback`] is rebuilt at the client, where the response
    /// time is stamped anyway.
    RespAtClient(ReqId, u16, u32, u64),
    /// A request reaches the global queue (model realization).
    ReqAtGlobal(ReqId),
    /// Clients measure and report demand (credits realization).
    MeasureTick,
    /// A demand report reaches the controller.
    DemandAtController(u16, PayloadId),
    /// A congestion signal reaches the controller.
    CongestionAtController(u16),
    /// The controller re-allocates grants.
    AdaptTick,
    /// New grant rates reach a client.
    GrantAtClient(u16, PayloadId),
    /// Hedging timer: re-issue the request if it is still pending.
    HedgeFire(ReqId),
    /// Telemetry snapshot tick (only when telemetry is enabled).
    TelemetryTick,
    /// A drop/shed notice from `from` server reaches the owning client
    /// (overload lane: bounded queues / AQM).
    Nack(ReqId, u16, DropReason),
    /// Client-side per-attempt timeout timer (overload lane).
    ReqTimeout(ReqId),
    /// A retry's backoff elapsed: re-hold and pump the new attempt.
    RetryDispatch(ReqId),
}

/// Which realization the engine is running (derived from `Strategy`).
enum Realization {
    Direct,
    Credits(CreditsConfig),
    Model,
}

/// Server queue discipline. Queues hold slab keys, not records: a queued
/// entry is 12 bytes and both disciplines report `len` in O(1).
enum QueueImpl {
    Fifo(std::collections::VecDeque<(Priority, ReqId)>),
    Prio(PriorityQueue<ReqId>),
}

impl QueueImpl {
    fn push(&mut self, p: Priority, r: ReqId) {
        match self {
            QueueImpl::Fifo(q) => q.push_back((p, r)),
            QueueImpl::Prio(q) => q.push(p, r),
        }
    }

    fn pop(&mut self) -> Option<(Priority, ReqId)> {
        match self {
            QueueImpl::Fifo(q) => q.pop_front(),
            QueueImpl::Prio(q) => q.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            QueueImpl::Fifo(q) => q.len(),
            QueueImpl::Prio(q) => q.len(),
        }
    }
}

struct ServerState {
    queue: QueueImpl,
    /// Speed factor: service times divide by this (0.5 = half speed).
    speed: f64,
    cores: u32,
    busy_cores: u32,
    service_rng: DetRng,
    busy_ns: u64,
    served: u64,
    last_congestion_ns: u64,
    peak_queue: usize,
    /// Arrivals in the current congestion-detection window (credits).
    arrivals_in_window: u64,
    /// Start of the current congestion-detection window (ns).
    window_start_ns: u64,
    /// CoDel controller for this server's queue (overload lane).
    codel: Option<CoDel>,
}

struct ClientState {
    selector: Option<Box<dyn ReplicaSelector>>,
    /// Token buckets per server (credits realization).
    buckets: Vec<CreditBucket>,
    /// Held requests per replica group, priority-ordered.
    hold: Vec<PriorityQueue<ReqId>>,
    held: usize,
    /// This client's in-flight count per server.
    outstanding: Vec<u64>,
    /// Dispatches per server since the last measurement tick.
    dispatched_since_measure: Vec<u64>,
    /// Smoothed per-server demand (rps). Reports send
    /// `max(instantaneous, smoothed)` so one quiet measurement window
    /// cannot collapse next epoch's grant (grants are frozen for a full
    /// adaptation interval; underestimates starve the client).
    demand_ewma: Vec<f64>,
    /// EWMA of piggybacked server queue lengths (credits realization):
    /// replica choice weighs observed queues, narrowing the gap to the
    /// model's late binding.
    queue_ewma: Vec<f64>,
    /// Originals dispatched (hedging budget denominator).
    dispatched_total: u64,
    /// Hedges issued (hedging budget numerator).
    hedged_total: u64,
    /// Retries issued (retry budget numerator, overload lane).
    retried_total: u64,
    /// Earliest currently-scheduled pump, to damp duplicate events.
    pump_at: Option<u64>,
}

struct TaskState {
    arrival_ns: u64,
    pending: u16,
    client: u16,
    /// Per-request completion flags — needed once hedging can deliver two
    /// responses for one request (first wins). Filled lazily at arrival.
    done: Vec<bool>,
}

/// Run counters for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Requests dispatched to servers.
    pub dispatched: u64,
    /// Pump attempts that found every candidate rate-limited.
    pub rate_limited: u64,
    /// Congestion signals sent to the controller.
    pub congestion_signals: u64,
    /// Grant messages delivered to clients.
    pub grants_delivered: u64,
    /// Demand reports delivered to the controller.
    pub demand_reports: u64,
    /// Hedge duplicates issued (hedged strategy only).
    pub hedges_issued: u64,
    /// Responses that arrived after their request was already complete
    /// (wasted work under hedging, or late arrivals for tasks that
    /// already failed terminally under the overload lane).
    pub duplicate_responses: u64,
    /// Peak total held requests across clients.
    pub peak_held: usize,
    /// Request attempts tail-dropped at capacity or AQM-dropped at
    /// dequeue (overload lane).
    pub requests_dropped: u64,
    /// Request attempts shed by admission control (overload lane).
    pub requests_shed: u64,
    /// Per-attempt timeouts that fired on a still-pending request.
    pub timeouts_fired: u64,
    /// Retry attempts issued (after NACKs or timeouts).
    pub retries_issued: u64,
    /// Tasks terminally failed by a dropped request (tail-drop or AQM).
    pub tasks_dropped: u64,
    /// Tasks terminally failed by admission-control shedding.
    pub tasks_shed: u64,
    /// Tasks terminally failed by timeout (including retries-exhausted).
    pub tasks_timed_out: u64,
}

/// Typed terminal failure of a task (overload lane). Every task ends in
/// exactly one of {completed} ∪ these — the conservation invariant
/// `completed + dropped + shed + timed_out == issued` is test-enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFailure {
    /// A required request was tail-dropped or AQM-dropped with no retry
    /// left.
    Dropped,
    /// A required request was shed by admission control with no retry
    /// left.
    Shed,
    /// A required attempt timed out with no retries configured.
    TimedOut,
    /// A required attempt timed out after its retries (or the client's
    /// retry budget) ran out.
    RetriesExhausted,
}

/// The complete simulation model for one seeded run of one strategy.
pub struct EngineWorld {
    cfg: ExperimentConfig,
    realization: Realization,
    policy: PolicyKind,
    /// Hedge trigger delay (hedged strategy only).
    hedge_ns: Option<u64>,
    ring: Ring,
    cost: CostModel,
    service: ServiceModel,
    /// The fabric compiled into per-hop deltas (`cfg.net` selects the
    /// compiled fast path or the forced per-message slow path).
    plan: FabricPlan,
    /// Cached `plan.uniform_const()`: on the paper's constant mesh every
    /// send path timestamps with this single add — no node-id math, no
    /// model resolution, no RNG touch — and `prime` feeds the same delta
    /// to the calendar's hop lane.
    hop_const: Option<SimDuration>,
    latency_rng: DetRng,
    group_replicas: Vec<Vec<ServerId>>,

    /// The workload trace, shared (not copied) across the strategy cells
    /// of a sweep seed — the engine only reads it.
    trace: Arc<Vec<TaskSpec>>,
    tasks: Vec<TaskState>,
    clients: Vec<ClientState>,
    servers: Vec<ServerState>,
    global: Option<GlobalQueue<ReqId>>,
    controller: Option<CreditController>,

    /// Pooled in-flight records, keyed by the [`ReqId`]s events carry.
    /// The `u8` is the count of outstanding event references (the
    /// request chain plus, when hedging, the pending hedge timer); the
    /// slot is recycled when it reaches zero.
    requests: Slab<(InFlight, u8)>,
    /// Pooled controller-message payloads in flight on the virtual wire.
    payloads: Slab<Vec<(u16, f64)>>,
    /// Spent payload vectors awaiting reuse.
    payload_pool: Vec<Vec<(u16, f64)>>,
    /// Spent per-task completion-flag vectors awaiting reuse.
    done_pool: Vec<Vec<bool>>,
    /// Per-server rate scratch for `handle_measure_tick`.
    rate_scratch: Vec<f64>,
    /// Pooled grant table refilled by `CreditController::allocate_into`
    /// each adaptation tick — the tick chain allocates nothing once the
    /// table's rows are warm.
    grant_table: GrantTable,
    /// Per-client regroup scratch for `handle_adapt_tick`; inner vectors
    /// rotate through `payload_pool`.
    grant_scratch: Vec<Vec<(u16, f64)>>,
    /// Reusable client-side task-build pipeline.
    builder: TaskBuilder,

    /// Tail-drop/shed bound applied to server (or global) queues; `None`
    /// is the legacy unbounded behavior.
    queue_bound: Option<QueueBound>,
    /// Client timeout/retry knobs; `None` means clients never time out.
    timeout: Option<TimeoutConfig>,
    /// CoDel controller for the model realization's global queue.
    global_codel: Option<CoDel>,

    warmup_ns: u64,
    completed: usize,
    /// Tasks that failed terminally (overload lane); always 0 with the
    /// knobs off.
    failed: usize,
    measured_tasks: u64,
    finished: bool,

    /// Task latency (ns), post-warm-up.
    pub task_latency: Histogram,
    /// Per-request latency (dispatch → response, ns), post-warm-up.
    pub request_latency: Histogram,
    /// Client hold time (arrival → dispatch, ns), post-warm-up.
    pub hold_time: Histogram,
    /// Diagnostics.
    pub counters: Counters,
    /// Telemetry snapshots (empty unless `telemetry_interval_ns` is set).
    pub timeline: Timeline,
    /// Terminal drop/shed counts split by priority class (the bit length
    /// of the failing request's priority key, so class 0 holds priority
    /// 0 and class `k` holds keys in `[2^(k-1), 2^k)`). `Some` only when
    /// `QueueConfig::priority_stats` is on; the per-class drop and shed
    /// sums then equal `tasks_dropped` and `tasks_shed`.
    pub dropshed_by_class: Option<std::collections::BTreeMap<u8, (u64, u64)>>,

    oracle_scratch: Vec<u64>,
}

impl std::fmt::Debug for EngineWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineWorld")
            .field("policy", &self.policy)
            .field("hedge_ns", &self.hedge_ns)
            .finish_non_exhaustive()
    }
}

impl EngineWorld {
    /// Builds the world (generates the trace, calibrates the service
    /// model, seeds every stream) for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: ExperimentConfig) -> Self {
        // Validation happens in `generate_trace` (and `with_trace`).
        let trace = Self::generate_trace(&cfg);
        Self::with_trace(cfg, trace)
    }

    /// Generates the workload trace a configuration implies. Only the
    /// seed and the workload section matter — the strategy does not —
    /// so sweep runners generate each seed's trace **once** and share it
    /// across the strategies of that seed (the paper's common-random-
    /// numbers methodology, now also an optimization: the same trace is
    /// not re-derived per strategy cell).
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn generate_trace(cfg: &ExperimentConfig) -> Vec<TaskSpec> {
        cfg.validate().expect("invalid experiment config");
        let factory = RngFactory::new(cfg.seed);
        let task_rate = cfg.workload.task_rate(&cfg.cluster);
        match &cfg.workload.kind {
            WorkloadKind::Synthetic {
                fanout,
                num_keys,
                zipf_exponent,
            } => {
                let pop = if *zipf_exponent == 0.0 {
                    Popularity::Uniform
                } else {
                    Popularity::Zipf(*zipf_exponent)
                };
                let mut gen = TaskGenerator::new(
                    PoissonProcess::new(task_rate),
                    fanout.clone(),
                    KeySpace::new(*num_keys, pop),
                    cfg.workload.sizes,
                    factory.stream("workload"),
                );
                gen.take(cfg.workload.num_tasks)
            }
            WorkloadKind::Playlist {
                num_tracks,
                num_playlists,
                playlist_zipf,
            } => {
                let sc = SoundCloudConfig {
                    num_tracks: *num_tracks,
                    num_playlists: *num_playlists,
                    playlist_zipf: *playlist_zipf,
                    sizes: cfg.workload.sizes,
                    ..Default::default()
                };
                let model = SoundCloudModel::build(sc, &mut factory.stream("catalog"));
                model
                    .generate_trace(
                        cfg.workload.num_tasks,
                        task_rate,
                        &mut factory.stream("workload"),
                    )
                    .tasks
            }
        }
    }

    /// Builds the world around an externally-supplied trace — replay a
    /// recorded production workload (`brb_workload::Trace::read_jsonl`)
    /// or a hand-crafted scenario. The config's workload *kind* is
    /// ignored; its `sizes` model still calibrates service times.
    ///
    /// # Panics
    /// Panics if the config is invalid, the trace is empty, contains an
    /// empty task or is not ordered by arrival time.
    pub fn with_trace(cfg: ExperimentConfig, trace: Vec<TaskSpec>) -> Self {
        Self::with_shared_trace(cfg, Arc::new(trace))
    }

    /// [`Self::with_trace`] without taking ownership of the task list:
    /// sweep runners hand every strategy cell of a seed the *same*
    /// trace allocation instead of deep-copying ~megabytes per cell.
    ///
    /// # Panics
    /// As for [`Self::with_trace`].
    pub fn with_shared_trace(cfg: ExperimentConfig, trace: Arc<Vec<TaskSpec>>) -> Self {
        cfg.validate().expect("invalid experiment config");
        assert!(!trace.is_empty(), "trace must contain at least one task");
        assert!(
            trace.iter().all(|t| !t.requests.is_empty()),
            "every task needs at least one request"
        );
        assert!(
            trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "trace must be ordered by arrival time"
        );
        let factory = RngFactory::new(cfg.seed);
        let cluster = &cfg.cluster;
        let ring = Ring::new(
            cluster.num_servers,
            cluster.num_partitions,
            cluster.replication,
        );

        // Service model calibrated to the workload's mean value size, so
        // "3500 req/s per core" holds by construction.
        let mean_bytes = cfg.workload.sizes.mean_bytes();
        let service = cluster.service_model(mean_bytes);
        let cost = CostModel::new(service, cluster.forecast);

        let fabric = Fabric::uniform(cluster.latency.clone());
        // Clients, servers and the controller each get a fabric node.
        let num_nodes = cluster.num_clients as u64 + cluster.num_servers as u64 + 1;
        let plan = FabricPlan::with_mode(fabric, num_nodes, cfg.net);
        let hop_const = plan.uniform_const();
        let num_groups = ring.num_groups() as usize;
        let group_replicas: Vec<Vec<ServerId>> = (0..num_groups)
            .map(|g| ring.replicas_of_group(GroupId::new(g as u64)))
            .collect();

        let (realization, policy, hedge_ns) = match &cfg.strategy {
            Strategy::Direct { policy, .. } => (Realization::Direct, *policy, None),
            Strategy::Credits { policy, credits } => {
                (Realization::Credits(*credits), *policy, None)
            }
            Strategy::Model { policy } => (Realization::Model, *policy, None),
            Strategy::Hedged { delay_us, .. } => (
                Realization::Direct,
                PolicyKind::Fifo,
                Some(delay_us * 1_000),
            ),
        };

        // Clients.
        let n_servers = cluster.num_servers as usize;
        let server_cap = cluster.server_capacity_rps();
        let fair_rate = server_cap / cluster.num_clients as f64;
        let burst_secs = match &realization {
            Realization::Credits(c) => c.burst_secs,
            _ => 0.05,
        };
        let clients: Vec<ClientState> = (0..cluster.num_clients as usize)
            .map(|c| {
                let selector_kind = match &cfg.strategy {
                    Strategy::Direct { selector, .. } => Some(*selector),
                    Strategy::Hedged { selector, .. } => Some(*selector),
                    _ => None,
                };
                let selector: Option<Box<dyn ReplicaSelector>> =
                    selector_kind.map(|kind| match kind {
                        SelectorKind::Random => Box::new(RandomSelector::new(
                            factory.stream_seed(&format!("selector-{c}")),
                        ))
                            as Box<dyn ReplicaSelector>,
                        SelectorKind::RoundRobin => Box::new(RoundRobinSelector::new()),
                        SelectorKind::LeastOutstanding => Box::new(LeastOutstandingSelector::new()),
                        SelectorKind::Oracle => Box::new(OracleSelector::new()),
                        SelectorKind::C3 => Box::new(C3Selector::new(C3Config::paper_default(
                            cluster.num_clients,
                        ))),
                    });
                ClientState {
                    selector,
                    buckets: (0..n_servers)
                        .map(|_| CreditBucket::new(fair_rate, (fair_rate * burst_secs).max(1.0)))
                        .collect(),
                    hold: (0..num_groups)
                        .map(|_| PriorityQueue::with_capacity(32))
                        .collect(),
                    held: 0,
                    outstanding: vec![0; n_servers],
                    dispatched_since_measure: vec![0; n_servers],
                    demand_ewma: vec![0.0; n_servers],
                    queue_ewma: vec![0.0; n_servers],
                    dispatched_total: 0,
                    hedged_total: 0,
                    retried_total: 0,
                    pump_at: None,
                }
            })
            .collect();

        // Overload lane: a per-queue bound plus per-queue CoDel
        // controllers, all off by default.
        let queue_bound = cfg.overload.queue.map(|q| q.bound());
        let codel_cfg = cfg.overload.queue.and_then(|q| q.codel);
        let timeout = cfg.overload.timeout;
        let dropshed_by_class = cfg
            .overload
            .queue
            .is_some_and(|q| q.priority_stats)
            .then(std::collections::BTreeMap::new);
        let global_codel = match realization {
            Realization::Model => codel_cfg.map(CoDel::new),
            _ => None,
        };

        // Servers.
        let servers: Vec<ServerState> = (0..n_servers)
            .map(|s| ServerState {
                queue: match &cfg.strategy {
                    Strategy::Direct {
                        priority_queues: false,
                        ..
                    }
                    | Strategy::Hedged { .. } => {
                        QueueImpl::Fifo(std::collections::VecDeque::with_capacity(64))
                    }
                    _ => QueueImpl::Prio(PriorityQueue::with_capacity(64)),
                },
                speed: cluster.speed_of(s),
                cores: cluster.cores_per_server,
                busy_cores: 0,
                service_rng: factory.indexed_stream("service", s as u64),
                busy_ns: 0,
                served: 0,
                last_congestion_ns: 0,
                peak_queue: 0,
                arrivals_in_window: 0,
                window_start_ns: 0,
                codel: codel_cfg.map(CoDel::new),
            })
            .collect();

        let global = match realization {
            Realization::Model => Some(GlobalQueue::new(ring.num_groups())),
            _ => None,
        };
        let controller = match &realization {
            Realization::Credits(cc) => {
                Some(CreditController::new(vec![server_cap; n_servers], *cc))
            }
            _ => None,
        };

        let tasks: Vec<TaskState> = trace
            .iter()
            .enumerate()
            .map(|(i, t)| TaskState {
                arrival_ns: t.arrival_ns,
                pending: t.requests.len() as u16,
                client: (i % cluster.num_clients as usize) as u16,
                done: Vec::new(), // filled at arrival
            })
            .collect();

        let last_arrival = trace.last().map(|t| t.arrival_ns).unwrap_or(0);
        let warmup_ns = (last_arrival as f64 * cfg.warmup_fraction) as u64;

        let num_clients = cluster.num_clients as usize;
        EngineWorld {
            cfg,
            realization,
            policy,
            hedge_ns,
            ring,
            cost,
            service,
            plan,
            hop_const,
            latency_rng: factory.stream("latency"),
            group_replicas,
            trace,
            tasks,
            clients,
            servers,
            global,
            controller,
            requests: Slab::with_capacity(1024),
            payloads: Slab::with_capacity(num_clients * 2),
            payload_pool: Vec::with_capacity(num_clients * 2),
            done_pool: Vec::with_capacity(64),
            rate_scratch: Vec::new(),
            grant_table: GrantTable::new(),
            grant_scratch: vec![Vec::new(); num_clients],
            builder: TaskBuilder::default(),
            queue_bound,
            timeout,
            global_codel,
            warmup_ns,
            completed: 0,
            failed: 0,
            measured_tasks: 0,
            finished: false,
            task_latency: Histogram::for_latency_ns(),
            request_latency: Histogram::for_latency_ns(),
            hold_time: Histogram::for_latency_ns(),
            counters: Counters::default(),
            timeline: Timeline::default(),
            dropshed_by_class,
            oracle_scratch: Vec::with_capacity(8),
        }
    }

    /// Seeds the calendar — first task arrival plus, for credits, the
    /// measurement and adaptation tick chains — and, on a constant mesh,
    /// declares the calendar's hop lane at the plan's precomputed delta
    /// so every network hop bypasses the timer wheel.
    pub fn prime(sim: &mut brb_sim::Simulation<EngineWorld>) {
        let (first_arrival, ticks, telemetry, hop_const) = {
            let w = sim.world();
            let first = w.trace.first().map(|t| t.arrival_ns);
            let ticks = match &w.realization {
                Realization::Credits(c) => {
                    Some((c.measurement_interval_ns, c.adaptation_interval_ns))
                }
                _ => None,
            };
            (first, ticks, w.cfg.telemetry_interval_ns, w.hop_const)
        };
        if let Some(delta) = hop_const {
            sim.set_hop_lane(delta);
        }
        if let Some(at) = first_arrival {
            sim.schedule_at(SimTime::from_nanos(at), Ev::TaskArrive(0));
        }
        if let Some((m, a)) = ticks {
            sim.schedule_at(SimTime::from_nanos(m), Ev::MeasureTick);
            sim.schedule_at(SimTime::from_nanos(a), Ev::AdaptTick);
        }
        if let Some(interval) = telemetry {
            assert!(interval > 0, "telemetry interval must be positive");
            sim.schedule_at(SimTime::ZERO, Ev::TelemetryTick);
            let _ = interval;
        }
    }

    /// Takes one telemetry snapshot and schedules the next tick.
    fn handle_telemetry_tick(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let interval = self
            .cfg
            .telemetry_interval_ns
            .expect("telemetry tick without telemetry");
        self.timeline.push(TimelineSample {
            t_ns: ctx.now().as_nanos(),
            server_queue: self.servers.iter().map(|s| s.queue.len() as u32).collect(),
            busy_cores: self.servers.iter().map(|s| s.busy_cores).collect(),
            client_held: self.clients.iter().map(|c| c.held as u32).collect(),
            completed_tasks: self.completed as u64,
            global_queue: self.global.as_ref().map_or(0, |g| g.len() as u32),
        });
        if !self.finished {
            ctx.schedule_in(SimDuration::from_nanos(interval), Ev::TelemetryTick);
        }
    }

    /// Number of tasks completed so far.
    pub fn completed_tasks(&self) -> usize {
        self.completed
    }

    /// Number of tasks that failed terminally (dropped, shed or timed
    /// out under the overload lane); 0 with the knobs off.
    pub fn failed_tasks(&self) -> usize {
        self.failed
    }

    /// Peak queue depth observed across all server queues.
    pub fn peak_server_queue(&self) -> usize {
        self.servers.iter().map(|s| s.peak_queue).max().unwrap_or(0)
    }

    /// Total tasks in the (possibly replayed) trace.
    pub fn total_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks included in latency statistics (post-warm-up).
    pub fn measured_tasks(&self) -> u64 {
        self.measured_tasks
    }

    /// Whether every task has resolved (completed, or — with overload
    /// knobs on — failed terminally).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Live pooled in-flight records. Zero after a run to exhaustion —
    /// anything else is a reference-count leak in the event lifecycle.
    pub fn live_requests(&self) -> usize {
        self.requests.len()
    }

    /// Mean server utilization over `span_ns` of virtual time.
    pub fn mean_utilization(&self, span_ns: u64) -> f64 {
        if span_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.servers.iter().map(|s| s.busy_ns).sum();
        let cores: u64 = self.servers.iter().map(|s| s.cores as u64).sum();
        busy as f64 / (span_ns as f64 * cores as f64)
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    // ---- internals ----

    /// Samples the one-way delay of one message-class hop through the
    /// compiled plan. On a constant mesh this is the cached delta — the
    /// endpoints are never even resolved to fabric nodes; jittered
    /// meshes (and `PlanMode::PerMessage` builds) resolve the endpoints
    /// and draw through the latency model exactly as the historical
    /// `Fabric::one_way` path did.
    #[inline]
    fn hop_delay(&mut self, hop: Hop, bytes: u64) -> SimDuration {
        if let Some(d) = self.hop_const {
            return d;
        }
        let (from, to) = self.hop_nodes(hop);
        self.plan.delay(from, to, bytes, &mut self.latency_rng)
    }

    /// Resolves a message-class hop to its directed fabric endpoints.
    fn hop_nodes(&self, hop: Hop) -> (NetNodeId, NetNodeId) {
        match hop {
            Hop::ClientToServer { client, server } => {
                (self.client_node(client), self.server_node(server))
            }
            Hop::ServerToClient { server, client } => {
                (self.server_node(server), self.client_node(client))
            }
            Hop::ClientToController { client } => {
                (self.client_node(client), self.controller_node())
            }
            Hop::ControllerToClient { client } => {
                (self.controller_node(), self.client_node(client))
            }
            Hop::ServerToController { server } => {
                (self.server_node(server), self.controller_node())
            }
        }
    }

    fn client_node(&self, c: u16) -> NetNodeId {
        NetNodeId::new(c as u64)
    }

    fn server_node(&self, s: u16) -> NetNodeId {
        NetNodeId::new(self.cfg.cluster.num_clients as u64 + s as u64)
    }

    fn controller_node(&self) -> NetNodeId {
        NetNodeId::new(self.cfg.cluster.num_clients as u64 + self.cfg.cluster.num_servers as u64)
    }

    // ---- pooled-record lifecycle ----

    /// Pools a record with `refs` outstanding event references.
    fn alloc_req(&mut self, rec: InFlight, refs: u8) -> ReqId {
        self.requests.insert((rec, refs))
    }

    /// The record behind a key.
    fn req(&self, id: ReqId) -> &InFlight {
        &self.requests.get(id).0
    }

    /// Consumes one event reference; the slot recycles at zero.
    fn deref_req(&mut self, id: ReqId) {
        let entry = self.requests.get_mut(id);
        debug_assert!(entry.1 > 0, "request over-released");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.requests.remove(id);
        }
    }

    /// A cleared payload vector, reusing a pooled allocation when one is
    /// available.
    fn take_payload(&mut self) -> Vec<(u16, f64)> {
        self.payload_pool.pop().unwrap_or_default()
    }

    /// Returns a spent payload vector to the pool.
    fn recycle_payload(&mut self, mut payload: Vec<(u16, f64)>) {
        payload.clear();
        self.payload_pool.push(payload);
    }

    fn handle_task_arrival(&mut self, ctx: &mut Ctx<'_, Ev>, task_idx: u32) {
        // Chain the next arrival.
        let next = task_idx as usize + 1;
        if next < self.trace.len() {
            ctx.schedule_at(
                SimTime::from_nanos(self.trace[next].arrival_ns),
                Ev::TaskArrive(next as u32),
            );
        }

        self.builder.build(
            &self.trace[task_idx as usize],
            &self.ring,
            &self.cost,
            self.policy,
        );
        let client = self.tasks[task_idx as usize].client;
        let mut done = self.done_pool.pop().unwrap_or_default();
        done.clear();
        done.resize(self.builder.requests.len(), false);
        self.tasks[task_idx as usize].done = done;
        // Detach the built requests so the slab and client state can be
        // borrowed; the vector returns to the builder afterwards.
        let built = std::mem::take(&mut self.builder.requests);
        for (req_idx, r) in built.iter().enumerate() {
            let inflight = InFlight {
                task_idx,
                req_idx: req_idx as u16,
                client,
                group: r.group.raw() as u16,
                value_bytes: r.value_bytes as u32,
                priority: r.priority,
                dispatched_ns: 0,
                enqueued_ns: 0,
                is_hedge: false,
                attempt: 0,
                superseded: false,
            };
            let id = self.alloc_req(inflight, 1);
            let cs = &mut self.clients[client as usize];
            cs.hold[r.group.index()].push(r.priority, id);
            cs.held += 1;
        }
        self.builder.requests = built;
        let held_total: usize = self.clients.iter().map(|c| c.held).sum();
        self.counters.peak_held = self.counters.peak_held.max(held_total);
        self.pump(ctx, client);
    }

    /// Attempts to dispatch held requests for `client`; schedules a retry
    /// pump if admission is currently denied.
    fn pump(&mut self, ctx: &mut Ctx<'_, Ev>, client: u16) {
        let now = ctx.now();
        let now_ns = now.as_nanos();
        let num_groups = self.group_replicas.len();
        let mut earliest_retry: Option<u64> = None;

        for g in 0..num_groups {
            loop {
                let (head_id, head) = {
                    let q = &self.clients[client as usize].hold[g];
                    match q.peek_item() {
                        Some(&id) => (id, *self.req(id)),
                        None => break,
                    }
                };
                match self.admit(now_ns, client, g, &head) {
                    Admission::Dispatch(server) => {
                        let cs = &mut self.clients[client as usize];
                        let (_, id) = cs.hold[g].pop().expect("head vanished");
                        debug_assert_eq!(id, head_id);
                        cs.held -= 1;
                        cs.outstanding[server.index()] += 1;
                        cs.dispatched_since_measure[server.index()] += 1;
                        cs.dispatched_total += 1;
                        self.requests.get_mut(id).0.dispatched_ns = now_ns;
                        self.counters.dispatched += 1;
                        // Hold time is a per-task metric: only the first
                        // attempt's wait measures arrival → dispatch.
                        if head.attempt == 0
                            && self.tasks[head.task_idx as usize].arrival_ns >= self.warmup_ns
                        {
                            self.hold_time
                                .record(now_ns - self.tasks[head.task_idx as usize].arrival_ns);
                        }
                        let delay = self.hop_delay(
                            Hop::ClientToServer {
                                client,
                                server: server.raw() as u16,
                            },
                            head.value_bytes as u64,
                        );
                        ctx.schedule_in(delay, Ev::ReqAtServer(server.raw() as u16, id));
                        if let Some(hedge_ns) = self.hedge_ns {
                            // The pending hedge timer holds a second
                            // reference to the record.
                            self.requests.get_mut(id).1 += 1;
                            ctx.schedule_in(SimDuration::from_nanos(hedge_ns), Ev::HedgeFire(id));
                        }
                        self.arm_timeout(ctx, id);
                    }
                    Admission::ToGlobal => {
                        let cs = &mut self.clients[client as usize];
                        let (_, id) = cs.hold[g].pop().expect("head vanished");
                        debug_assert_eq!(id, head_id);
                        cs.held -= 1;
                        self.requests.get_mut(id).0.dispatched_ns = now_ns;
                        self.counters.dispatched += 1;
                        if head.attempt == 0
                            && self.tasks[head.task_idx as usize].arrival_ns >= self.warmup_ns
                        {
                            self.hold_time
                                .record(now_ns - self.tasks[head.task_idx as usize].arrival_ns);
                        }
                        // The request still crosses the network to reach
                        // the (magic) shared queue.
                        let delay = self.hop_delay(
                            Hop::ClientToServer {
                                client,
                                server: self.group_replicas[g][0].raw() as u16,
                            },
                            head.value_bytes as u64,
                        );
                        ctx.schedule_in(delay, Ev::ReqAtGlobal(id));
                        self.arm_timeout(ctx, id);
                    }
                    Admission::Denied { retry_in_ns } => {
                        self.counters.rate_limited += 1;
                        let at = now_ns.saturating_add(retry_in_ns.max(1));
                        earliest_retry = Some(earliest_retry.map_or(at, |e: u64| e.min(at)));
                        break;
                    }
                }
            }
        }

        // Schedule (or advance) the retry pump.
        if let Some(at) = earliest_retry {
            let cs = &mut self.clients[client as usize];
            let needs_schedule = match cs.pump_at {
                Some(existing) => at < existing || existing <= now_ns,
                None => true,
            };
            if needs_schedule {
                cs.pump_at = Some(at);
                ctx.schedule_at(SimTime::from_nanos(at), Ev::Pump(client));
            }
        } else {
            self.clients[client as usize].pump_at = None;
        }
    }

    fn admit(&mut self, now_ns: u64, client: u16, group: usize, req: &InFlight) -> Admission {
        match &self.realization {
            Realization::Model => Admission::ToGlobal,
            Realization::Direct => {
                // Fill the oracle's true queue depths only when needed.
                let use_oracle = matches!(
                    self.cfg.strategy,
                    Strategy::Direct {
                        selector: SelectorKind::Oracle,
                        ..
                    }
                );
                let candidates = &self.group_replicas[group];
                if use_oracle {
                    self.oracle_scratch.clear();
                    for s in candidates {
                        let srv = &self.servers[s.index()];
                        self.oracle_scratch
                            .push(srv.queue.len() as u64 + srv.busy_cores as u64);
                    }
                }
                let sel_ctx = SelectionCtx {
                    now_ns,
                    candidates,
                    value_bytes: req.value_bytes as u64,
                    oracle_queue_depths: if use_oracle {
                        Some(&self.oracle_scratch)
                    } else {
                        None
                    },
                };
                let selector = self.clients[client as usize]
                    .selector
                    .as_mut()
                    .expect("direct strategy has a selector");
                match selector.select(&sel_ctx) {
                    Selection::Dispatch(s) => Admission::Dispatch(s),
                    Selection::RateLimited { retry_in_ns } => Admission::Denied { retry_in_ns },
                }
            }
            Realization::Credits(_) => {
                let cs = &mut self.clients[client as usize];
                // Among replicas with an available credit, pick the one
                // with the lowest estimated load: piggybacked queue EWMA
                // plus the concurrency-compensated in-flight count (the
                // C3 trick — weighting own outstanding by the client
                // population suppresses herding on stale queue info).
                let w = self.cfg.cluster.num_clients as f64;
                let mut best: Option<(f64, u64, ServerId)> = None;
                let mut min_wait = u64::MAX;
                for s in &self.group_replicas[group] {
                    let b = &mut cs.buckets[s.index()];
                    if b.tokens_at(now_ns) >= 1.0 {
                        let load = cs.queue_ewma[s.index()] + cs.outstanding[s.index()] as f64 * w;
                        let better = match best {
                            None => true,
                            Some((bl, br, _)) => load < bl || (load == bl && s.raw() < br),
                        };
                        if better {
                            best = Some((load, s.raw(), *s));
                        }
                    } else {
                        min_wait = min_wait.min(b.ns_until_token(now_ns));
                    }
                }
                match best {
                    Some((_, _, s)) => {
                        let taken = cs.buckets[s.index()].try_take(now_ns);
                        debug_assert!(taken, "token vanished between check and take");
                        Admission::Dispatch(s)
                    }
                    None => Admission::Denied {
                        retry_in_ns: if min_wait == u64::MAX {
                            1_000_000 // all rates zero: re-probe in 1ms
                        } else {
                            min_wait
                        },
                    },
                }
            }
        }
    }

    fn handle_req_at_server(&mut self, ctx: &mut Ctx<'_, Ev>, server: u16, id: ReqId) {
        let now_ns = ctx.now().as_nanos();
        // Overload lane: bounded admission. Shed (watermark) and
        // tail-drop (capacity) NACK back to the client instead of
        // queueing — the queue length itself stays bounded.
        if let Some(bound) = self.queue_bound {
            let depth = self.servers[server as usize].queue.len();
            if let EnqueueOutcome::Dropped(reason) = bound.admit(depth) {
                match reason {
                    DropReason::Shed => self.counters.requests_shed += 1,
                    DropReason::QueueFull | DropReason::Sojourn => {
                        self.counters.requests_dropped += 1
                    }
                }
                self.send_nack(ctx, server, id, reason);
                return;
            }
            // Feed the AQM's sojourn clock.
            self.requests.get_mut(id).0.enqueued_ns = now_ns;
        }
        let priority = self.req(id).priority;
        let congested = {
            let srv = &mut self.servers[server as usize];
            srv.queue.push(priority, id);
            srv.peak_queue = srv.peak_queue.max(srv.queue.len());
            match &self.realization {
                // "once demand exceeds server capacity, a congestion
                // signal is sent to the controller": detect by comparing
                // the arrival rate over a measurement window against the
                // server's capacity, with a deep queue as a fallback
                // trigger.
                Realization::Credits(cc) => {
                    srv.arrivals_in_window += 1;
                    let window_ns = cc.measurement_interval_ns;
                    let elapsed = now_ns.saturating_sub(srv.window_start_ns);
                    let mut congested = srv.queue.len() >= self.cfg.congestion_queue_threshold;
                    if elapsed >= window_ns {
                        let rate = srv.arrivals_in_window as f64 / (elapsed as f64 / 1e9);
                        let capacity = self.cfg.cluster.server_capacity_rps();
                        if rate > capacity * 1.05 {
                            congested = true;
                        }
                        srv.arrivals_in_window = 0;
                        srv.window_start_ns = now_ns;
                    }
                    // Rate-limit signals to one per measurement interval.
                    if congested
                        && (srv.last_congestion_ns == 0
                            || now_ns.saturating_sub(srv.last_congestion_ns) >= window_ns)
                    {
                        srv.last_congestion_ns = now_ns;
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        };
        if congested {
            self.counters.congestion_signals += 1;
            let delay = self.hop_delay(Hop::ServerToController { server }, 64);
            ctx.schedule_in(delay, Ev::CongestionAtController(server));
        }
        self.start_service(ctx, server);
    }

    /// Starts service on every idle core that has queued work.
    fn start_service(&mut self, ctx: &mut Ctx<'_, Ev>, server: u16) {
        loop {
            let srv = &mut self.servers[server as usize];
            if srv.busy_cores >= srv.cores {
                return;
            }
            let Some((_, id)) = srv.queue.pop() else {
                return;
            };
            // CoDel head-drop: measure the departing head's sojourn;
            // once the queue has stood above target for a full interval,
            // drop at inverse-sqrt cadence until it drains below target.
            if self.servers[server as usize].codel.is_some() {
                let now_ns = ctx.now().as_nanos();
                let enq = self.requests.get(id).0.enqueued_ns;
                let sojourn = now_ns.saturating_sub(enq);
                let srv = &mut self.servers[server as usize];
                if srv.codel.as_mut().unwrap().on_dequeue(now_ns, sojourn) {
                    self.counters.requests_dropped += 1;
                    self.send_nack(ctx, server, id, DropReason::Sojourn);
                    continue;
                }
            }
            let srv = &mut self.servers[server as usize];
            srv.busy_cores += 1;
            let value_bytes = self.requests.get(id).0.value_bytes;
            let srv = &mut self.servers[server as usize];
            let service = self
                .service
                .sample(value_bytes as u64, &mut srv.service_rng)
                .mul_f64(1.0 / srv.speed);
            ctx.schedule_in(service, Ev::SvcDone(server, id, service.as_nanos()));
        }
    }

    fn handle_svc_done(&mut self, ctx: &mut Ctx<'_, Ev>, server: u16, id: ReqId, service_ns: u64) {
        let req = self.requests.get(id).0;
        let queue_len = {
            let srv = &mut self.servers[server as usize];
            srv.busy_cores -= 1;
            srv.busy_ns += service_ns;
            srv.served += 1;
            srv.queue.len() as u32
        };
        let delay = self.hop_delay(
            Hop::ServerToClient {
                server,
                client: req.client,
            },
            req.value_bytes as u64,
        );
        ctx.schedule_in(delay, Ev::RespAtClient(id, server, queue_len, service_ns));

        match self.realization {
            Realization::Model => self.model_pull(ctx, server),
            _ => self.start_service(ctx, server),
        }
    }

    fn handle_req_at_global(&mut self, ctx: &mut Ctx<'_, Ev>, id: ReqId) {
        let req = self.requests.get(id).0;
        // The model realization's single queue honors the same bound:
        // the NACK travels back from the replica the request was
        // addressed to, so the client pays a symmetric network delay.
        if let Some(bound) = self.queue_bound {
            let depth = self.global.as_ref().expect("model realization").len();
            if let EnqueueOutcome::Dropped(reason) = bound.admit(depth) {
                match reason {
                    DropReason::Shed => self.counters.requests_shed += 1,
                    DropReason::QueueFull | DropReason::Sojourn => {
                        self.counters.requests_dropped += 1
                    }
                }
                let server = self.group_replicas[req.group as usize][0].raw() as u16;
                self.send_nack(ctx, server, id, reason);
                return;
            }
            self.requests.get_mut(id).0.enqueued_ns = ctx.now().as_nanos();
        }
        let group = GroupId::new(req.group as u64);
        self.global
            .as_mut()
            .expect("model realization")
            .push(group, req.priority, id);
        // Wake the idle replica with the most free cores (deterministic
        // tie-break on id); it will pull the global best it may serve.
        let candidate = self.group_replicas[req.group as usize]
            .iter()
            .filter(|s| {
                let srv = &self.servers[s.index()];
                srv.busy_cores < srv.cores
            })
            .min_by_key(|s| {
                let srv = &self.servers[s.index()];
                (srv.busy_cores, s.raw())
            })
            .copied();
        if let Some(s) = candidate {
            self.model_pull(ctx, s.raw() as u16);
        }
    }

    /// Work-pulling: the server takes the highest-priority request it may
    /// serve from the global queue, for every idle core.
    fn model_pull(&mut self, ctx: &mut Ctx<'_, Ev>, server: u16) {
        loop {
            {
                let srv = &self.servers[server as usize];
                if srv.busy_cores >= srv.cores {
                    return;
                }
            }
            let pulled = self
                .global
                .as_mut()
                .expect("model realization")
                .pull_for(ServerId::new(server as u64), &self.ring);
            let Some((_, _, id)) = pulled else {
                return;
            };
            if self.global_codel.is_some() {
                let now_ns = ctx.now().as_nanos();
                let enq = self.requests.get(id).0.enqueued_ns;
                let sojourn = now_ns.saturating_sub(enq);
                if self
                    .global_codel
                    .as_mut()
                    .unwrap()
                    .on_dequeue(now_ns, sojourn)
                {
                    self.counters.requests_dropped += 1;
                    self.send_nack(ctx, server, id, DropReason::Sojourn);
                    continue;
                }
            }
            let value_bytes = self.requests.get(id).0.value_bytes;
            let srv = &mut self.servers[server as usize];
            srv.busy_cores += 1;
            let service = self
                .service
                .sample(value_bytes as u64, &mut srv.service_rng)
                .mul_f64(1.0 / srv.speed);
            ctx.schedule_in(service, Ev::SvcDone(server, id, service.as_nanos()));
        }
    }

    fn handle_resp_at_client(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        id: ReqId,
        from: u16,
        queue_len: u32,
        service_ns: u64,
    ) {
        let req = self.requests.get(id).0;
        // This response consumes its event reference; the copied record
        // carries everything the handler needs.
        self.deref_req(id);
        let now_ns = ctx.now().as_nanos();
        let c = req.client as usize;
        let feedback = ResponseFeedback {
            response_time_ns: now_ns.saturating_sub(req.dispatched_ns),
            queue_len: queue_len as u64,
            service_time_ns: service_ns,
        };
        {
            let cs = &mut self.clients[c];
            cs.outstanding[from as usize] = cs.outstanding[from as usize].saturating_sub(1);
            // Track piggybacked queue lengths for credit replica choice.
            let q = &mut cs.queue_ewma[from as usize];
            *q = 0.3 * feedback.queue_len as f64 + 0.7 * *q;
            if let Some(sel) = cs.selector.as_mut() {
                sel.on_response(ServerId::new(from as u64), now_ns, &feedback);
            }
        }

        let task = &mut self.tasks[req.task_idx as usize];
        // A recycled (empty) `done` vector means the task already
        // completed — only a hedge duplicate can arrive that late.
        if task.done.get(req.req_idx as usize).copied().unwrap_or(true) {
            // Late duplicate under hedging: the work was wasted but the
            // response must not double-complete the request.
            self.counters.duplicate_responses += 1;
            return;
        }
        task.done[req.req_idx as usize] = true;
        task.pending -= 1;
        let post_warmup = task.arrival_ns >= self.warmup_ns;
        let task_completed = task.pending == 0;
        let task_arrival_ns = task.arrival_ns;
        if task_completed {
            // Recycle the completion flags; later hedge events observe
            // the empty vector as "task done".
            let done = std::mem::take(&mut task.done);
            self.done_pool.push(done);
        }
        if post_warmup {
            self.request_latency.record(feedback.response_time_ns);
        }
        if task_completed {
            self.completed += 1;
            if post_warmup {
                self.task_latency.record(now_ns - task_arrival_ns);
                self.measured_tasks += 1;
            }
            if self.completed + self.failed == self.tasks.len() {
                self.finished = true;
            }
        }

        // A response may free admission (C3 rate windows roll on acks), so
        // pump if work is held and no pump is imminent.
        if self.clients[c].held > 0 {
            self.pump(ctx, req.client);
        }
    }

    /// Hedging timer fired: if the request is still pending, re-issue it
    /// (once) to whichever replica the selector now prefers.
    ///
    /// Requests whose *forecast service time* exceeds the trigger are
    /// never hedged: they are intrinsically expensive, not straggling —
    /// their duplicate would be just as slow and, under a heavy-tailed
    /// size distribution, doubling the biggest requests alone can push
    /// the cluster past saturation (a runaway we reproduce in the
    /// ablation by disabling this gate via a sub-service-time trigger).
    fn handle_hedge_fire(&mut self, ctx: &mut Ctx<'_, Ev>, id: ReqId) {
        let req = self.requests.get(id).0;
        // The timer's reference is consumed whatever happens next.
        self.deref_req(id);
        debug_assert!(!req.is_hedge, "hedges are never re-hedged");
        let done = self.tasks[req.task_idx as usize]
            .done
            .get(req.req_idx as usize)
            .copied()
            .unwrap_or(true); // recycled vector ⇒ task completed
        if done {
            return; // answered in time — no duplicate needed
        }
        let hedge_ns = self.hedge_ns.expect("hedge timer without hedging");
        if self.cost.forecast_ns(req.value_bytes as u64) >= hedge_ns {
            return; // intrinsically slow, not straggling
        }
        // Dean & Barroso's safeguard: cap hedges at ~5% of issued traffic.
        // Without the budget, hedges add load, load adds latency, latency
        // fires more hedges — the runaway the ablation demonstrates with
        // an aggressive trigger.
        {
            let cs = &self.clients[req.client as usize];
            if cs.hedged_total * 20 >= cs.dispatched_total {
                return;
            }
        }
        let now_ns = ctx.now().as_nanos();
        match self.admit(now_ns, req.client, req.group as usize, &req) {
            Admission::Dispatch(server) => {
                let mut dup = req;
                dup.is_hedge = true;
                dup.dispatched_ns = now_ns;
                let dup_id = self.alloc_req(dup, 1);
                let cs = &mut self.clients[req.client as usize];
                cs.outstanding[server.index()] += 1;
                cs.dispatched_since_measure[server.index()] += 1;
                cs.hedged_total += 1;
                self.counters.hedges_issued += 1;
                self.counters.dispatched += 1;
                let delay = self.hop_delay(
                    Hop::ClientToServer {
                        client: req.client,
                        server: server.raw() as u16,
                    },
                    dup.value_bytes as u64,
                );
                ctx.schedule_in(delay, Ev::ReqAtServer(server.raw() as u16, dup_id));
            }
            // Rate-limited or non-direct realization: skip the hedge
            // rather than queueing duplicate work.
            Admission::Denied { .. } | Admission::ToGlobal => {}
        }
    }

    /// Arms the per-attempt timeout timer for a just-dispatched request
    /// (overload lane). The pending timer holds its own reference to the
    /// record; hedge duplicates never get one (hedges never retry).
    fn arm_timeout(&mut self, ctx: &mut Ctx<'_, Ev>, id: ReqId) {
        if let Some(tc) = self.timeout {
            self.requests.get_mut(id).1 += 1;
            ctx.schedule_in(
                SimDuration::from_nanos(tc.timeout_us * 1_000),
                Ev::ReqTimeout(id),
            );
        }
    }

    /// Sends a drop/shed notice back to the owning client. The NACK is a
    /// small control message (64 B on the wire), and it carries the
    /// attempt's chain reference — `handle_nack` consumes it.
    fn send_nack(&mut self, ctx: &mut Ctx<'_, Ev>, server: u16, id: ReqId, reason: DropReason) {
        let client = self.req(id).client;
        let delay = self.hop_delay(Hop::ServerToClient { server, client }, 64);
        ctx.schedule_in(delay, Ev::Nack(id, server, reason));
    }

    /// Whether a failed attempt may be retried: retries are configured,
    /// the per-request cap has room, and the client-wide retry budget
    /// (retries as a percentage of originals dispatched) is not spent —
    /// the budget is what keeps a retry storm from amplifying itself.
    fn can_retry(&self, req: &InFlight) -> bool {
        let Some(tc) = self.timeout else {
            return false;
        };
        if req.attempt as u32 >= tc.max_retries {
            return false;
        }
        if let Some(p) = tc.retry_budget_percent {
            let cs = &self.clients[req.client as usize];
            if cs.retried_total * 100 >= cs.dispatched_total.max(1) * p as u64 {
                return false;
            }
        }
        true
    }

    /// Allocates the next attempt of a logical request and schedules its
    /// re-dispatch after capped exponential backoff. The caller has
    /// already marked the previous attempt superseded.
    fn issue_retry(&mut self, ctx: &mut Ctx<'_, Ev>, prev: InFlight) {
        let tc = self.timeout.expect("retry without timeout config");
        let mut next = prev;
        next.attempt = prev.attempt + 1;
        next.dispatched_ns = 0;
        next.enqueued_ns = 0;
        next.is_hedge = false;
        next.superseded = false;
        let id = self.alloc_req(next, 1);
        self.clients[prev.client as usize].retried_total += 1;
        self.counters.retries_issued += 1;
        let backoff_ns = retry_backoff_ns(&tc, next.attempt);
        ctx.schedule_in(SimDuration::from_nanos(backoff_ns), Ev::RetryDispatch(id));
    }

    /// A drop/shed notice reached the owning client: the attempt never
    /// entered (or was ejected from) a server queue. Retry if allowed,
    /// otherwise the task fails terminally.
    fn handle_nack(&mut self, ctx: &mut Ctx<'_, Ev>, id: ReqId, from: u16, reason: DropReason) {
        let req = self.requests.get(id).0;
        // The attempt is no longer in flight toward `from`. The model
        // realization never counted it (requests go to the magic shared
        // queue, not a replica).
        if !matches!(self.realization, Realization::Model) {
            let cs = &mut self.clients[req.client as usize];
            cs.outstanding[from as usize] = cs.outstanding[from as usize].saturating_sub(1);
        }
        let done = self.tasks[req.task_idx as usize]
            .done
            .get(req.req_idx as usize)
            .copied()
            .unwrap_or(true); // recycled vector ⇒ task already resolved
        if req.is_hedge || req.superseded || done {
            // An optional duplicate, an attempt a retry already
            // replaced, or a request that already resolved: nothing
            // further to do.
            self.deref_req(id);
            return;
        }
        if self.can_retry(&req) {
            // The attempt's timeout timer is still pending (retries
            // imply a timeout config); it must not retry again.
            self.requests.get_mut(id).0.superseded = true;
            self.deref_req(id);
            self.issue_retry(ctx, req);
        } else {
            self.deref_req(id);
            let failure = match reason {
                DropReason::QueueFull | DropReason::Sojourn => TaskFailure::Dropped,
                DropReason::Shed => TaskFailure::Shed,
            };
            self.fail_task(req.task_idx, failure, req.priority);
            if self.clients[req.client as usize].held > 0 {
                self.pump(ctx, req.client);
            }
        }
    }

    /// A per-attempt timeout fired. If the attempt is still unanswered
    /// and unreplaced, issue a retry (the late original may still win —
    /// first response completes the request) or fail the task.
    fn handle_req_timeout(&mut self, ctx: &mut Ctx<'_, Ev>, id: ReqId) {
        let req = self.requests.get(id).0;
        let done = self.tasks[req.task_idx as usize]
            .done
            .get(req.req_idx as usize)
            .copied()
            .unwrap_or(true);
        if req.superseded || done {
            self.deref_req(id);
            return;
        }
        self.counters.timeouts_fired += 1;
        if self.can_retry(&req) {
            // The original attempt's chain reference is still live (its
            // response or NACK has not arrived — the request is not
            // done), so the record survives this timer's release.
            self.requests.get_mut(id).0.superseded = true;
            self.deref_req(id);
            self.issue_retry(ctx, req);
        } else {
            self.deref_req(id);
            let tc = self.timeout.expect("timeout event without config");
            let failure = if tc.max_retries == 0 {
                TaskFailure::TimedOut
            } else {
                TaskFailure::RetriesExhausted
            };
            self.fail_task(req.task_idx, failure, req.priority);
            if self.clients[req.client as usize].held > 0 {
                self.pump(ctx, req.client);
            }
        }
    }

    /// A retry's backoff elapsed: re-enter the client's hold queue and
    /// pump — the attempt flows through normal admission from here.
    fn handle_retry_dispatch(&mut self, ctx: &mut Ctx<'_, Ev>, id: ReqId) {
        let req = self.requests.get(id).0;
        let done = self.tasks[req.task_idx as usize]
            .done
            .get(req.req_idx as usize)
            .copied()
            .unwrap_or(true);
        if done {
            // The request resolved (a late original response won, or the
            // task failed through a sibling) while this retry backed off.
            self.deref_req(id);
            return;
        }
        let cs = &mut self.clients[req.client as usize];
        cs.hold[req.group as usize].push(req.priority, id);
        cs.held += 1;
        self.pump(ctx, req.client);
    }

    /// Terminally fails a task (overload lane). The first terminal
    /// failure wins: recycling the `done` vector marks the task resolved
    /// for every later event that touches it (sibling responses, pending
    /// timers, backed-off retries), exactly like completion does.
    fn fail_task(&mut self, task_idx: u32, failure: TaskFailure, priority: Priority) {
        let task = &mut self.tasks[task_idx as usize];
        debug_assert!(!task.done.is_empty(), "task failed after resolving");
        let done = std::mem::take(&mut task.done);
        self.done_pool.push(done);
        match failure {
            TaskFailure::Dropped => self.counters.tasks_dropped += 1,
            TaskFailure::Shed => self.counters.tasks_shed += 1,
            TaskFailure::TimedOut | TaskFailure::RetriesExhausted => {
                self.counters.tasks_timed_out += 1
            }
        }
        if let Some(by_class) = &mut self.dropshed_by_class {
            let class = (u64::BITS - priority.0.leading_zeros()) as u8;
            let slot = by_class.entry(class).or_insert((0, 0));
            match failure {
                TaskFailure::Dropped => slot.0 += 1,
                TaskFailure::Shed => slot.1 += 1,
                TaskFailure::TimedOut | TaskFailure::RetriesExhausted => {}
            }
        }
        self.failed += 1;
        if self.completed + self.failed == self.tasks.len() {
            self.finished = true;
        }
    }

    fn handle_measure_tick(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let Realization::Credits(cc) = &self.realization else {
            return;
        };
        let interval_ns = cc.measurement_interval_ns;
        let dt_secs = interval_ns as f64 / 1e9;
        let replication = self.cfg.cluster.replication as f64;
        let n_servers = self.cfg.cluster.num_servers as usize;

        for c in 0..self.clients.len() {
            let mut demands = self.take_payload();
            {
                self.rate_scratch.clear();
                self.rate_scratch.resize(n_servers, 0.0);
                let cs = &mut self.clients[c];
                let rates = &mut self.rate_scratch;
                for (s, rate) in rates.iter_mut().enumerate() {
                    *rate = cs.dispatched_since_measure[s] as f64 / dt_secs;
                    cs.dispatched_since_measure[s] = 0;
                }
                // Held requests are demand too: attribute them equally to
                // the replicas of their group.
                for (g, q) in cs.hold.iter().enumerate() {
                    let held = q.len() as f64;
                    if held > 0.0 {
                        for s in &self.group_replicas[g] {
                            rates[s.index()] += held / (replication * dt_secs);
                        }
                    }
                }
                for (s, &inst) in rates.iter().enumerate() {
                    // Fast-attack, slow-decay smoothing: react instantly
                    // to demand growth, forget old demand over ~3 windows.
                    let ewma = &mut cs.demand_ewma[s];
                    *ewma = if inst > *ewma {
                        inst
                    } else {
                        0.3 * inst + 0.7 * *ewma
                    };
                    if *ewma > 0.0 {
                        demands.push((s as u16, *ewma));
                    }
                }
            }
            if demands.is_empty() {
                self.recycle_payload(demands);
            } else {
                let payload = self.payloads.insert(demands);
                let delay = self.hop_delay(Hop::ClientToController { client: c as u16 }, 256);
                ctx.schedule_in(delay, Ev::DemandAtController(c as u16, payload));
            }
        }
        if !self.finished {
            ctx.schedule_in(SimDuration::from_nanos(interval_ns), Ev::MeasureTick);
        }
    }

    fn handle_adapt_tick(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let Realization::Credits(cc) = &self.realization else {
            return;
        };
        let interval_ns = cc.adaptation_interval_ns;
        // Refill the pooled grant table in place (closing the ROADMAP
        // open item: the old `allocate()` built a fresh table each tick).
        self.controller
            .as_mut()
            .expect("credits realization")
            .allocate_into(&mut self.grant_table);
        // Regroup per client into the reusable scratch; each non-empty
        // grant vector is swapped against a pooled one and shipped by
        // slab key, so delivery allocates nothing in steady state.
        for scratch in &mut self.grant_scratch {
            scratch.clear();
        }
        for (s, row) in self.grant_table.iter() {
            for &(client, rate) in row {
                self.grant_scratch[client.index()].push((s as u16, rate));
            }
        }
        for c in 0..self.clients.len() {
            if self.grant_scratch[c].is_empty() {
                continue;
            }
            let replacement = self.take_payload();
            let grant = std::mem::replace(&mut self.grant_scratch[c], replacement);
            let payload = self.payloads.insert(grant);
            let delay = self.hop_delay(Hop::ControllerToClient { client: c as u16 }, 256);
            ctx.schedule_in(delay, Ev::GrantAtClient(c as u16, payload));
        }
        if !self.finished {
            ctx.schedule_in(SimDuration::from_nanos(interval_ns), Ev::AdaptTick);
        }
    }

    fn handle_grant(&mut self, ctx: &mut Ctx<'_, Ev>, client: u16, payload: PayloadId) {
        let grants = self.payloads.remove(payload);
        let Realization::Credits(cc) = &self.realization else {
            self.recycle_payload(grants);
            return;
        };
        let burst_secs = cc.burst_secs;
        let now_ns = ctx.now().as_nanos();
        {
            let cs = &mut self.clients[client as usize];
            for &(s, rate) in &grants {
                cs.buckets[s as usize].set_rate(now_ns, rate, burst_secs);
            }
        }
        self.recycle_payload(grants);
        self.counters.grants_delivered += 1;
        if self.clients[client as usize].held > 0 {
            self.pump(ctx, client);
        }
    }
}

enum Admission {
    Dispatch(ServerId),
    ToGlobal,
    Denied { retry_in_ns: u64 },
}

/// Capped exponential backoff before retry `attempt` (1-based):
/// `min(base · 2^(attempt-1), cap)`, in nanoseconds. A zero base means
/// immediate retry; a zero cap means uncapped.
fn retry_backoff_ns(tc: &TimeoutConfig, attempt: u8) -> u64 {
    if tc.backoff_base_us == 0 {
        return 0;
    }
    let shift = u32::from(attempt).saturating_sub(1).min(32);
    let mut us = tc.backoff_base_us.saturating_mul(1u64 << shift);
    if tc.backoff_cap_us > 0 {
        us = us.min(tc.backoff_cap_us);
    }
    us.saturating_mul(1_000)
}

/// The engine's message classes: every directed hop a message can take
/// across the fabric, by role. `hop_delay` resolves a class to concrete
/// fabric endpoints only when the mesh actually needs per-pair
/// resolution — constant meshes never touch the node-id math.
#[derive(Debug, Clone, Copy)]
enum Hop {
    /// Request dispatch (original or hedge duplicate), value bytes on
    /// the wire.
    ClientToServer { client: u16, server: u16 },
    /// Response back to the owning client, value bytes on the wire.
    ServerToClient { server: u16, client: u16 },
    /// Demand report to the credits controller (~256 B).
    ClientToController { client: u16 },
    /// Grant delivery from the credits controller (~256 B).
    ControllerToClient { client: u16 },
    /// Congestion signal to the credits controller (~64 B).
    ServerToController { server: u16 },
}

impl World for EngineWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, event: Ev) {
        match event {
            Ev::TaskArrive(i) => self.handle_task_arrival(ctx, i),
            Ev::Pump(c) => {
                if self.clients[c as usize].held > 0 {
                    self.pump(ctx, c);
                } else {
                    self.clients[c as usize].pump_at = None;
                }
            }
            Ev::ReqAtServer(s, req) => self.handle_req_at_server(ctx, s, req),
            Ev::SvcDone(s, req, ns) => self.handle_svc_done(ctx, s, req, ns),
            Ev::RespAtClient(id, from, queue_len, service_ns) => {
                self.handle_resp_at_client(ctx, id, from, queue_len, service_ns)
            }
            Ev::ReqAtGlobal(req) => self.handle_req_at_global(ctx, req),
            Ev::MeasureTick => self.handle_measure_tick(ctx),
            Ev::DemandAtController(client, payload) => {
                self.counters.demand_reports += 1;
                let demands = self.payloads.remove(payload);
                let ctrl = self.controller.as_mut().expect("credits realization");
                for &(s, rate) in &demands {
                    ctrl.report_demand(
                        brb_store::ids::ClientId::new(client as u64),
                        ServerId::new(s as u64),
                        rate,
                    );
                }
                self.recycle_payload(demands);
            }
            Ev::CongestionAtController(s) => {
                self.controller
                    .as_mut()
                    .expect("credits realization")
                    .signal_congestion(ServerId::new(s as u64));
            }
            Ev::AdaptTick => self.handle_adapt_tick(ctx),
            Ev::GrantAtClient(c, grants) => self.handle_grant(ctx, c, grants),
            Ev::HedgeFire(req) => self.handle_hedge_fire(ctx, req),
            Ev::TelemetryTick => self.handle_telemetry_tick(ctx),
            Ev::Nack(req, from, reason) => self.handle_nack(ctx, req, from, reason),
            Ev::ReqTimeout(req) => self.handle_req_timeout(ctx, req),
            Ev::RetryDispatch(req) => self.handle_retry_dispatch(ctx, req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{paper_small_config, OverloadConfig, QueueConfig, TimeoutConfig};
    use brb_sched::CoDelConfig;
    use brb_sim::Simulation;

    fn run(strategy: Strategy, seed: u64, tasks: usize) -> Simulation<EngineWorld> {
        let cfg = paper_small_config(strategy, seed, tasks);
        let world = EngineWorld::new(cfg);
        let mut sim = Simulation::new(world);
        EngineWorld::prime(&mut sim);
        sim.run();
        sim
    }

    fn overload_run(
        strategy: Strategy,
        seed: u64,
        tasks: usize,
        load: f64,
        overload: OverloadConfig,
    ) -> Simulation<EngineWorld> {
        let mut cfg = paper_small_config(strategy, seed, tasks);
        cfg.workload.load = load;
        cfg.overload = overload;
        let world = EngineWorld::new(cfg);
        let mut sim = Simulation::new(world);
        EngineWorld::prime(&mut sim);
        sim.run();
        sim
    }

    /// Every task resolves exactly once and the pooled records drain —
    /// the conservation invariant every overload test leans on.
    fn assert_conserved(w: &EngineWorld, tasks: usize) {
        assert!(w.is_finished());
        assert_eq!(w.completed_tasks() + w.failed_tasks(), tasks);
        let c = &w.counters;
        assert_eq!(
            c.tasks_dropped + c.tasks_shed + c.tasks_timed_out,
            w.failed_tasks() as u64
        );
        assert_eq!(w.live_requests(), 0, "overload run leaked records");
    }

    #[test]
    fn c3_completes_all_tasks() {
        let sim = run(Strategy::c3(), 1, 2_000);
        let w = sim.world();
        assert!(w.is_finished());
        assert_eq!(w.completed_tasks(), 2_000);
        assert!(!w.task_latency.is_empty());
        assert!(w.counters.dispatched >= 2_000);
    }

    /// Calendar entries are the hot-path currency: the event enum must
    /// stay pointer-small so millions of entries stream through cache.
    #[test]
    fn event_enum_stays_small() {
        assert!(
            std::mem::size_of::<Ev>() <= 24,
            "Ev grew to {} bytes",
            std::mem::size_of::<Ev>()
        );
    }

    /// The pooled-record lifecycle must balance exactly: after a run to
    /// exhaustion no slab entry may survive, for every realization —
    /// including hedging, whose timers hold second references.
    #[test]
    fn request_slab_drains_for_every_strategy() {
        let mut strategies = Strategy::figure2_set();
        strategies.push(Strategy::hedged_default());
        for (i, strategy) in strategies.into_iter().enumerate() {
            let sim = run(strategy, 20 + i as u64, 1_000);
            let w = sim.world();
            assert!(w.is_finished());
            assert_eq!(w.live_requests(), 0, "strategy {i} leaked records");
        }
    }

    #[test]
    fn credits_completes_all_tasks_and_reports_demand() {
        let sim = run(Strategy::equal_max_credits(), 2, 2_000);
        let w = sim.world();
        assert!(w.is_finished());
        assert_eq!(w.completed_tasks(), 2_000);
        assert!(
            w.counters.demand_reports > 0,
            "controller never heard demand"
        );
        assert!(w.counters.grants_delivered > 0, "no grants delivered");
    }

    #[test]
    fn model_completes_all_tasks() {
        let sim = run(Strategy::unif_incr_model(), 3, 2_000);
        let w = sim.world();
        assert!(w.is_finished());
        assert_eq!(w.completed_tasks(), 2_000);
        // The global queue must be fully drained.
        assert_eq!(w.global.as_ref().unwrap().len(), 0);
    }

    #[test]
    fn work_is_conserved_across_strategies() {
        for (i, strategy) in Strategy::figure2_set().into_iter().enumerate() {
            let sim = run(strategy, 10 + i as u64, 500);
            let w = sim.world();
            let total_requests: u64 = w.trace.iter().map(|t| t.requests.len() as u64).sum();
            let served: u64 = w.servers.iter().map(|s| s.served).sum();
            assert_eq!(served, total_requests, "strategy {i} lost work");
            assert_eq!(w.counters.dispatched, total_requests);
        }
    }

    #[test]
    fn same_seed_same_results() {
        let a = run(Strategy::equal_max_credits(), 7, 800);
        let b = run(Strategy::equal_max_credits(), 7, 800);
        assert_eq!(
            a.world().task_latency.value_at_percentile(99.0),
            b.world().task_latency.value_at_percentile(99.0)
        );
        assert_eq!(a.events_executed(), b.events_executed());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(Strategy::c3(), 1, 800);
        let b = run(Strategy::c3(), 2, 800);
        assert_ne!(
            (a.events_executed(), a.now()),
            (b.events_executed(), b.now())
        );
    }

    #[test]
    fn utilization_is_sane() {
        let sim = run(Strategy::c3(), 5, 3_000);
        let w = sim.world();
        let span = sim.now().as_nanos();
        let u = w.mean_utilization(span);
        // 70% offered load; allow wide tolerance on a short run.
        assert!((0.3..0.95).contains(&u), "utilization {u}");
    }

    #[test]
    fn warmup_excludes_early_tasks() {
        let sim = run(Strategy::c3(), 6, 1_000);
        let w = sim.world();
        assert!(w.measured_tasks() < 1_000);
        assert!(w.measured_tasks() > 800);
    }

    #[test]
    fn telemetry_samples_when_enabled() {
        let mut cfg = paper_small_config(Strategy::equal_max_credits(), 4, 2_000);
        cfg.telemetry_interval_ns = Some(10_000_000); // 10ms
        let world = EngineWorld::new(cfg);
        let mut sim = Simulation::new(world);
        EngineWorld::prime(&mut sim);
        sim.run();
        let w = sim.world();
        assert!(w.is_finished());
        // ~200ms of virtual time → ≥15 samples.
        assert!(w.timeline.len() >= 15, "only {} samples", w.timeline.len());
        let mut prev = 0;
        for s in &w.timeline.samples {
            assert!(s.t_ns >= prev);
            prev = s.t_ns;
            assert_eq!(s.server_queue.len(), 9);
            assert_eq!(s.busy_cores.len(), 9);
            assert_eq!(s.client_held.len(), 18);
            assert!(s.busy_cores.iter().all(|&b| b <= 4));
        }
        // The last sample must see (nearly) all tasks completed.
        assert!(w.timeline.samples.last().unwrap().completed_tasks >= 1_900);
        // Queues were actually observed doing something.
        assert!(w.timeline.peak_queued() > 0);
    }

    #[test]
    fn telemetry_disabled_costs_nothing() {
        let sim = run(Strategy::c3(), 4, 500);
        assert!(sim.world().timeline.is_empty());
    }

    #[test]
    fn hedging_issues_duplicates_and_still_completes() {
        let sim = run(Strategy::hedged_default(), 8, 3_000);
        let w = sim.world();
        assert!(w.is_finished());
        assert_eq!(w.completed_tasks(), 3_000);
        assert!(
            w.counters.hedges_issued > 0,
            "a p99-level trigger must fire on tail requests"
        );
        // A p99-level trigger duplicates a small fraction of traffic —
        // enough hedging pressure to matter but no runaway feedback loop.
        let total_requests: u64 = w.trace.iter().map(|t| t.requests.len() as u64).sum();
        assert!(
            w.counters.hedges_issued < total_requests / 5,
            "hedging {}/{} requests is runaway duplication",
            w.counters.hedges_issued,
            total_requests
        );
        assert!(w.counters.duplicate_responses <= w.counters.hedges_issued);
        // Work done = originals + hedges that actually reached a server.
        let served: u64 = w.servers.iter().map(|s| s.served).sum();
        assert_eq!(served, w.counters.dispatched);
    }

    /// An aggressive (near-median) trigger would destabilize the cluster
    /// — hedges add load, load inflates latencies, latencies fire more
    /// hedges — so the client-side budget must clamp duplication at ~5%
    /// of issued traffic no matter how hot the trigger runs.
    #[test]
    fn aggressive_hedging_is_capped_by_the_budget() {
        let sim = run(
            Strategy::Hedged {
                selector: SelectorKind::LeastOutstanding,
                delay_us: 1_000,
            },
            8,
            3_000,
        );
        let w = sim.world();
        assert!(w.is_finished());
        let total_requests: u64 = w.trace.iter().map(|t| t.requests.len() as u64).sum();
        assert!(w.counters.hedges_issued > 0, "trigger must fire");
        let ratio = w.counters.hedges_issued as f64 / total_requests as f64;
        assert!(
            ratio <= 0.06,
            "budget breached: {:.1}% hedges",
            ratio * 100.0
        );
    }

    /// Hedging's canonical win (Dean & Barroso): *transient* stragglers
    /// — rare network spikes at moderate utilization — are rescued by
    /// re-issuing the request, because a healthy duplicate path almost
    /// certainly avoids the spike and spare capacity absorbs the ~2%
    /// extra load. (A *sustained* bottleneck — e.g. a persistently slow
    /// replica near saturation — is exactly what hedging cannot fix:
    /// duplicates add load precisely where there is no headroom, which
    /// the aggressive-trigger ablation demonstrates.)
    #[test]
    fn hedging_absorbs_transient_latency_spikes() {
        let run_with_spikes = |strategy: Strategy, seed: u64| {
            let mut cfg = paper_small_config(strategy, seed, 4_000);
            cfg.workload.load = 0.3;
            // 1% of messages eat a 10–20ms in-network spike — far above
            // the 5ms hedge trigger, so spiked requests get re-issued.
            cfg.cluster.latency = brb_net::LatencyModel::Spiky {
                base_ns: 50_000,
                p_spike: 0.01,
                spike_lo_ns: 10_000_000,
                spike_hi_ns: 20_000_000,
            };
            let world = EngineWorld::new(cfg);
            let mut sim = Simulation::new(world);
            EngineWorld::prime(&mut sim);
            sim.run();
            sim
        };
        for seed in [9u64, 10, 11] {
            let plain = run_with_spikes(
                Strategy::Direct {
                    selector: SelectorKind::Random,
                    policy: PolicyKind::Fifo,
                    priority_queues: false,
                },
                seed,
            );
            let hedged = run_with_spikes(
                Strategy::Hedged {
                    selector: SelectorKind::Random,
                    delay_us: 5_000,
                },
                seed,
            );
            let plain_p99 = plain.world().task_latency.value_at_percentile(99.0) as f64;
            let hedged_p99 = hedged.world().task_latency.value_at_percentile(99.0) as f64;
            assert!(hedged.world().counters.hedges_issued > 0, "trigger idle");
            // The win is large (≈3×), so demand a solid margin, not a
            // coin-flip direction.
            assert!(
                hedged_p99 < plain_p99 * 0.6,
                "seed {seed}: hedging should absorb spikes: {hedged_p99}ns vs {plain_p99}ns"
            );
        }
    }

    #[test]
    fn bounded_queue_drops_and_conserves_past_saturation() {
        let ov = OverloadConfig {
            queue: Some(QueueConfig {
                capacity: 64,
                shed_above: None,
                codel: None,
                priority_stats: false,
            }),
            timeout: None,
        };
        let sim = overload_run(Strategy::c3(), 1, 2_000, 1.3, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        assert!(w.counters.requests_dropped > 0, "1.3× load must tail-drop");
        assert!(w.counters.tasks_dropped > 0);
        assert_eq!(w.counters.requests_shed, 0, "no watermark configured");
        assert!(
            w.peak_server_queue() <= 64,
            "bound breached: peak {}",
            w.peak_server_queue()
        );
        assert!(w.completed_tasks() > 0, "goodput must not collapse to zero");
    }

    #[test]
    fn shed_watermark_fires_before_tail_drop() {
        let ov = OverloadConfig {
            queue: Some(QueueConfig {
                capacity: 64,
                shed_above: Some(32),
                codel: None,
                priority_stats: false,
            }),
            timeout: None,
        };
        let sim = overload_run(Strategy::c3(), 2, 2_000, 1.3, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        assert!(w.counters.requests_shed > 0, "watermark must shed");
        assert!(w.counters.tasks_shed > 0);
        // Admission control keeps depth at the watermark, so the
        // tail-drop bound above it can never fire.
        assert_eq!(w.counters.requests_dropped, 0);
        assert!(w.peak_server_queue() <= 32);
    }

    #[test]
    fn codel_sheds_sojourn_under_sustained_overload() {
        let ov = OverloadConfig {
            queue: Some(QueueConfig {
                capacity: 100_000,
                shed_above: None,
                codel: Some(CoDelConfig::paper_default()),
                priority_stats: false,
            }),
            timeout: None,
        };
        let sim = overload_run(Strategy::c3(), 3, 2_000, 1.3, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        // The capacity is effectively unbounded: every drop here is the
        // AQM ejecting over-sojourn heads at dequeue.
        assert!(w.counters.requests_dropped > 0, "CoDel never fired");
        assert_eq!(w.counters.requests_shed, 0);
        assert!(w.completed_tasks() > w.failed_tasks(), "AQM too aggressive");
    }

    #[test]
    fn model_realization_honors_bound_and_codel() {
        let ov = OverloadConfig {
            queue: Some(QueueConfig {
                capacity: 256,
                shed_above: None,
                codel: Some(CoDelConfig::paper_default()),
                priority_stats: false,
            }),
            timeout: None,
        };
        let sim = overload_run(Strategy::unif_incr_model(), 4, 2_000, 1.3, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        assert!(w.counters.requests_dropped > 0);
        assert_eq!(w.global.as_ref().unwrap().len(), 0);
    }

    #[test]
    fn timeouts_without_retries_fail_tasks_typed() {
        let ov = OverloadConfig {
            queue: None,
            timeout: Some(TimeoutConfig {
                timeout_us: 5_000,
                max_retries: 0,
                backoff_base_us: 0,
                backoff_cap_us: 0,
                retry_budget_percent: None,
            }),
        };
        let sim = overload_run(Strategy::c3(), 5, 2_000, 1.2, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        assert!(w.counters.timeouts_fired > 0, "1.2× must blow a 5ms budget");
        assert!(w.counters.tasks_timed_out > 0);
        assert_eq!(w.counters.retries_issued, 0);
        assert_eq!(w.counters.tasks_dropped + w.counters.tasks_shed, 0);
    }

    #[test]
    fn retries_amplify_offered_load_then_exhaust() {
        let ov = OverloadConfig {
            queue: None,
            timeout: Some(TimeoutConfig {
                timeout_us: 5_000,
                max_retries: 3,
                backoff_base_us: 100,
                backoff_cap_us: 1_000,
                retry_budget_percent: None,
            }),
        };
        let sim = overload_run(Strategy::c3(), 6, 2_000, 1.2, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        assert!(
            w.counters.retries_issued > 0,
            "timeouts must trigger retries"
        );
        // The storm: every retry is a fresh dispatch on top of the
        // originals, amplifying offered load past what arrived.
        let total_requests: u64 = w.trace.iter().map(|t| t.requests.len() as u64).sum();
        assert!(
            w.counters.dispatched > total_requests,
            "retries must amplify dispatch: {} vs {total_requests}",
            w.counters.dispatched
        );
    }

    #[test]
    fn retry_budget_caps_the_storm() {
        let budget = 10u64;
        let ov = OverloadConfig {
            queue: None,
            timeout: Some(TimeoutConfig {
                timeout_us: 5_000,
                max_retries: 16,
                backoff_base_us: 0,
                backoff_cap_us: 0,
                retry_budget_percent: Some(budget as u32),
            }),
        };
        let sim = overload_run(Strategy::c3(), 7, 2_000, 1.2, ov);
        let w = sim.world();
        assert_conserved(w, 2_000);
        assert!(w.counters.retries_issued > 0);
        // Per-client: retried*100 < dispatched*budget held at every
        // issue, so globally retries stay within the budget plus one
        // attempt of slack per client.
        let clients = w.clients.len() as u64;
        assert!(
            w.counters.retries_issued * 100 <= w.counters.dispatched * budget + 100 * clients,
            "budget breached: {} retries vs {} dispatched",
            w.counters.retries_issued,
            w.counters.dispatched
        );
    }

    #[test]
    fn overload_runs_are_deterministic() {
        let ov = OverloadConfig {
            queue: Some(QueueConfig {
                capacity: 64,
                shed_above: Some(48),
                codel: Some(CoDelConfig::paper_default()),
                priority_stats: false,
            }),
            timeout: Some(TimeoutConfig {
                timeout_us: 10_000,
                max_retries: 2,
                backoff_base_us: 200,
                backoff_cap_us: 2_000,
                retry_budget_percent: Some(20),
            }),
        };
        let a = overload_run(Strategy::c3(), 9, 1_000, 1.3, ov);
        let b = overload_run(Strategy::c3(), 9, 1_000, 1.3, ov);
        assert_eq!(a.events_executed(), b.events_executed());
        assert_eq!(a.now(), b.now());
        assert_eq!(
            a.world().completed_tasks() + a.world().failed_tasks(),
            b.world().completed_tasks() + b.world().failed_tasks()
        );
        assert_eq!(
            a.world().counters.retries_issued,
            b.world().counters.retries_issued
        );
    }

    #[test]
    fn retry_backoff_is_capped_exponential() {
        let tc = TimeoutConfig {
            timeout_us: 1_000,
            max_retries: 16,
            backoff_base_us: 100,
            backoff_cap_us: 800,
            retry_budget_percent: None,
        };
        assert_eq!(retry_backoff_ns(&tc, 1), 100_000);
        assert_eq!(retry_backoff_ns(&tc, 2), 200_000);
        assert_eq!(retry_backoff_ns(&tc, 4), 800_000);
        assert_eq!(retry_backoff_ns(&tc, 10), 800_000, "cap must hold");
        let immediate = TimeoutConfig {
            backoff_base_us: 0,
            ..tc
        };
        assert_eq!(retry_backoff_ns(&immediate, 3), 0);
        let uncapped = TimeoutConfig {
            backoff_cap_us: 0,
            ..tc
        };
        assert_eq!(retry_backoff_ns(&uncapped, 4), 800_000);
        assert_eq!(retry_backoff_ns(&uncapped, 5), 1_600_000);
    }

    /// Past saturation an unbounded queue's peak depth is the excess
    /// load integrated over the run — it scales with the task horizon.
    /// The bound pins it at capacity regardless of horizon and accounts
    /// the excess as drops instead.
    #[test]
    fn unbounded_backlog_scales_with_horizon_where_the_bound_pins_it() {
        let off = OverloadConfig::default();
        let short = overload_run(Strategy::c3(), 5, 2_000, 1.3, off);
        let long = overload_run(Strategy::c3(), 5, 4_000, 1.3, off);
        let (ps, pl) = (
            short.world().peak_server_queue(),
            long.world().peak_server_queue(),
        );
        // C3's rate control throttles the excess, so growth is
        // sub-linear in the horizon — but it must still *grow* (and be
        // far past any bounded capacity), which is the regression.
        assert!(
            pl > ps + ps / 4,
            "unbounded backlog should grow with the horizon: {ps} -> {pl}"
        );
        assert!(
            ps > 64 * 2,
            "unbounded backlog should dwarf the bound: {ps}"
        );

        let ov = OverloadConfig {
            queue: Some(QueueConfig {
                capacity: 64,
                shed_above: None,
                codel: Some(CoDelConfig::paper_default()),
                priority_stats: false,
            }),
            timeout: None,
        };
        for tasks in [2_000, 4_000] {
            let sim = overload_run(Strategy::c3(), 5, tasks, 1.3, ov);
            let w = sim.world();
            assert!(w.peak_server_queue() <= 64, "the bound must pin the peak");
            assert!(w.counters.tasks_dropped > 0);
            assert_conserved(w, tasks);
        }
    }

    #[test]
    fn model_beats_fifo_c3_at_the_tail() {
        // The ideal realization should not lose to the realizable baseline
        // (sanity direction check at small scale; the full claim is
        // validated in the figure2 bench). Averaged over eight seeds: a
        // single 4k-task run's p99 rests on ~40 samples, and per-seed
        // comparisons between *independently evolving* runs swing ±10% —
        // the direction claim is about the expectation.
        let mean_p99 = |strategy: Strategy| -> f64 {
            let seeds = [40u64, 41, 42, 43, 44, 45, 46, 47];
            seeds
                .iter()
                .map(|&seed| {
                    let sim = run(strategy.clone(), seed, 4_000);
                    sim.world().task_latency.value_at_percentile(99.0) as f64
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let c3_p99 = mean_p99(Strategy::c3());
        let model_p99 = mean_p99(Strategy::equal_max_model());
        assert!(
            model_p99 < c3_p99,
            "model p99 {model_p99}ns should beat C3 p99 {c3_p99}ns"
        );
    }
}
