//! Telemetry timelines: periodic snapshots of the cluster's internal
//! state over virtual time.
//!
//! Latency percentiles say *what* happened; timelines show *why* — where
//! queues built, which server ran hot, how big client backlogs grew while
//! credits adapted. Sampling is driven by the engine's telemetry tick
//! (`ExperimentConfig::telemetry_interval_ns`); with telemetry disabled
//! the engine never allocates a sample.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One snapshot of cluster state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Virtual time of the snapshot (ns).
    pub t_ns: u64,
    /// Queued requests per server (excluding in-service).
    pub server_queue: Vec<u32>,
    /// Busy cores per server.
    pub busy_cores: Vec<u32>,
    /// Requests held client-side awaiting admission, per client.
    pub client_held: Vec<u32>,
    /// Tasks completed so far.
    pub completed_tasks: u64,
    /// Requests in the global queue (model realization; 0 otherwise).
    pub global_queue: u32,
}

/// An ordered sequence of snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Snapshots in time order.
    pub samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no snapshots were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a snapshot (times must be non-decreasing).
    pub fn push(&mut self, sample: TimelineSample) {
        debug_assert!(
            self.samples.last().is_none_or(|p| p.t_ns <= sample.t_ns),
            "timeline must be time-ordered"
        );
        self.samples.push(sample);
    }

    /// Peak total queued requests (servers + global) over the run.
    pub fn peak_queued(&self) -> u32 {
        self.samples
            .iter()
            .map(|s| s.server_queue.iter().sum::<u32>() + s.global_queue)
            .max()
            .unwrap_or(0)
    }

    /// Peak client-side backlog over the run.
    pub fn peak_held(&self) -> u32 {
        self.samples
            .iter()
            .map(|s| s.client_held.iter().sum::<u32>())
            .max()
            .unwrap_or(0)
    }

    /// The per-server mean queue depth across the run.
    pub fn mean_queue_per_server(&self) -> Vec<f64> {
        let Some(first) = self.samples.first() else {
            return Vec::new();
        };
        let n = first.server_queue.len();
        let mut sums = vec![0.0f64; n];
        for s in &self.samples {
            for (acc, &q) in sums.iter_mut().zip(&s.server_queue) {
                *acc += q as f64;
            }
        }
        sums.iter()
            .map(|&x| x / self.samples.len() as f64)
            .collect()
    }

    /// Writes the timeline as CSV: one row per sample, one column per
    /// server queue, busy-core count, plus aggregates.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        let Some(first) = self.samples.first() else {
            return writeln!(w, "t_ms,completed").map(|_| ());
        };
        write!(w, "t_ms")?;
        for s in 0..first.server_queue.len() {
            write!(w, ",queue_s{s}")?;
        }
        for s in 0..first.busy_cores.len() {
            write!(w, ",busy_s{s}")?;
        }
        writeln!(w, ",held_total,global_queue,completed")?;
        for sample in &self.samples {
            write!(w, "{:.3}", sample.t_ns as f64 / 1e6)?;
            for q in &sample.server_queue {
                write!(w, ",{q}")?;
            }
            for b in &sample.busy_cores {
                write!(w, ",{b}")?;
            }
            writeln!(
                w,
                ",{},{},{}",
                sample.client_held.iter().sum::<u32>(),
                sample.global_queue,
                sample.completed_tasks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ns: u64, queues: Vec<u32>, held: Vec<u32>) -> TimelineSample {
        TimelineSample {
            t_ns,
            busy_cores: vec![0; queues.len()],
            server_queue: queues,
            client_held: held,
            completed_tasks: 0,
            global_queue: 0,
        }
    }

    #[test]
    fn aggregates_over_samples() {
        let mut t = Timeline::default();
        t.push(sample(0, vec![1, 2], vec![0]));
        t.push(sample(10, vec![5, 3], vec![4]));
        t.push(sample(20, vec![0, 0], vec![1]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.peak_queued(), 8);
        assert_eq!(t.peak_held(), 4);
        let means = t.mean_queue_per_server();
        assert!((means[0] - 2.0).abs() < 1e-12);
        assert!((means[1] - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let t = Timeline::default();
        assert!(t.is_empty());
        assert_eq!(t.peak_queued(), 0);
        assert!(t.mean_queue_per_server().is_empty());
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().starts_with("t_ms"));
    }

    #[test]
    fn csv_shape_matches_samples() {
        let mut t = Timeline::default();
        t.push(sample(1_000_000, vec![3, 4, 5], vec![2, 2]));
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "t_ms,queue_s0,queue_s1,queue_s2,busy_s0,busy_s1,busy_s2,held_total,global_queue,completed"
        );
        assert_eq!(lines[1], "1.000,3,4,5,0,0,0,4,0,0");
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Timeline::default();
        t.push(sample(5, vec![1], vec![9]));
        let json = serde_json::to_string(&t).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
