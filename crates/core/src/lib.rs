//! # brb-core — the BRB engine
//!
//! Ties the substrates together into the system the paper evaluates:
//! 18 application servers (clients) issuing batched read tasks against
//! 9 storage servers (4 cores each, ~3 500 req/s/core) over a 50 µs
//! network, under five strategies:
//!
//! | Strategy | Replica selection | Server queues | Priorities | Realization |
//! |---|---|---|---|---|
//! | C3 | C3 scoring + rate control | FIFO | none | direct dispatch |
//! | EqualMax-Credits | credit-gated | priority | EqualMax | credits controller |
//! | EqualMax-Model | work-pulling | global priority queue | EqualMax | ideal |
//! | UnifIncr-Credits | credit-gated | priority | UnifIncr | credits controller |
//! | UnifIncr-Model | work-pulling | global priority queue | UnifIncr | ideal |
//!
//! plus ablation combinations (any selector × any policy × FIFO/priority
//! queues) through [`config::Strategy::Direct`].
//!
//! Entry points: [`experiment::run_experiment`] for a single seeded run,
//! [`experiment::run_strategies_multi_seed`] for the paper's
//! 6-seed averaged comparisons.

pub mod config;
pub mod engine;
pub mod experiment;
pub mod slab;
pub mod task;
pub mod timeline;

pub use config::{
    ClusterConfig, ExperimentConfig, OverloadConfig, QueueConfig, SelectorKind, Strategy,
    TimeoutConfig, WorkloadConfig, WorkloadKind,
};
pub use engine::EngineWorld;
pub use experiment::{
    run_experiment, run_strategies_multi_seed, OverloadStats, OverloadSummary, RunResult,
    StrategySummary,
};
pub use slab::Slab;
pub use task::{BuiltRequest, BuiltTask, TaskBuilder};
pub use timeline::{Timeline, TimelineSample};
