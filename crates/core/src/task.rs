//! Task construction: splitting into sub-tasks, cost forecasting,
//! bottleneck identification and priority assignment.
//!
//! This is §2.1's client-side pipeline: "clients subdivide [a task] into a
//! set of sub-tasks, one for each replica group ... determine the
//! bottleneck sub-task based on the costliest sub-task and assign a
//! priority to every request in the task."

use brb_sched::{PolicyKind, Priority, PriorityPolicy, TaskView};
use brb_store::cost::CostModel;
use brb_store::ids::GroupId;
use brb_store::partition::Ring;
use brb_workload::taskgen::TaskSpec;

/// One request after client-side preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltRequest {
    /// The key to read.
    pub key: u64,
    /// Value size in bytes.
    pub value_bytes: u64,
    /// The replica group serving this key.
    pub group: GroupId,
    /// Forecast service cost in nanoseconds.
    pub cost_ns: u64,
    /// Assigned scheduling priority.
    pub priority: Priority,
}

/// A task after splitting, forecasting and priority assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuiltTask {
    /// Arrival time at the client (ns).
    pub arrival_ns: u64,
    /// Prepared requests, in the task's original request order.
    pub requests: Vec<BuiltRequest>,
    /// The bottleneck sub-task's total forecast cost (ns).
    pub bottleneck_cost_ns: u64,
    /// Number of distinct sub-tasks (replica groups touched).
    pub num_subtasks: usize,
}

impl BuiltTask {
    /// Splits `spec` into sub-tasks per replica group, forecasts costs and
    /// assigns priorities under `policy`.
    pub fn build(spec: &TaskSpec, ring: &Ring, cost: &CostModel, policy: PolicyKind) -> BuiltTask {
        let mut builder = TaskBuilder::default();
        builder.build(spec, ring, cost, policy);
        BuiltTask {
            arrival_ns: spec.arrival_ns,
            requests: builder.requests.clone(),
            bottleneck_cost_ns: builder.bottleneck_cost_ns,
            num_subtasks: builder.num_subtasks,
        }
    }
}

/// Reusable scratch for the client-side task pipeline. The engine builds
/// millions of tasks per sweep; owning the intermediate vectors here
/// (groups, costs, sub-task maps, priorities, built requests) makes a
/// steady-state [`TaskBuilder::build`] allocation-free.
#[derive(Debug, Default)]
pub struct TaskBuilder {
    groups: Vec<GroupId>,
    costs: Vec<u64>,
    subtask_of_group: Vec<(GroupId, usize)>,
    request_subtask: Vec<usize>,
    subtask_costs: Vec<u64>,
    priorities: Vec<Priority>,
    /// The built requests of the last [`build`][TaskBuilder::build] call,
    /// in the task's original request order.
    pub requests: Vec<BuiltRequest>,
    /// The bottleneck sub-task's total forecast cost (ns).
    pub bottleneck_cost_ns: u64,
    /// Number of distinct sub-tasks (replica groups touched).
    pub num_subtasks: usize,
}

impl TaskBuilder {
    /// Splits `spec` into sub-tasks, forecasts costs and assigns
    /// priorities under `policy`, leaving the result in
    /// [`requests`][TaskBuilder::requests] (valid until the next call).
    ///
    /// # Panics
    /// Panics if the task has no requests.
    pub fn build(&mut self, spec: &TaskSpec, ring: &Ring, cost: &CostModel, policy: PolicyKind) {
        let n = spec.requests.len();
        assert!(n > 0, "task {} has no requests", spec.id);

        // Forecast per-request costs and map keys to replica groups.
        self.groups.clear();
        self.costs.clear();
        for r in &spec.requests {
            self.groups.push(ring.group_of_key(r.key));
            self.costs.push(cost.forecast_ns(r.value_bytes));
        }

        // Dense sub-task indices in first-touch order; cost of a sub-task
        // is the sum of its requests' costs (they may serialize on one
        // replica).
        self.subtask_of_group.clear();
        self.request_subtask.clear();
        self.subtask_costs.clear();
        for (i, &g) in self.groups.iter().enumerate() {
            let idx = match self.subtask_of_group.iter().find(|(gg, _)| *gg == g) {
                Some((_, idx)) => *idx,
                None => {
                    let idx = self.subtask_costs.len();
                    self.subtask_of_group.push((g, idx));
                    self.subtask_costs.push(0);
                    idx
                }
            };
            self.request_subtask.push(idx);
            self.subtask_costs[idx] += self.costs[i];
        }

        let view = TaskView {
            arrival_ns: spec.arrival_ns,
            request_costs: &self.costs,
            request_subtask: &self.request_subtask,
            subtask_costs: &self.subtask_costs,
        };
        debug_assert!(view.validate().is_ok(), "{:?}", view.validate());
        self.bottleneck_cost_ns = view.bottleneck_cost();
        policy.assign_into(&view, &mut self.priorities);
        self.num_subtasks = self.subtask_costs.len();

        self.requests.clear();
        for i in 0..n {
            self.requests.push(BuiltRequest {
                key: spec.requests[i].key,
                value_bytes: spec.requests[i].value_bytes,
                group: self.groups[i],
                cost_ns: self.costs[i],
                priority: self.priorities[i],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_store::service::{ServiceModel, ServiceNoise};
    use brb_workload::taskgen::RequestSpec;

    fn cost_model() -> CostModel {
        CostModel::exact(ServiceModel::calibrated_size_linear(
            285_714.0,
            300.0,
            0.5,
            ServiceNoise::None,
        ))
    }

    fn spec(keys_and_sizes: &[(u64, u64)]) -> TaskSpec {
        TaskSpec {
            id: 0,
            arrival_ns: 1_000,
            requests: keys_and_sizes
                .iter()
                .map(|&(key, value_bytes)| RequestSpec { key, value_bytes })
                .collect(),
        }
    }

    #[test]
    fn requests_partition_into_subtasks() {
        let ring = Ring::paper_default();
        // Find two keys sharing a group and one on a different group.
        let mut same = Vec::new();
        let g0 = ring.group_of_key(0);
        for k in 0..10_000u64 {
            if ring.group_of_key(k) == g0 {
                same.push(k);
            }
            if same.len() == 2 {
                break;
            }
        }
        let other = (0..10_000u64)
            .find(|&k| ring.group_of_key(k) != g0)
            .unwrap();
        let t = BuiltTask::build(
            &spec(&[(same[0], 100), (same[1], 100), (other, 100)]),
            &ring,
            &cost_model(),
            PolicyKind::EqualMax,
        );
        assert_eq!(t.num_subtasks, 2);
        assert_eq!(t.requests[0].group, t.requests[1].group);
        assert_ne!(t.requests[0].group, t.requests[2].group);
        // Bottleneck = the two-request group's summed cost.
        let c = cost_model().forecast_ns(100);
        assert_eq!(t.bottleneck_cost_ns, 2 * c);
    }

    #[test]
    fn equal_max_uniform_priorities() {
        let ring = Ring::paper_default();
        let t = BuiltTask::build(
            &spec(&[(1, 100), (2, 5_000), (3, 50)]),
            &ring,
            &cost_model(),
            PolicyKind::EqualMax,
        );
        let p0 = t.requests[0].priority;
        assert!(t.requests.iter().all(|r| r.priority == p0));
        assert_eq!(p0, Priority::from_cost_ns(t.bottleneck_cost_ns));
    }

    #[test]
    fn unif_incr_prioritizes_expensive_requests() {
        let ring = Ring::paper_default();
        let t = BuiltTask::build(
            &spec(&[(1, 100), (2, 500_000), (3, 50)]),
            &ring,
            &cost_model(),
            PolicyKind::UnifIncr,
        );
        // Find the big request; it must carry the smallest priority value.
        let big = t.requests.iter().max_by_key(|r| r.value_bytes).unwrap();
        for r in &t.requests {
            assert!(big.priority <= r.priority);
        }
    }

    #[test]
    fn fifo_priorities_are_arrival_time() {
        let ring = Ring::paper_default();
        let t = BuiltTask::build(
            &spec(&[(1, 100), (2, 200)]),
            &ring,
            &cost_model(),
            PolicyKind::Fifo,
        );
        for r in &t.requests {
            assert_eq!(r.priority, Priority::from_deadline_ns(1_000));
        }
    }

    #[test]
    fn costs_are_size_monotone() {
        let ring = Ring::paper_default();
        let t = BuiltTask::build(
            &spec(&[(1, 10), (2, 10_000)]),
            &ring,
            &cost_model(),
            PolicyKind::Sjf,
        );
        assert!(t.requests[1].cost_ns > t.requests[0].cost_ns);
        assert!(t.requests[1].priority > t.requests[0].priority);
    }

    #[test]
    fn single_request_task() {
        let ring = Ring::paper_default();
        let t = BuiltTask::build(
            &spec(&[(42, 300)]),
            &ring,
            &cost_model(),
            PolicyKind::UnifIncr,
        );
        assert_eq!(t.num_subtasks, 1);
        assert_eq!(t.bottleneck_cost_ns, t.requests[0].cost_ns);
        // Sole request has zero slack.
        assert_eq!(t.requests[0].priority, Priority::URGENT);
    }

    #[test]
    #[should_panic(expected = "has no requests")]
    fn empty_task_rejected() {
        let ring = Ring::paper_default();
        BuiltTask::build(&spec(&[]), &ring, &cost_model(), PolicyKind::Fifo);
    }
}
