//! Property-based tests for the DES kernel's ordering guarantees,
//! including differential tests of the timer-wheel [`Calendar`] against
//! the reference [`HeapCalendar`].

use brb_sim::{Calendar, Ctx, HeapCalendar, RunLimit, SimDuration, SimTime, Simulation, World};
use proptest::prelude::*;

/// One step of a randomized calendar workout.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at an absolute offset from the last popped time.
    PushAhead(u64),
    /// Push at exactly the last popped time (the zero-delay case).
    PushNow,
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Offsets span every wheel level and the overflow tier.
        (0u64..200_000).prop_map(Op::PushAhead),
        (0u64..50_000_000).prop_map(Op::PushAhead),
        (0u64..2_000_000_000_000).prop_map(Op::PushAhead),
        Just(Op::PushNow),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    /// The timer wheel pops in *exactly* the same order as the reference
    /// binary-heap calendar for arbitrary interleavings of pushes and
    /// pops — including same-instant ties and pushes at the instant
    /// currently being drained (what `schedule_in(ZERO)` produces).
    #[test]
    fn wheel_matches_heap_on_interleavings(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = Calendar::new();
        let mut heap = HeapCalendar::new();
        let mut tag = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::PushAhead(offset) => {
                    let t = SimTime::from_nanos(now.saturating_add(offset));
                    wheel.push(t, tag);
                    heap.push(t, tag);
                    tag += 1;
                }
                Op::PushNow => {
                    let t = SimTime::from_nanos(now);
                    wheel.push(t, tag);
                    heap.push(t, tag);
                    tag += 1;
                }
                Op::Pop => {
                    let got = wheel.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want, "pop order diverged");
                    if let Some((t, _)) = got {
                        now = t.as_nanos();
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain both to the end: the full remaining order must agree.
        loop {
            let got = wheel.pop();
            let want = heap.pop();
            prop_assert_eq!(got, want, "drain order diverged");
            if got.is_none() {
                break;
            }
        }
    }

    /// A hop-lane-enabled wheel pops in *exactly* the reference heap's
    /// order for arbitrary interleavings of lane-delta pushes (relative
    /// `push_after` at the fixed delta), wheel pushes and pops — the
    /// lane is a routing optimization, never an ordering change. This is
    /// the kernel-level half of the engine's fast-vs-slow-path
    /// differential guarantee.
    #[test]
    fn hop_lane_matches_heap_on_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        delta in prop_oneof![Just(50_000u64), 1u64..400_000],
    ) {
        let mut wheel = Calendar::new();
        wheel.set_hop_lane(SimDuration::from_nanos(delta));
        let mut heap = HeapCalendar::new();
        let mut tag = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                // Reinterpret absolute-offset pushes as the engine's
                // relative sends: every third one lands exactly on the
                // lane delta, the rest miss it and take the wheel.
                Op::PushAhead(offset) => {
                    let d = if tag.is_multiple_of(3) { delta } else { offset };
                    let t = SimTime::from_nanos(now.saturating_add(d));
                    wheel.push_after(t, SimDuration::from_nanos(d), tag);
                    heap.push(t, tag);
                    tag += 1;
                }
                Op::PushNow => {
                    let t = SimTime::from_nanos(now);
                    wheel.push_after(t, SimDuration::ZERO, tag);
                    heap.push(t, tag);
                    tag += 1;
                }
                Op::Pop => {
                    let got = wheel.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want, "pop order diverged");
                    if let Some((t, _)) = got {
                        now = t.as_nanos();
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        loop {
            let got = wheel.pop();
            let want = heap.pop();
            prop_assert_eq!(got, want, "drain order diverged");
            if got.is_none() {
                break;
            }
        }
    }

    /// `with_capacity` changes nothing observable about the wheel.
    #[test]
    fn wheel_with_capacity_matches_heap(times in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let mut wheel = Calendar::with_capacity(256);
        let mut heap = HeapCalendar::with_capacity(256);
        for (i, &t) in times.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i);
            heap.push(SimTime::from_nanos(t), i);
        }
        while let Some(want) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(want));
        }
        prop_assert!(wheel.is_empty());
    }
}

proptest! {
    /// Events always pop in non-decreasing time order, and events that share
    /// a timestamp pop in insertion order.
    #[test]
    fn calendar_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.push(SimTime::from_nanos(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((t, tag)) = cal.pop() {
            if let Some((pt, ptag)) = prev {
                prop_assert!(t >= pt, "time went backwards");
                if t == pt {
                    prop_assert!(tag > ptag, "insertion order violated at equal times");
                }
            }
            prev = Some((t, tag));
        }
    }

    /// The engine executes exactly the events scheduled (no loss, no
    /// duplication) when run to exhaustion.
    #[test]
    fn engine_conserves_events(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        struct Count { n: u64 }
        impl World for Count {
            type Event = ();
            fn handle(&mut self, _ctx: &mut Ctx<'_, ()>, _e: ()) {
                self.n += 1;
            }
        }
        let mut sim = Simulation::new(Count { n: 0 });
        for &d in &delays {
            sim.schedule_at(SimTime::from_nanos(d), ());
        }
        let stats = sim.run();
        prop_assert_eq!(stats.events_executed, delays.len() as u64);
        prop_assert_eq!(sim.world().n, delays.len() as u64);
        prop_assert_eq!(sim.now(), SimTime::from_nanos(*delays.iter().max().unwrap()));
    }

    /// Splitting one run into many bounded runs yields the same final state
    /// as a single unbounded run (checkpointing correctness).
    #[test]
    fn bounded_runs_compose(delays in proptest::collection::vec(1u64..10_000, 1..100),
                            budget in 1u64..10) {
        struct Log { seen: Vec<u64> }
        impl World for Log {
            type Event = u64;
            fn handle(&mut self, _ctx: &mut Ctx<'_, u64>, e: u64) {
                self.seen.push(e);
            }
        }

        let mut one = Simulation::new(Log { seen: vec![] });
        let mut many = Simulation::new(Log { seen: vec![] });
        for (i, &d) in delays.iter().enumerate() {
            one.schedule_at(SimTime::from_nanos(d), i as u64);
            many.schedule_at(SimTime::from_nanos(d), i as u64);
        }
        one.run();
        loop {
            let stats = many.run_with_limit(RunLimit::events(budget));
            if stats.events_executed == 0 {
                break;
            }
        }
        prop_assert_eq!(&one.world().seen, &many.world().seen);
    }

    /// schedule_in(0) events run at the same instant but strictly after
    /// already-queued events for that instant.
    #[test]
    fn zero_delay_is_fifo(n in 1u32..50) {
        struct Chain { seen: Vec<u32>, n: u32 }
        impl World for Chain {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, e: u32) {
                self.seen.push(e);
                if e < self.n {
                    ctx.schedule_in(SimDuration::ZERO, e + 1);
                }
            }
        }
        let mut sim = Simulation::new(Chain { seen: vec![], n });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.run();
        let expect: Vec<u32> = (0..=n).collect();
        prop_assert_eq!(&sim.world().seen, &expect);
    }
}
