//! Golden-hash and differential property tests for `brb_sim::dist`.
//!
//! The fast samplers are only useful if they are *reproducible*: the
//! engine's common-random-numbers methodology requires that the same
//! seed and the same sampler produce bit-identical draw sequences on
//! every run. Each test here folds a long draw sequence into a 64-bit
//! FNV-1a hash and pins it against a committed constant — any change to
//! a sampler's draw sequence (table edit, RNG-consumption reorder,
//! acceptance-test tweak) trips the hash and must be a deliberate,
//! reviewed decision.
//!
//! The committed hashes were produced on x86-64 Linux. The ziggurat fast
//! path is table-driven (bit-exact committed tables, no libm), so only
//! the rare wedge/tail draws could ever vary across platforms with a
//! divergent libm — if a port trips these, regenerate deliberately.

use brb_sim::dist::{standard_exp, standard_exp_inv_cdf, standard_normal, AliasTable, BoxMuller};
use brb_sim::DetRng;
use proptest::prelude::*;
use rand::SeedableRng;

/// FNV-1a over the IEEE-754 bit patterns of a draw sequence.
fn fold<F: FnMut(&mut DetRng) -> f64>(seed: u64, n: usize, mut draw: F) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut rng = DetRng::seed_from_u64(seed);
    let mut h = OFFSET;
    for _ in 0..n {
        let bits = draw(&mut rng).to_bits();
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (bits >> shift) & 0xFF;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

const N: usize = 65_536;

#[test]
fn ziggurat_normal_sequences_match_golden_hashes() {
    let golden: [(u64, u64); 3] = [
        (1, 0x65ebe06f6be1e8e1),
        (7, 0xb19739fb37d1f703),
        (42, 0xaa7c86c71e64aeaa),
    ];
    for (seed, want) in golden {
        let got = fold(seed, N, standard_normal);
        assert_eq!(
            got, want,
            "ziggurat normal drifted for seed {seed}: got {got:#018x}"
        );
    }
}

#[test]
fn ziggurat_exp_sequences_match_golden_hashes() {
    let golden: [(u64, u64); 3] = [
        (1, 0x14c7f9dc9fe78700),
        (7, 0x176c60c9bf17364b),
        (42, 0xfeae1ad9e77de642),
    ];
    for (seed, want) in golden {
        let got = fold(seed, N, standard_exp);
        assert_eq!(
            got, want,
            "ziggurat exp drifted for seed {seed}: got {got:#018x}"
        );
    }
}

#[test]
fn box_muller_sequences_match_golden_hashes() {
    let golden: [(u64, u64); 2] = [(1, 0xec74d90395988c2d), (42, 0x51bd9889a22722b3)];
    for (seed, want) in golden {
        let mut bm = BoxMuller::new();
        let got = fold(seed, N, |rng| bm.sample(rng));
        assert_eq!(
            got, want,
            "Box–Muller drifted for seed {seed}: got {got:#018x}"
        );
    }
}

#[test]
fn alias_table_pop_sequences_match_golden_hashes() {
    // Zipf(1000, 0.9) weights — the workload's shape.
    let weights: Vec<f64> = (1..=1000u64).map(|r| (r as f64).powf(-0.9)).collect();
    let table = AliasTable::new(&weights);
    let golden: [(u64, u64); 3] = [
        (1, 0xbbe41723f46fb24f),
        (7, 0xafa779a445d7fb80),
        (42, 0x6686a17e9e5c564a),
    ];
    for (seed, want) in golden {
        let got = fold(seed, N, |rng| table.sample(rng) as f64);
        assert_eq!(
            got, want,
            "alias table drifted for seed {seed}: got {got:#018x}"
        );
    }
}

proptest! {
    /// Differential determinism over arbitrary seeds: equal seeds and
    /// equal samplers give bit-identical sequences.
    #[test]
    fn equal_seeds_give_identical_sequences(seed in 0u64..u64::MAX) {
        let a = fold(seed, 512, standard_normal);
        let b = fold(seed, 512, standard_normal);
        prop_assert_eq!(a, b);
        let a = fold(seed, 512, standard_exp);
        let b = fold(seed, 512, standard_exp);
        prop_assert_eq!(a, b);
    }

    /// Differential: for arbitrary weight vectors, the alias structure
    /// reconstructs exactly the normalized input distribution — the O(1)
    /// sampler is a lossless transform of the pmf the cumulative scan
    /// used to walk.
    #[test]
    fn alias_table_is_lossless_for_arbitrary_weights(
        weights in proptest::collection::vec(0.0f64..100.0, 1..64),
    ) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-9);
        let table = AliasTable::new(&weights);
        for (i, &w) in weights.iter().enumerate() {
            let want = w / total;
            let got = table.pmf(i);
            prop_assert!(
                (got - want).abs() < 1e-9,
                "slot {} reconstructs {} instead of {}", i, got, want
            );
        }
    }

    /// The ziggurat and the guarded inverse CDF sample the same
    /// exponential: matching empirical means over arbitrary seeds.
    #[test]
    fn exp_samplers_agree_on_the_mean(seed in 0u64..u64::MAX) {
        let n = 20_000;
        let zig: f64 = {
            let mut rng = DetRng::seed_from_u64(seed);
            (0..n).map(|_| standard_exp(&mut rng)).sum::<f64>() / n as f64
        };
        let inv: f64 = {
            let mut rng = DetRng::seed_from_u64(seed.wrapping_add(1));
            (0..n).map(|_| standard_exp_inv_cdf(&mut rng)).sum::<f64>() / n as f64
        };
        prop_assert!((zig - inv).abs() < 0.08, "zig {} vs inv {}", zig, inv);
    }

    /// Alias draws always land in range, whatever the weights.
    #[test]
    fn alias_samples_stay_in_range(
        weights in proptest::collection::vec(0.01f64..10.0, 1..32),
        seed in 0u64..u64::MAX,
    ) {
        let table = AliasTable::new(&weights);
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..256 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
        }
    }
}
