//! The event calendar: a priority structure of future events ordered by
//! time, popped in (time, insertion-sequence) order.
//!
//! Determinism requires a total order on events. Two events scheduled for
//! the same instant are executed in the order they were *scheduled*
//! (insertion sequence), never in an order that depends on queue
//! internals.
//!
//! Two implementations share that contract:
//!
//! * [`Calendar`] — a hierarchical timer wheel, the default. Near-future
//!   events (the overwhelming majority in this workload: network hops of
//!   ~50µs, service times of ~300µs) land in O(1) buckets; far-future
//!   events cascade down the levels as virtual time advances; events
//!   beyond the outermost horizon wait in a binary-heap overflow tier.
//!   Each bucket is heapified only when the cursor reaches it, so the
//!   steady-state cost per event is an O(1) amortized push plus an
//!   O(log b) pop for small bucket population b — measurably faster than
//!   a global heap's O(log n) sift over a cache-hostile array (see
//!   `benches/micro.rs`, `calendar` group).
//! * [`HeapCalendar`] — the original `BinaryHeap` implementation, kept as
//!   the reference for differential property tests
//!   (`tests/calendar_props.rs`) and as the benchmark baseline.
//!
//! ## Wheel geometry
//!
//! Level 0 buckets are 2¹⁴ns ≈ 16.4µs wide; each of the three levels has
//! 64 buckets, so the spans are ≈1.05ms, ≈67ms and ≈4.3s. A 64-bit
//! occupancy mask per level lets the cursor skip empty regions in O(1),
//! and an idle calendar jumps straight to the next event (no tick
//! traversal), so sparse timelines (e.g. a single 1s adaptation tick)
//! cost nothing.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::{SimDuration, SimTime};

/// Log₂ of the level-0 bucket width in nanoseconds.
const SLOT_NS_BITS: u32 = 14;
/// Log₂ of the bucket count per level.
const LEVEL_BITS: u32 = 6;
/// Buckets per level.
const SLOTS: u64 = 1 << LEVEL_BITS;
/// Number of wheel levels before the overflow heap.
const LEVELS: usize = 3;

/// An event queued for execution at a given virtual instant.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reverse temporal order so `BinaryHeap` (a max-heap) pops the
    /// *earliest* event; ties broken by insertion sequence, earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic calendar of future events, backed by a hierarchical
/// timer wheel with a heap overflow tier.
///
/// Pops events in non-decreasing time order; events with equal timestamps
/// pop in insertion order. This is the only ordering structure in the
/// kernel, so simulations are reproducible bit-for-bit given equal seeds.
#[derive(Debug)]
pub struct Calendar<E> {
    /// The bucket currently being drained, as a small min-heap on
    /// (time, seq). Everything in here precedes everything still in the
    /// wheel or the overflow tier, and zero-delay pushes land here in
    /// O(log b) for bucket population b. In the degenerate case where
    /// every event shares one bucket, this *is* [`HeapCalendar`] plus a
    /// constant — the wheel is never asymptotically worse.
    current: BinaryHeap<Scheduled<E>>,
    /// `LEVELS × SLOTS` unsorted buckets, flattened.
    slots: Vec<Vec<Scheduled<E>>>,
    /// Per-level bucket occupancy bitmask.
    occupancy: [u64; LEVELS],
    /// Absolute level-0 bucket index of `current`.
    cursor: u64,
    /// Events beyond the outermost wheel horizon.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Queued event count across the wheel tiers (the hop lane counts
    /// separately).
    len: usize,
    next_seq: u64,
    /// Fixed delta (ns) of the hop lane, when declared.
    hop_delta: Option<u64>,
    /// The hop lane: every relative-delay push whose delay equals
    /// `hop_delta` exactly. One fixed delta over a monotone clock means
    /// entries arrive in non-decreasing `(time, seq)` order, so the lane
    /// is FIFO *by construction* — push and pop are O(1) `VecDeque` ends
    /// with no bucket math and no heap sift. On the paper's constant
    /// 50 µs mesh this lane carries every network hop (~⅔ of all
    /// events), which is what "batching constant-latency hops into
    /// precomputed deltas" buys.
    hop_lane: VecDeque<Scheduled<E>>,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Absolute bucket index of instant `t` at wheel level `level`.
#[inline]
fn bucket(t: SimTime, level: usize) -> u64 {
    t.as_nanos() >> (SLOT_NS_BITS + LEVEL_BITS * level as u32)
}

/// First set bit strictly-circularly after `pos` (wrapping back to and
/// including `pos` itself, which then means "one full lap ahead").
/// Returns `(bit, wrapped)`.
#[inline]
fn next_occupied(mask: u64, pos: u64) -> Option<(u64, bool)> {
    if mask == 0 {
        return None;
    }
    let ahead = if pos + 1 >= 64 {
        0
    } else {
        mask >> (pos + 1) << (pos + 1)
    };
    if ahead != 0 {
        Some((ahead.trailing_zeros() as u64, false))
    } else {
        Some((mask.trailing_zeros() as u64, true))
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            current: BinaryHeap::new(),
            slots: (0..SLOTS as usize * LEVELS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            hop_delta: None,
            hop_lane: VecDeque::new(),
        }
    }

    /// Creates an empty calendar with room for `cap` events in the
    /// drain buffer (buckets grow on demand and keep their capacity).
    pub fn with_capacity(cap: usize) -> Self {
        let mut cal = Self::new();
        cal.current.reserve(cap);
        cal
    }

    /// Declares the hop lane's fixed delta: every later
    /// [`Calendar::push_after`] whose relative delay equals `delta`
    /// *exactly* is routed past the wheel into a FIFO. Correct for any
    /// single delta because simulation time is monotone — `now + delta`
    /// never decreases — so lane entries are ordered by construction
    /// and merging at pop preserves the global `(time, seq)` order.
    ///
    /// # Panics
    /// Panics if a lane with a different delta already holds events.
    pub fn set_hop_lane(&mut self, delta: SimDuration) {
        assert!(
            self.hop_lane.is_empty() || self.hop_delta == Some(delta.as_nanos()),
            "cannot re-target a non-empty hop lane"
        );
        self.hop_delta = Some(delta.as_nanos());
    }

    /// The hop lane's fixed delta, when one was declared.
    pub fn hop_lane_delta(&self) -> Option<SimDuration> {
        self.hop_delta.map(SimDuration::from_nanos)
    }

    /// Schedules `event` at `at = now + d`, routing delays that match
    /// the hop lane's delta into the FIFO lane and everything else
    /// through the wheel. Callers must pass `at` consistent with a
    /// monotone `now` (the engine's `schedule_in` contract).
    #[inline]
    pub fn push_after(&mut self, at: SimTime, d: SimDuration, event: E) {
        if self.hop_delta == Some(d.as_nanos()) {
            let seq = self.next_seq;
            self.next_seq += 1;
            debug_assert!(
                self.hop_lane.back().is_none_or(|b| b.time <= at),
                "hop lane push out of order"
            );
            self.hop_lane.push_back(Scheduled {
                time: at,
                seq,
                event,
            });
        } else {
            self.push(at, event);
        }
    }

    /// Schedules `event` for execution at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len == 1 {
            // Empty calendar: point the cursor at the event's bucket and
            // make it the drain buffer directly (keeps the invariant that
            // `current` is non-empty whenever the calendar is).
            self.cursor = bucket(time, 0);
            debug_assert!(self.current.is_empty());
            self.current.push(Scheduled { time, seq, event });
            return;
        }
        self.place(Scheduled { time, seq, event });
    }

    /// Routes an entry to the drain buffer, a wheel bucket or the
    /// overflow heap. Sequence numbers are preserved, so cascading a
    /// bucket through this function keeps the total order.
    fn place(&mut self, entry: Scheduled<E>) {
        let b0 = bucket(entry.time, 0);
        if b0 <= self.cursor {
            // Within (or before) the bucket being drained: merge into the
            // drain heap at its (time, seq) rank.
            self.current.push(entry);
            return;
        }
        for level in 0..LEVELS {
            let b = bucket(entry.time, level);
            let cur = self.cursor >> (LEVEL_BITS * level as u32);
            // A window of exactly SLOTS buckets strictly ahead of the
            // cursor is unambiguous: the cursor's own position is always
            // already drained, so a full lap ahead reuses it safely.
            if b - cur <= SLOTS {
                let pos = (b % SLOTS) as usize;
                self.slots[level * SLOTS as usize + pos].push(entry);
                self.occupancy[level] |= 1 << pos;
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Refills the drain buffer from the earliest occupied source.
    ///
    /// # Panics
    /// Must only be called with a non-empty calendar and an exhausted
    /// drain buffer.
    fn refill(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        loop {
            // The earliest next source, measured in level-0 bucket units.
            // Ties go to the *coarsest* source (`<=` with coarser levels
            // evaluated later): a coarse bucket sharing its start with a
            // fine one may hold events for that same span, so it must
            // cascade before the fine bucket is drained — otherwise the
            // cursor would slide past it and misread its occupancy bit as
            // a lap ahead.
            let mut best: Option<(u64, usize)> = None; // (level-0 units, source)
            for level in 0..LEVELS {
                let cur = self.cursor >> (LEVEL_BITS * level as u32);
                if let Some((pos, wrapped)) = next_occupied(self.occupancy[level], cur % SLOTS) {
                    let abs = (cur / SLOTS) * SLOTS + pos + if wrapped { SLOTS } else { 0 };
                    let start0 = abs << (LEVEL_BITS * level as u32);
                    if best.is_none_or(|(s, _)| start0 <= s) {
                        best = Some((start0, level));
                    }
                }
            }
            const HEAP: usize = LEVELS;
            if let Some(top) = self.overflow.peek() {
                let slot0 = bucket(top.time, 0);
                if best.is_none_or(|(s, _)| slot0 <= s) {
                    best = Some((slot0, HEAP));
                }
            }
            let (start0, source) = best.expect("refill on an empty calendar");
            match source {
                0 => {
                    // Drain the bucket: heapify it into the drain buffer
                    // in O(b), swapping allocations so both the bucket
                    // and the buffer keep their capacity across laps.
                    self.cursor = start0;
                    let pos = (start0 % SLOTS) as usize;
                    let entries = std::mem::take(&mut self.slots[pos]);
                    self.occupancy[0] &= !(1 << pos);
                    let old = std::mem::replace(&mut self.current, BinaryHeap::from(entries));
                    self.slots[pos] = old.into_vec();
                    return;
                }
                HEAP => {
                    // Jump to the overflow's first event and migrate every
                    // overflow event the wheel can now hold.
                    self.cursor = self.cursor.max(start0.saturating_sub(1));
                    let horizon = ((self.cursor >> (LEVEL_BITS * (LEVELS as u32 - 1))) + SLOTS)
                        << (SLOT_NS_BITS + LEVEL_BITS * (LEVELS as u32 - 1));
                    while self
                        .overflow
                        .peek()
                        .is_some_and(|e| e.time.as_nanos() < horizon)
                    {
                        let entry = self.overflow.pop().expect("peeked");
                        self.place(entry);
                    }
                    // Migrated events whose bucket equals the cursor were
                    // sorted straight into the drain buffer; they precede
                    // every remaining wheel bucket, so the refill is done.
                    if !self.current.is_empty() {
                        return;
                    }
                }
                level => {
                    // Cascade the earliest occupied coarse bucket down.
                    let abs = start0 >> (LEVEL_BITS * level as u32);
                    self.cursor = start0 - 1;
                    let pos = (abs % SLOTS) as usize;
                    let entries = std::mem::take(&mut self.slots[level * SLOTS as usize + pos]);
                    self.occupancy[level] &= !(1 << pos);
                    for entry in entries {
                        self.place(entry);
                    }
                }
            }
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// The hop lane's head is merged against the wheel's minimum on
    /// `(time, seq)`, so the total order is exactly what a single
    /// structure would produce — lane or no lane.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let lane_first = match (self.hop_lane.front(), self.current.peek()) {
            (Some(l), Some(w)) => (l.time, l.seq) < (w.time, w.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if lane_first {
            let entry = self.hop_lane.pop_front().expect("lane head vanished");
            return Some((entry.time, entry.event));
        }
        let entry = self.current.pop()?;
        self.len -= 1;
        if self.current.is_empty() && self.len > 0 {
            self.refill();
        }
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.hop_lane.front(), self.current.peek()) {
            (Some(l), Some(w)) => Some(l.time.min(w.time)),
            (Some(l), None) => Some(l.time),
            (None, w) => w.map(|e| e.time),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len + self.hop_lane.len()
    }

    /// Whether the calendar holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.hop_lane.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all queued events, keeping the sequence counter (so ordering
    /// of later inserts remains globally consistent).
    pub fn clear(&mut self) {
        self.current.clear();
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupancy = [0; LEVELS];
        self.overflow.clear();
        self.len = 0;
        self.hop_lane.clear();
    }
}

/// The original binary-heap calendar: identical contract, kept as the
/// differential-testing reference and the benchmark baseline.
#[derive(Debug)]
pub struct HeapCalendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for HeapCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapCalendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        HeapCalendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty calendar with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapCalendar {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` for execution at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all queued events, keeping the sequence counter.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_nanos(30), "c");
        cal.push(SimTime::from_nanos(10), "a");
        cal.push(SimTime::from_nanos(20), "b");
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut cal = Calendar::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            cal.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.push(SimTime::from_nanos(7), ());
        cal.push(SimTime::from_nanos(3), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(3)));
        cal.pop();
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(7)));
    }

    #[test]
    fn len_and_clear() {
        let mut cal = Calendar::new();
        cal.push(SimTime::ZERO, 1);
        cal.push(SimTime::ZERO, 2);
        assert_eq!(cal.len(), 2);
        assert!(!cal.is_empty());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_nanos(10), 10);
        cal.push(SimTime::from_nanos(5), 5);
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(5), 5)));
        cal.push(SimTime::from_nanos(1), 1);
        cal.push(SimTime::from_nanos(20), 20);
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(10), 10)));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(20), 20)));
    }

    /// Events spanning every wheel level plus the overflow tier still pop
    /// in exact (time, seq) order.
    #[test]
    fn cross_level_and_overflow_ordering() {
        let mut cal = Calendar::new();
        let times: Vec<u64> = vec![
            0,              // current bucket
            1 << 16,        // level 0
            40 << 16,       // level 0, later bucket
            1 << 22,        // level 1
            300 << 22,      // level 2 (past level-1 horizon)
            40u64 << 28,    // level 2, far
            2_000u64 << 28, // overflow heap (past level-2 horizon)
            3_000u64 << 28, // overflow heap
        ];
        // Push in scrambled order; same-instant pairs check seq ties.
        for (i, &t) in times.iter().enumerate().rev() {
            cal.push(SimTime::from_nanos(t), (t, i));
        }
        for &t in &times {
            cal.push(SimTime::from_nanos(t), (t, usize::MAX));
        }
        let mut prev = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((time, (t, _))) = cal.pop() {
            assert_eq!(time.as_nanos(), t);
            assert!((time, t) >= prev, "order violated at {time}");
            prev = (time, t);
            popped += 1;
        }
        assert_eq!(popped, times.len() * 2);
    }

    /// An idle calendar jumps over arbitrarily large empty spans instead
    /// of ticking through them.
    #[test]
    fn sparse_far_future_events_are_cheap_and_ordered() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(3_600), "hour");
        cal.push(SimTime::from_secs(60), "minute");
        cal.push(SimTime::from_nanos(1), "now");
        assert_eq!(cal.pop().unwrap().1, "now");
        assert_eq!(cal.pop().unwrap().1, "minute");
        // Zero-delay work appearing while the far event waits.
        cal.push(SimTime::from_secs(60), "straggler");
        assert_eq!(cal.pop().unwrap().1, "straggler");
        assert_eq!(cal.pop().unwrap().1, "hour");
        assert!(cal.is_empty());
    }

    /// Pushing at the exact time of the entry being drained inserts after
    /// all earlier same-instant events (the zero-delay chain case).
    #[test]
    fn same_instant_push_during_drain_pops_last() {
        let mut cal = Calendar::new();
        let t = SimTime::from_micros(100);
        cal.push(t, 0);
        cal.push(t, 1);
        assert_eq!(cal.pop(), Some((t, 0)));
        cal.push(t, 2); // "scheduled from within the handler"
        assert_eq!(cal.pop(), Some((t, 1)));
        assert_eq!(cal.pop(), Some((t, 2)));
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut cal = Calendar::with_capacity(1_000);
        for i in (0..500u64).rev() {
            cal.push(SimTime::from_nanos(i * 1_000), i);
        }
        for i in 0..500 {
            assert_eq!(cal.pop(), Some((SimTime::from_nanos(i * 1_000), i)));
        }
    }

    /// Lane and wheel entries interleave in exact (time, seq) order:
    /// a lane event and a wheel event at the same instant pop in
    /// scheduling order, whichever structure holds them.
    #[test]
    fn hop_lane_merges_in_schedule_order() {
        let mut cal = Calendar::new();
        let d = SimDuration::from_micros(50);
        cal.set_hop_lane(d);
        assert_eq!(cal.hop_lane_delta(), Some(d));
        let now = SimTime::from_micros(100);
        let at = SimTime::from_micros(150);
        cal.push_after(at, d, "hop-0"); // lane
        cal.push(at, "wheel-0"); // same instant, wheel
        cal.push_after(at, d, "hop-1"); // lane again
        cal.push(SimTime::from_micros(120), "early"); // earlier, wheel
        let _ = now;
        assert_eq!(cal.len(), 4);
        assert_eq!(cal.peek_time(), Some(SimTime::from_micros(120)));
        assert_eq!(cal.pop(), Some((SimTime::from_micros(120), "early")));
        assert_eq!(cal.pop(), Some((at, "hop-0")));
        assert_eq!(cal.pop(), Some((at, "wheel-0")));
        assert_eq!(cal.pop(), Some((at, "hop-1")));
        assert_eq!(cal.pop(), None);
        assert!(cal.is_empty());
    }

    /// Delays that miss the lane delta take the wheel; `clear` empties
    /// the lane too.
    #[test]
    fn hop_lane_only_captures_matching_delays() {
        let mut cal = Calendar::new();
        cal.set_hop_lane(SimDuration::from_micros(50));
        cal.push_after(SimTime::from_micros(50), SimDuration::from_micros(50), 1);
        cal.push_after(SimTime::from_micros(60), SimDuration::from_micros(60), 2);
        assert_eq!(cal.len(), 2);
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.pop(), None);
        // The sequence counter survives a clear, lane included.
        assert_eq!(cal.scheduled_total(), 2);
    }

    #[test]
    fn heap_calendar_matches_contract() {
        let mut cal = HeapCalendar::new();
        let t = SimTime::from_micros(5);
        cal.push(SimTime::from_nanos(30), 0);
        cal.push(t, 1);
        cal.push(t, 2);
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(30), 0)));
        assert_eq!(cal.pop(), Some((t, 1)));
        assert_eq!(cal.pop(), Some((t, 2)));
        assert_eq!(cal.scheduled_total(), 3);
    }
}
