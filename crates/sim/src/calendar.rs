//! The event calendar: a priority queue of future events ordered by time.
//!
//! Determinism requires a total order on events. Two events scheduled for
//! the same instant are executed in the order they were *scheduled*
//! (insertion sequence), never in an order that depends on heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queued for execution at a given virtual instant.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reverse temporal order so `BinaryHeap` (a max-heap) pops the
    /// *earliest* event; ties broken by insertion sequence, earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic calendar of future events.
///
/// Pops events in non-decreasing time order; events with equal timestamps
/// pop in insertion order. This is the only ordering structure in the
/// kernel, so simulations are reproducible bit-for-bit given equal seeds.
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty calendar with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` for execution at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all queued events, keeping the sequence counter (so ordering
    /// of later inserts remains globally consistent).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_nanos(30), "c");
        cal.push(SimTime::from_nanos(10), "a");
        cal.push(SimTime::from_nanos(20), "b");
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut cal = Calendar::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            cal.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.push(SimTime::from_nanos(7), ());
        cal.push(SimTime::from_nanos(3), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(3)));
        cal.pop();
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(7)));
    }

    #[test]
    fn len_and_clear() {
        let mut cal = Calendar::new();
        cal.push(SimTime::ZERO, 1);
        cal.push(SimTime::ZERO, 2);
        assert_eq!(cal.len(), 2);
        assert!(!cal.is_empty());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_nanos(10), 10);
        cal.push(SimTime::from_nanos(5), 5);
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(5), 5)));
        cal.push(SimTime::from_nanos(1), 1);
        cal.push(SimTime::from_nanos(20), 20);
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(10), 10)));
        assert_eq!(cal.pop(), Some((SimTime::from_nanos(20), 20)));
    }
}
