//! Fast, exact samplers for the model math on the engine's hot paths.
//!
//! PR 1 left per-event cost dominated by distribution draws: every served
//! request samples log-normal service noise, every task draws exponential
//! inter-arrival gaps and Zipf-ranked keys. This module supplies the fast
//! layer all of those route through:
//!
//! * [`standard_normal`] / [`standard_exp`] — 256-layer **ziggurat**
//!   samplers. The common path (≈98.9% of draws) consumes one `u64`,
//!   performs one table compare and one multiply, and touches *no*
//!   transcendental function; rejection makes the output distribution
//!   exact, not approximate. Layer tables are committed as IEEE-754 bit
//!   patterns ([`tables`]), so the fast path is identical on every
//!   platform (the rare wedge/tail falls back to `exp`/`ln` from libm).
//! * [`BoxMuller`] — the previous Box–Muller transform, kept as the
//!   differential/statistical baseline. Unlike the old ad-hoc helpers it
//!   caches the sine mate of every cosine draw, so no output is ever
//!   discarded.
//! * [`standard_exp_inv_cdf`] — the inverse-CDF exponential baseline,
//!   with the `u → 1` edge guarded so `ln(0)` can never produce an
//!   infinite gap.
//! * [`AliasTable`] — Vose's alias method: O(1) draws from any finite
//!   discrete distribution, replacing the per-draw cumulative scans in
//!   `brb-workload` (Zipf key popularity, fan-out class selection).
//!
//! Every sampler is deterministic under a fixed [`crate::rng::DetRng`]
//! stream: same seed + same sampler ⇒ the same draw sequence, which the
//! golden-hash tests in `tests/dist_golden.rs` pin per seed.

pub mod tables;

use rand::Rng;
use tables::{ZIG_EXP_F, ZIG_EXP_R, ZIG_EXP_X, ZIG_NORM_F, ZIG_NORM_R, ZIG_NORM_X};

/// 2⁻⁵³: converts a 53-bit integer into a unit double in `[0, 1)`.
const UNIT_53: f64 = 1.0 / (1u64 << 53) as f64;

/// Draws a standard normal (mean 0, variance 1) via the ziggurat.
///
/// One `next_u64` per draw on the common path: the low 8 bits select a
/// layer, the high 53 bits form the within-layer coordinate (sign
/// included). Wedge and tail draws reject with exact acceptance tests.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // 53 high bits → u ∈ [−1, 1).
        let u = (bits >> 11) as f64 * (2.0 * UNIT_53) - 1.0;
        let x = u * ZIG_NORM_X[i];
        if x.abs() < ZIG_NORM_X[i + 1] {
            // Entirely inside layer i: the overwhelmingly common case.
            return x;
        }
        if i == 0 {
            // Base layer, beyond R: sample the tail (Marsaglia's method).
            // `1 − u` keeps the logarithms' arguments in (0, 1].
            loop {
                let e1 = -(1.0 - rng.random::<f64>()).ln() / ZIG_NORM_R;
                let e2 = -(1.0 - rng.random::<f64>()).ln();
                if 2.0 * e2 >= e1 * e1 {
                    let t = ZIG_NORM_R + e1;
                    return if u < 0.0 { -t } else { t };
                }
            }
        }
        // Wedge between x[i+1] and x[i]: accept under the true pdf.
        let y = ZIG_NORM_F[i] + rng.random::<f64>() * (ZIG_NORM_F[i + 1] - ZIG_NORM_F[i]);
        if y < (-x * x / 2.0).exp() {
            return x;
        }
    }
}

/// Draws a standard exponential (mean 1) via the ziggurat.
#[inline]
pub fn standard_exp<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // 53 high bits → u ∈ [0, 1).
        let u = (bits >> 11) as f64 * UNIT_53;
        let x = u * ZIG_EXP_X[i];
        if x < ZIG_EXP_X[i + 1] {
            return x;
        }
        if i == 0 {
            // Memoryless tail: R plus a fresh exponential.
            return ZIG_EXP_R + standard_exp_inv_cdf(rng);
        }
        let y = ZIG_EXP_F[i] + rng.random::<f64>() * (ZIG_EXP_F[i + 1] - ZIG_EXP_F[i]);
        if y < (-x).exp() {
            return x;
        }
    }
}

/// The inverse-CDF exponential `−ln(1 − u)` — the pre-ziggurat baseline,
/// kept for differential tests and benchmarks. Because `u ∈ [0, 1)`,
/// `1 − u ∈ (0, 1]` and the logarithm is always finite: the `u = 1`
/// edge (`ln(0) = −∞`) cannot occur by construction, and a defensive
/// guard keeps the draw finite even under a hostile `Rng`.
#[inline]
pub fn standard_exp_inv_cdf<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.random();
    // Defense in depth: a nonconforming Rng returning u ≥ 1 must not
    // turn into an infinite service time or arrival gap.
    let one_minus_u = (1.0 - u).max(f64::MIN_POSITIVE);
    -one_minus_u.ln()
}

/// The Box–Muller standard-normal baseline.
///
/// Each transform produces a cosine/sine *pair* from two uniforms; the
/// mate is cached so no output is discarded (the old helper threw the
/// sine away). Kept purely as the differential/statistical baseline for
/// [`standard_normal`] — two transcendentals per pair versus the
/// ziggurat's none.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoxMuller {
    /// The banked sine mate of the last transform, if unspent.
    spare: Option<f64>,
}

impl BoxMuller {
    /// Creates a sampler with no banked output.
    pub fn new() -> Self {
        BoxMuller::default()
    }

    /// Draws one standard normal (serving the banked mate first).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // `1 − u1 ∈ (0, 1]` guards ln(0); the .max is defense in depth
        // against a nonconforming Rng handing back u1 ≥ 1.
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        let r = (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Vose's alias method: O(1) sampling from a finite discrete
/// distribution with arbitrary (unnormalized) weights.
///
/// Construction is O(n) and deterministic; every draw spends exactly two
/// RNG words (a uniform slot and a coin against the slot's retention
/// probability) regardless of `n` — unlike the O(log n) cumulative-table
/// binary search it replaces in `brb-workload::zipf`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Retention probability of each slot, in `[0, 1]`.
    prob: Vec<f64>,
    /// Donor index used when the slot's coin rejects.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from unnormalized weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, longer than `u32::MAX`, or contains
    /// a negative/non-finite entry, or if all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one slot");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table too large for u32 aliases"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "alias weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias weights must not all be zero");

        let n = weights.len();
        // Scale so the average slot weight is exactly 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Index worklists; filled in slot order so construction is
        // deterministic for a given weight vector.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // The small slot keeps `prob[s]` of its own mass and borrows
            // the rest from the large slot.
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual slots (numerical leftovers) retain all their mass.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a slot index in `0..len()`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        let u: f64 = rng.random();
        if u < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Reconstructs the probability of slot `i` from the table — for
    /// differential tests: must equal the normalized input weight.
    pub fn pmf(&self, i: usize) -> f64 {
        let n = self.prob.len() as f64;
        let direct = self.prob[i] / n;
        let borrowed: f64 = self
            .prob
            .iter()
            .zip(&self.alias)
            .filter(|&(_, &a)| a as usize == i)
            .map(|(&p, _)| (1.0 - p) / n)
            .sum();
        direct + borrowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn tables_are_consistent() {
        // X decreasing to 0, F = f(X) increasing to 1, equal areas.
        for i in 0..256 {
            assert!(ZIG_NORM_X[i] > ZIG_NORM_X[i + 1]);
            assert!(ZIG_NORM_F[i] < ZIG_NORM_F[i + 1]);
            assert!(ZIG_EXP_X[i] > ZIG_EXP_X[i + 1]);
            assert!(ZIG_EXP_F[i] < ZIG_EXP_F[i + 1]);
        }
        assert_eq!(ZIG_NORM_X[256], 0.0);
        assert_eq!(ZIG_NORM_F[256], 1.0);
        assert_eq!(ZIG_EXP_X[256], 0.0);
        assert_eq!(ZIG_EXP_F[256], 1.0);
        assert_eq!(ZIG_NORM_X[1], ZIG_NORM_R);
        assert_eq!(ZIG_EXP_X[1], ZIG_EXP_R);
        // F really is the pdf evaluated at X.
        for i in 0..257 {
            let fx = (-ZIG_NORM_X[i] * ZIG_NORM_X[i] / 2.0).exp();
            assert!((fx - ZIG_NORM_F[i]).abs() < 1e-15, "norm layer {i}");
            let fe = (-ZIG_EXP_X[i]).exp();
            assert!((fe - ZIG_EXP_F[i]).abs() < 1e-15, "exp layer {i}");
        }
        // Layer rectangles all have the same area V = x[i]·(f[i+1] − f[i]).
        let v1 = ZIG_NORM_X[1] * (ZIG_NORM_F[2] - ZIG_NORM_F[1]);
        for i in 2..256 {
            let v = ZIG_NORM_X[i] * (ZIG_NORM_F[i + 1] - ZIG_NORM_F[i]);
            assert!((v - v1).abs() / v1 < 1e-9, "norm layer {i} area {v}");
        }
    }

    #[test]
    fn ziggurat_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..400_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.01, "var {var}");
        // Symmetry of the tails.
        let hi = xs.iter().filter(|&&x| x > 2.0).count() as f64;
        let lo = xs.iter().filter(|&&x| x < -2.0).count() as f64;
        assert!((hi / lo - 1.0).abs() < 0.1, "tail asymmetry {hi} vs {lo}");
    }

    #[test]
    fn ziggurat_normal_tail_quantiles() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<f64> = (0..400_000).map(|_| standard_normal(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        // Φ⁻¹(0.99) = 2.3263, Φ⁻¹(0.999) = 3.0902.
        let q99 = xs[(xs.len() as f64 * 0.99) as usize];
        let q999 = xs[(xs.len() as f64 * 0.999) as usize];
        assert!((q99 - 2.3263).abs() < 0.03, "p99 {q99}");
        assert!((q999 - 3.0902).abs() < 0.08, "p99.9 {q999}");
    }

    #[test]
    fn ziggurat_matches_box_muller_statistically() {
        // The tentpole claim: switching samplers changes the draw
        // sequence, not the distribution.
        let mut zig_rng = StdRng::seed_from_u64(3);
        let mut bm_rng = StdRng::seed_from_u64(4);
        let mut bm = BoxMuller::new();
        let n = 300_000;
        let mut zig: Vec<f64> = (0..n).map(|_| standard_normal(&mut zig_rng)).collect();
        let mut bmv: Vec<f64> = (0..n).map(|_| bm.sample(&mut bm_rng)).collect();
        let (zm, zv) = moments(&zig);
        let (bm_mean, bv) = moments(&bmv);
        assert!((zm - bm_mean).abs() < 0.01, "means {zm} vs {bm_mean}");
        assert!((zv - bv).abs() < 0.02, "vars {zv} vs {bv}");
        zig.sort_by(f64::total_cmp);
        bmv.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let i = (n as f64 * q) as usize;
            assert!(
                (zig[i] - bmv[i]).abs() < 0.05,
                "quantile {q}: {} vs {}",
                zig[i],
                bmv[i]
            );
        }
    }

    #[test]
    fn ziggurat_exp_moments_and_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<f64> = (0..400_000).map(|_| standard_exp(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(xs.iter().all(|&x| x >= 0.0));
        xs.sort_by(f64::total_cmp);
        // Exponential p99 = ln(100) ≈ 4.6052.
        let q99 = xs[(xs.len() as f64 * 0.99) as usize];
        assert!((q99 - 4.6052).abs() < 0.1, "p99 {q99}");
    }

    #[test]
    fn exp_inverse_cdf_baseline_matches_ziggurat() {
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(7);
        let n = 300_000;
        let zig: Vec<f64> = (0..n).map(|_| standard_exp(&mut a)).collect();
        let inv: Vec<f64> = (0..n).map(|_| standard_exp_inv_cdf(&mut b)).collect();
        let (zm, zv) = moments(&zig);
        let (im, iv) = moments(&inv);
        assert!((zm - im).abs() < 0.01, "means {zm} vs {im}");
        assert!((zv - iv).abs() < 0.03, "vars {zv} vs {iv}");
    }

    #[test]
    fn box_muller_uses_both_pair_members() {
        // Two draws must consume exactly two uniforms (one transform):
        // the mate is banked, not discarded.
        let mut counting = CountingRng(StdRng::seed_from_u64(8), 0);
        let mut bm = BoxMuller::new();
        let _ = bm.sample(&mut counting);
        let _ = bm.sample(&mut counting);
        assert_eq!(counting.1, 2, "pair mate was discarded");
        let _ = bm.sample(&mut counting);
        assert_eq!(counting.1, 4);
    }

    /// Wraps an RNG and counts `next_u64` calls.
    struct CountingRng(StdRng, u64);

    impl rand::Rng for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.1 += 1;
            self.0.next_u64()
        }
    }

    #[test]
    fn samplers_are_seed_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let seq = |f: &dyn Fn(&mut StdRng) -> f64| -> Vec<u64> {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..256).map(|_| f(&mut rng).to_bits()).collect()
            };
            assert_eq!(
                seq(&|r| standard_normal(r)),
                seq(&|r| standard_normal(r)),
                "ziggurat normal diverged for seed {seed}"
            );
            assert_eq!(
                seq(&|r| standard_exp(r)),
                seq(&|r| standard_exp(r)),
                "ziggurat exp diverged for seed {seed}"
            );
        }
    }

    #[test]
    fn alias_table_reconstructs_pmf_exactly() {
        let weights = [1.0, 5.0, 0.25, 3.75, 0.0, 2.0];
        let t = AliasTable::new(&weights);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let want = w / total;
            assert!(
                (t.pmf(i) - want).abs() < 1e-12,
                "slot {i}: {} vs {want}",
                t.pmf(i)
            );
        }
        let sum: f64 = (0..t.len()).map(|i| t.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alias_table_empirical_frequencies() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000u64;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            let want = weights[i] / 16.0;
            assert!(
                (emp - want).abs() / want < 0.05,
                "slot {i}: {emp} vs {want}"
            );
        }
    }

    #[test]
    fn alias_table_zero_weight_slot_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_singleton() {
        let t = AliasTable::new(&[7.0]);
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.pmf(0), 1.0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn alias_table_rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn alias_table_rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
