//! Strongly-typed entity identifiers.
//!
//! The cluster model juggles several kinds of small integer ids (clients,
//! servers, tasks, requests, partitions). [`crate::define_id!`] stamps out a
//! newtype per kind so they cannot be confused, at zero runtime cost.

/// Defines a `Copy` newtype wrapping `u64` (or a chosen integer) with
/// conversion helpers, `Display`, and ordered/hashable semantics.
///
/// ```
/// brb_sim::define_id!(
///     /// Identifies a widget.
///     WidgetId
/// );
/// let w = WidgetId::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(format!("{w}"), "WidgetId(3)");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index as `u64`.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The raw index as `usize` (for direct slice indexing).
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                $name(raw as u64)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    define_id!(
        /// Test id.
        TestId
    );

    #[test]
    fn conversions_round_trip() {
        let id = TestId::new(17);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.index(), 17);
        assert_eq!(TestId::from(17u64), id);
        assert_eq!(TestId::from(17usize), id);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(TestId::new(1) < TestId::new(2));
        assert_eq!(format!("{}", TestId::new(5)), "TestId(5)");
        assert_eq!(format!("{:?}", TestId::new(5)), "TestId(5)");
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TestId::new(1), "one");
        assert_eq!(m[&TestId::new(1)], "one");
    }
}
