//! Virtual time for the simulation kernel.
//!
//! Two newtypes keep instants and spans apart at the type level:
//! [`SimTime`] is an absolute instant (nanoseconds since simulation start)
//! and [`SimDuration`] is a span. Mixing them up is a compile error, which
//! removes a whole class of unit bugs from latency bookkeeping.
//!
//! Nanosecond resolution on `u64` gives a horizon of ~584 years of virtual
//! time — far beyond any experiment in this repository (the paper's longest
//! run simulates under a minute of virtual time).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_nanos(s))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a span; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_nanos(s))
    }

    /// Builds a span from fractional microseconds (common unit in the paper:
    /// the one-way network latency is 50 µs).
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration(secs_to_nanos(us / 1_000_000.0))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// nanosecond and saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration factor");
        let ns = (self.0 as f64 * factor).round();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.max(0.0) as u64)
        }
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if s <= 0.0 {
        return 0;
    }
    let ns = (s * 1e9).round();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

/// Human-readable rendering with an adaptive unit (ns / µs / ms / s).
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.6}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_micros_f64(50.0).as_nanos(), 50_000);
    }

    #[test]
    fn arithmetic_instant_and_span() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_millis(5));
    }

    #[test]
    fn saturating_since_handles_future_reference() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e-9), SimTime::from_nanos(1));
        assert_eq!(SimTime::from_secs_f64(0.5e-9), SimTime::from_nanos(1)); // rounds up
        assert_eq!(SimTime::from_secs_f64(f64::MAX), SimTime::MAX);
    }

    #[test]
    fn mul_f64_scales_durations() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(d.mul_f64(3.0), SimDuration::from_micros(300));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(50)), "50.000µs");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000000s");
        assert_eq!(format!("{}", SimTime::from_micros(1)), "T+1.000µs");
    }

    #[test]
    fn ordering_is_temporal() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
