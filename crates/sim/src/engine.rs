//! The simulation engine: event loop, scheduling context, run limits.
//!
//! A model implements [`World`]; the engine owns the clock and the
//! [`Calendar`] and repeatedly delivers the earliest event to the world,
//! handing it a [`Ctx`] through which it may schedule follow-up events.

use crate::calendar::Calendar;
use crate::time::{SimDuration, SimTime};

/// A simulation model. The engine delivers every event to [`World::handle`]
/// together with a [`Ctx`] for reading the clock and scheduling new events.
pub trait World {
    /// The model's event alphabet (typically an enum).
    type Event;

    /// Processes one event at the current virtual instant.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

/// The scheduling context handed to [`World::handle`].
///
/// Borrowing the calendar (rather than giving the world a reference to the
/// whole engine) keeps the borrow checker happy while the world mutates its
/// own state.
pub struct Ctx<'a, E> {
    now: SimTime,
    calendar: &'a mut Calendar<E>,
}

impl<'a, E> std::fmt::Debug for Ctx<'a, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl<'a, E> Ctx<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current instant — time travel would break
    /// the causal ordering the kernel guarantees.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.calendar.push(at, event);
    }

    /// Schedules `event` after a relative delay `d` (possibly zero: the
    /// event then runs at the same instant, after all earlier-scheduled
    /// events for this instant). Delays matching a declared hop lane
    /// ([`Simulation::set_hop_lane`]) take the calendar's O(1) FIFO
    /// lane; everything else goes through the wheel.
    ///
    /// # Panics
    /// Panics if `now + d` overflows virtual time — a silent wrap would
    /// schedule into the past and break causal ordering, the same
    /// invariant [`Ctx::schedule_at`] guards.
    pub fn schedule_in(&mut self, d: SimDuration, event: E) {
        let at = self
            .now
            .checked_add(d)
            .unwrap_or_else(|| panic!("schedule_in overflows virtual time ({} + {d})", self.now));
        self.calendar.push_after(at, d, event);
    }

    /// Number of events currently queued.
    pub fn queued_events(&self) -> usize {
        self.calendar.len()
    }
}

/// Why a call to [`Simulation::run_with_limit`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar drained completely.
    Exhausted,
    /// The time horizon was reached before the calendar drained.
    HorizonReached,
    /// The event budget was consumed before the calendar drained.
    BudgetConsumed,
}

/// Bounds on a run: a time horizon and/or an event budget.
#[derive(Debug, Clone, Copy)]
pub struct RunLimit {
    /// Do not execute events scheduled strictly after this instant.
    pub horizon: SimTime,
    /// Execute at most this many events in this call.
    pub max_events: u64,
}

impl Default for RunLimit {
    fn default() -> Self {
        RunLimit {
            horizon: SimTime::MAX,
            max_events: u64::MAX,
        }
    }
}

impl RunLimit {
    /// A limit that stops at `horizon` with an unlimited event budget.
    pub fn until(horizon: SimTime) -> Self {
        RunLimit {
            horizon,
            ..Default::default()
        }
    }

    /// A limit of `n` events with an unlimited horizon.
    pub fn events(n: u64) -> Self {
        RunLimit {
            max_events: n,
            ..Default::default()
        }
    }
}

/// Statistics from a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Events executed during this call.
    pub events_executed: u64,
    /// Virtual time when the call returned.
    pub end_time: SimTime,
    /// Why the call returned.
    pub outcome: RunOutcome,
}

/// The discrete-event simulation engine.
///
/// Owns the world, the clock and the calendar. See the crate docs for a
/// complete example.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    calendar: Calendar<W::Event>,
    now: SimTime,
    executed_total: u64,
}

impl<W: World> Simulation<W> {
    /// Creates an engine at `T+0` with an empty calendar.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            calendar: Calendar::new(),
            now: SimTime::ZERO,
            executed_total: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the model (e.g. to harvest metrics between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the model.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Total events executed since construction.
    pub fn events_executed(&self) -> u64 {
        self.executed_total
    }

    /// Events currently queued.
    pub fn queued_events(&self) -> usize {
        self.calendar.len()
    }

    /// Schedules an event at an absolute instant (must not precede `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.calendar.push(at, event);
    }

    /// Schedules an event after a relative delay.
    ///
    /// # Panics
    /// Panics if `now + d` overflows virtual time (see
    /// [`Ctx::schedule_in`]).
    pub fn schedule_in(&mut self, d: SimDuration, event: W::Event) {
        let at = self
            .now
            .checked_add(d)
            .unwrap_or_else(|| panic!("schedule_in overflows virtual time ({} + {d})", self.now));
        self.calendar.push_after(at, d, event);
    }

    /// Declares the calendar's constant-delta hop lane: every
    /// `schedule_in` whose delay equals `delta` exactly bypasses the
    /// timer wheel into an O(1) FIFO (see [`Calendar::set_hop_lane`]).
    /// Pop order is unchanged — the lane merges on `(time, seq)` — so
    /// this is purely a performance declaration; models with a
    /// constant-latency network fabric enable it before the run.
    pub fn set_hop_lane(&mut self, delta: SimDuration) {
        self.calendar.set_hop_lane(delta);
    }

    /// Executes a single event, if any; returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, event) = self.calendar.pop()?;
        debug_assert!(time >= self.now, "calendar returned an event in the past");
        self.now = time;
        let mut ctx = Ctx {
            now: self.now,
            calendar: &mut self.calendar,
        };
        self.world.handle(&mut ctx, event);
        self.executed_total += 1;
        Some(time)
    }

    /// Runs until the calendar drains.
    pub fn run(&mut self) -> RunStats {
        self.run_with_limit(RunLimit::default())
    }

    /// Runs until `horizon` (inclusive) or the calendar drains.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        self.run_with_limit(RunLimit::until(horizon))
    }

    /// Runs until the calendar drains, the horizon passes or the event
    /// budget is consumed — whichever happens first.
    pub fn run_with_limit(&mut self, limit: RunLimit) -> RunStats {
        let mut executed = 0u64;
        let outcome = loop {
            if executed >= limit.max_events {
                break RunOutcome::BudgetConsumed;
            }
            match self.calendar.peek_time() {
                None => break RunOutcome::Exhausted,
                Some(t) if t > limit.horizon => break RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                    executed += 1;
                }
            }
        };
        // When a horizon stops the run, advance the clock to the horizon so
        // repeated bounded runs observe monotone time.
        if outcome == RunOutcome::HorizonReached && self.now < limit.horizon {
            self.now = limit.horizon;
        }
        RunStats {
            events_executed: executed,
            end_time: self.now,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records (time, tag) pairs in arrival order.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
        fanout: u32,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, tag: u32) {
            self.log.push((ctx.now(), tag));
            // Tag 0 fans out `fanout` children one microsecond later.
            if tag == 0 {
                for i in 1..=self.fanout {
                    ctx.schedule_in(SimDuration::from_micros(1), i);
                }
            }
        }
    }

    fn recorder(fanout: u32) -> Simulation<Recorder> {
        Simulation::new(Recorder {
            log: Vec::new(),
            fanout,
        })
    }

    #[test]
    fn events_execute_in_causal_order() {
        let mut sim = recorder(3);
        sim.schedule_at(SimTime::from_micros(10), 0);
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Exhausted);
        assert_eq!(stats.events_executed, 4);
        let log = &sim.world().log;
        assert_eq!(log[0], (SimTime::from_micros(10), 0));
        // Children run at the same later instant, in scheduling order.
        assert_eq!(log[1], (SimTime::from_micros(11), 1));
        assert_eq!(log[2], (SimTime::from_micros(11), 2));
        assert_eq!(log[3], (SimTime::from_micros(11), 3));
    }

    #[test]
    fn horizon_stops_and_clock_advances_to_horizon() {
        let mut sim = recorder(0);
        sim.schedule_at(SimTime::from_millis(1), 7);
        sim.schedule_at(SimTime::from_millis(10), 8);
        let stats = sim.run_until(SimTime::from_millis(5));
        assert_eq!(stats.outcome, RunOutcome::HorizonReached);
        assert_eq!(stats.events_executed, 1);
        assert_eq!(sim.now(), SimTime::from_millis(5));
        // The late event is still queued and runs on the next unbounded run.
        let stats = sim.run();
        assert_eq!(stats.events_executed, 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn event_budget_stops_early() {
        let mut sim = recorder(10);
        sim.schedule_at(SimTime::ZERO, 0);
        let stats = sim.run_with_limit(RunLimit::events(5));
        assert_eq!(stats.outcome, RunOutcome::BudgetConsumed);
        assert_eq!(stats.events_executed, 5);
        assert_eq!(sim.queued_events(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = recorder(0);
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.run();
        sim.schedule_at(SimTime::from_millis(1), 2);
    }

    #[test]
    fn zero_delay_events_run_at_same_instant_in_order() {
        struct Chain {
            seen: Vec<u32>,
        }
        impl World for Chain {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, n: u32) {
                self.seen.push(n);
                if n < 3 {
                    ctx.schedule_in(SimDuration::ZERO, n + 1);
                }
            }
        }
        let mut sim = Simulation::new(Chain { seen: vec![] });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.run();
        assert_eq!(sim.world().seen, vec![0, 1, 2, 3]);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn run_on_empty_calendar_is_a_noop() {
        let mut sim = recorder(0);
        let stats = sim.run();
        assert_eq!(stats.events_executed, 0);
        assert_eq!(stats.outcome, RunOutcome::Exhausted);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }
}
