//! Deterministic, labelled random-number streams.
//!
//! Every stochastic component of a simulation (arrival process, value-size
//! sampler, service-time jitter, each server's noise, ...) draws from its
//! *own* stream, derived from a single master seed and a stable label. This
//! gives two properties the evaluation methodology depends on:
//!
//! 1. **Reproducibility** — the paper repeats each experiment 6 times with
//!    different seeds; we must be able to re-run any seed bit-for-bit.
//! 2. **Common random numbers** — comparing two policies under the same
//!    seed keeps every *other* source of randomness identical, so observed
//!    differences are attributable to the policy, not sampling noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used across the workspace (ChaCha-based `StdRng`).
pub type DetRng = StdRng;

/// Derives independent RNG streams from a master seed and string labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory from the experiment's master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG stream for `label`. Equal `(seed, label)` pairs
    /// always produce identical streams; distinct labels produce
    /// decorrelated streams.
    pub fn stream(&self, label: &str) -> DetRng {
        StdRng::seed_from_u64(self.stream_seed(label))
    }

    /// Returns the stream for `label` specialised by an index — convenient
    /// for per-entity streams such as "server-noise" 0..N.
    pub fn indexed_stream(&self, label: &str, index: u64) -> DetRng {
        let base = self.stream_seed(label);
        StdRng::seed_from_u64(splitmix64(
            base ^ splitmix64(index.wrapping_add(0x9E37_79B9)),
        ))
    }

    /// The derived 64-bit seed for `label` (exposed for tests and for
    /// seeding samplers that keep their own RNG).
    pub fn stream_seed(&self, label: &str) -> u64 {
        let h = fnv1a(label.as_bytes());
        splitmix64(self.master_seed ^ h)
    }
}

/// FNV-1a 64-bit hash: tiny, stable, dependency-free label hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer: scrambles correlated inputs into well-mixed seeds.
/// (Vigna's reference constants.)
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("arrivals");
        let mut b = f.stream("arrivals");
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let f = RngFactory::new(42);
        let mut a = f.stream("arrivals");
        let mut b = f.stream("sizes");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = RngFactory::new(1).stream("x");
        let mut b = RngFactory::new(2).stream("x");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let f = RngFactory::new(7);
        let mut s0 = f.indexed_stream("server", 0);
        let mut s1 = f.indexed_stream("server", 1);
        assert_ne!(s0.random::<u64>(), s1.random::<u64>());
        // And stable.
        let mut again = f.indexed_stream("server", 0);
        let mut s0b = f.indexed_stream("server", 0);
        assert_eq!(again.random::<u64>(), s0b.random::<u64>());
    }

    #[test]
    fn stream_seed_is_stable_across_calls() {
        let f = RngFactory::new(99);
        assert_eq!(f.stream_seed("alpha"), f.stream_seed("alpha"));
        assert_ne!(f.stream_seed("alpha"), f.stream_seed("beta"));
    }

    #[test]
    fn splitmix_avalanche_on_adjacent_inputs() {
        // Adjacent inputs must differ in roughly half their output bits.
        let x = splitmix64(1);
        let y = splitmix64(2);
        let differing = (x ^ y).count_ones();
        assert!((16..=48).contains(&differing), "poor mixing: {differing}");
    }
}
