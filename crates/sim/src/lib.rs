//! # brb-sim — deterministic discrete-event simulation kernel
//!
//! The BRB paper (Reda et al., SIGCOMM 2015) evaluates its scheduling
//! algorithms in simulation. This crate rebuilds that substrate: a small,
//! deterministic discrete-event simulation (DES) kernel with
//! nanosecond-resolution virtual time.
//!
//! Design goals, in the spirit of the event-driven networking stacks this
//! repository follows (see `DESIGN.md`):
//!
//! * **Determinism** — identical seeds produce identical event orderings.
//!   The calendar breaks time ties by insertion sequence, and all randomness
//!   flows through labelled, independently-seeded streams
//!   ([`rng::RngFactory`]).
//! * **Simplicity** — the kernel knows nothing about clients, servers or
//!   networks. A model implements [`World`] and receives events plus a
//!   scheduling context; everything else is library code on top.
//! * **No hidden global state** — the engine owns the clock and the
//!   calendar; models cannot observe anything the kernel did not hand them.
//!
//! ## Quick tour
//!
//! ```
//! use brb_sim::{Simulation, World, Ctx, SimTime, SimDuration};
//!
//! /// A world that rings a bell a fixed number of times, 1ms apart.
//! struct Bell { rings: u32, last: SimTime }
//!
//! #[derive(Debug)]
//! enum Ev { Ring }
//!
//! impl World for Bell {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
//!         self.rings += 1;
//!         self.last = ctx.now();
//!         if self.rings < 3 {
//!             ctx.schedule_in(SimDuration::from_millis(1), Ev::Ring);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Bell { rings: 0, last: SimTime::ZERO });
//! sim.schedule_at(SimTime::ZERO, Ev::Ring);
//! let stats = sim.run();
//! assert_eq!(stats.events_executed, 3);
//! assert_eq!(sim.world().last, SimTime::from_millis(2));
//! ```

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod ids;
pub mod rng;
pub mod time;

pub use calendar::{Calendar, HeapCalendar};
pub use dist::{standard_exp, standard_normal, AliasTable, BoxMuller};
pub use engine::{Ctx, RunLimit, RunOutcome, RunStats, Simulation, World};
pub use rng::{DetRng, RngFactory};
pub use time::{SimDuration, SimTime};
