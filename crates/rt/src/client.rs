//! The client handle: task splitting, priority assignment, replica
//! selection, dispatch and response collection — §2.1's pipeline against
//! real threads.
//!
//! Replica choice is delegated to a `brb-select` selector fed by the
//! piggybacked `queue_len` / `service_ns` response fields (the C3
//! feedback mechanism), replacing the load-oblivious global round-robin
//! counter this client started with.
//!
//! The overload lane adds the client half of the sim's contract: when
//! the cluster carries a timeout config, every attempt gets a wall-clock
//! deadline; a timeout or a server NACK triggers a capped-exponential
//! retry with a *fresh attempt id* (stale replies stay distinguishable)
//! under a per-client retry budget, and exhaustion resolves the task
//! into a typed [`TaskOutcome::Failed`] instead of a hang. Semantics —
//! retry counting, backoff shifts, the budget inequality, late-original
//! wins — mirror the simulator's engine so sim-vs-rt goodput numbers
//! compare like for like.
//!
//! The hedging lane (safe duplication): when the cluster carries a
//! hedge delay, each request arms a hedge timer at dispatch; if no
//! response arrived by then, the client duplicates the request to a
//! selector-chosen replica under the sim's gates (no hedging of
//! requests forecast longer than the delay, ≤5% of dispatches). The
//! first response wins; the loser is *purged* — its selector slot is
//! released (`on_abandon`, the PR 5 contract) and an `RtCancel` chases
//! it to the router, which de-queues it if still queued. An in-service
//! loser completes and its reply is discarded here, counted as a
//! duplicate response.

use crate::error::RtError;
use crate::server::RtTimeoutConfig;
use crate::timing;
use crate::transport::{RtCancel, RtMessage, RtNack, RtReply, RtRequest, RtResponse};
use brb_sched::overload::DropReason;
use brb_sched::{PolicyKind, Priority, PriorityPolicy, TaskView};
use brb_select::{ReplicaSelector, ResponseFeedback, Selection, SelectionCtx};
use brb_store::cost::CostModel;
use brb_store::ids::{GroupId, ServerId};
use brb_store::partition::Ring;
use brb_workload::taskgen::SizeModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The completed result of one task.
#[derive(Debug)]
pub struct TaskResponse {
    /// The task id assigned at submission.
    pub task_id: u64,
    /// End-to-end task latency: measurement origin → the last response's
    /// server-side completion instant. The origin is the submit instant
    /// for [`RtClient::fetch`]/[`TaskTicket::wait`], or an earlier
    /// intended-arrival instant for [`TaskTicket::wait_from`] (the
    /// open-loop generator's coordinated-omission-free accounting).
    pub latency: Duration,
    /// Values in request order (`None` for unknown keys).
    pub values: Vec<Option<Bytes>>,
    /// Which server answered each request.
    pub servers: Vec<u32>,
    /// Per-request total latencies in nanoseconds (submit → response
    /// send, plus the cluster's accounted network RTT).
    pub request_ns: Vec<u64>,
}

/// Why a task failed under the overload lane. Matches the simulator's
/// terminal `TaskFailure` classification so both backends bucket the
/// same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFailureKind {
    /// A request was tail-dropped or CoDel-dropped with no retry left.
    Dropped,
    /// A request was shed by admission control with no retry left.
    Shed,
    /// A request's deadline passed and retries are disabled
    /// (`max_retries == 0`).
    TimedOut,
    /// A request's deadline passed after the last permitted retry (or
    /// the retry budget ran dry).
    RetriesExhausted,
}

/// How a task resolved.
#[derive(Debug)]
pub enum TaskOutcome {
    /// Every request was served.
    Completed(TaskResponse),
    /// A request failed terminally; the task counts against goodput.
    Failed {
        /// The terminal failure (first one wins, as in the simulator).
        failure: TaskFailureKind,
    },
}

/// A resolved task: its outcome plus retry accounting.
#[derive(Debug)]
pub struct TaskResolution {
    /// The task id assigned at submission.
    pub task_id: u64,
    /// Retries this task issued (0 when every request's first attempt
    /// resolved it).
    pub retries: u32,
    /// How it ended.
    pub outcome: TaskOutcome,
}

type SharedSelector = Arc<Mutex<Box<dyn ReplicaSelector + Send>>>;

/// The piggybacked server state a response carries; `rtt_ns` is the
/// accounted network round trip (the client-observed response time in a
/// constant mesh includes it).
fn feedback_of(resp: &RtResponse, rtt_ns: u64) -> ResponseFeedback {
    ResponseFeedback {
        response_time_ns: resp.total_ns + rtt_ns,
        queue_len: resp.queue_len as u64,
        service_time_ns: resp.service_ns,
    }
}

/// Backoff before retry attempt `attempt` (1-based), the simulator's
/// curve exactly: base 0 retries immediately; otherwise the base doubles
/// per retry (shift saturated at 32) under an optional cap (0 = uncapped).
fn backoff_ns(tc: &RtTimeoutConfig, attempt: u32) -> u64 {
    if tc.backoff_base_ns == 0 {
        return 0;
    }
    let shift = attempt.saturating_sub(1).min(32);
    let raw = ((tc.backoff_base_ns as u128) << shift).min(u64::MAX as u128) as u64;
    if tc.backoff_cap_ns > 0 {
        raw.min(tc.backoff_cap_ns)
    } else {
        raw
    }
}

/// State shared by a client and its tickets (tickets must redispatch
/// retries through the same selector, budget and senders the client
/// uses).
pub(crate) struct ClientInner {
    ring: Ring,
    cost: CostModel,
    sizes: SizeModel,
    senders: Vec<Sender<RtMessage>>,
    selector: SharedSelector,
    epoch: Instant,
    /// Accounted network round trip per request (see
    /// [`crate::RtClusterConfig::network_rtt_ns`]).
    rtt_ns: u64,
    /// Deadline/retry knobs (`None` = wait forever, the legacy path).
    timeout: Option<RtTimeoutConfig>,
    /// Hedge delay (`None` = hedging off): a request unanswered this
    /// long after dispatch is duplicated to a second replica.
    hedge_ns: Option<u64>,
    /// Requests this client dispatched (originals, retries and hedges)
    /// — the denominator of the retry and hedge budgets, as in the
    /// sim's `ClientState`.
    dispatched_total: AtomicU64,
    /// Retries this client issued — the budget numerator.
    retried_total: AtomicU64,
    /// Hedge duplicates this client issued — the hedge-budget numerator.
    hedged_total: AtomicU64,
    /// Replies from purged hedge losers that completed anyway and were
    /// discarded here (the duplicate-work cost of hedging).
    duplicate_responses: AtomicU64,
    /// The cluster's sticky panic flag; waits poll it so a dead worker
    /// thread fails runs typed instead of hanging them.
    panicked: Arc<AtomicBool>,
}

impl ClientInner {
    /// Runs the selector over a request's replica group. A rate-limiting
    /// selector (C3) may refuse every candidate; the live client then
    /// waits out the earliest token (bounded per iteration so a clock
    /// hiccup cannot park the submission thread for long).
    fn select_replica(&self, candidates: &[ServerId], value_bytes: u64) -> ServerId {
        const MAX_PAUSE: Duration = Duration::from_millis(1);
        loop {
            let ctx = SelectionCtx {
                now_ns: self.epoch.elapsed().as_nanos() as u64,
                candidates,
                value_bytes,
                oracle_queue_depths: None,
            };
            let decision = self.selector.lock().select(&ctx);
            match decision {
                Selection::Dispatch(server) => return server,
                Selection::RateLimited { retry_in_ns } => {
                    timing::wait_for(Duration::from_nanos(retry_in_ns).min(MAX_PAUSE));
                }
            }
        }
    }

    /// Whether one more retry fits — the simulator's gate verbatim:
    /// attempts bounded by `max_retries`, then the per-client budget
    /// (`retried · 100 ≥ dispatched · percent` means dry).
    fn can_retry(&self, attempt: u32) -> bool {
        let Some(tc) = self.timeout else {
            return false;
        };
        if attempt >= tc.max_retries {
            return false;
        }
        if let Some(percent) = tc.retry_budget_percent {
            let retried = self.retried_total.load(Ordering::Relaxed);
            let dispatched = self.dispatched_total.load(Ordering::Relaxed).max(1);
            if retried * 100 >= dispatched * percent as u64 {
                return false;
            }
        }
        true
    }
}

/// One request slot's lifecycle.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// An attempt is in flight; `deadline` arms the timeout timer
    /// (`None` when the cluster has no timeout config).
    Pending {
        attempt: u32,
        deadline: Option<Instant>,
    },
    /// Waiting out the backoff before dispatching `next_attempt`.
    Backoff { next_attempt: u32, at: Instant },
    /// Served, or terminally failed (the task's `failure` is set then).
    Settled,
}

/// A dispatch awaiting selector accounting: every send is balanced by
/// exactly one `on_response` (its reply arrived) or `on_abandon` (it was
/// NACKed, superseded and never answered, or the ticket dropped).
#[derive(Debug, Clone, Copy)]
struct OpenDispatch {
    req_idx: usize,
    attempt: u32,
    server: ServerId,
}

/// How often a blocked wait wakes to poll the cluster's panic flag.
const WATCHDOG: Duration = Duration::from_millis(10);

/// The attempt id hedge duplicates dispatch under. Retries count up from
/// 0, so `u32::MAX` can never collide with a slot's current attempt —
/// which is exactly what keeps a hedge NACK from driving the slot's
/// retry/failure state machine (it is accounting-only by construction).
const HEDGE_ATTEMPT: u32 = u32::MAX;

/// A pending asynchronous task.
///
/// Dropping a ticket without waiting abandons the task: responses that
/// already arrived still feed the selector, and the rest release their
/// outstanding-request accounting (`on_abandon`), so an abandoned
/// large-fanout task cannot permanently steer traffic away from the
/// replicas it touched.
pub struct TaskTicket {
    inner: Arc<ClientInner>,
    task_id: u64,
    n: usize,
    started: Instant,
    rx: Receiver<RtReply>,
    /// Retained while retries are possible so redispatches reuse the
    /// task's reply channel. `None` when the cluster has no timeout
    /// config — then a shut-down cluster surfaces as channel
    /// disconnection (the legacy liveness path) instead of a deadline.
    reply_tx: Option<Sender<RtReply>>,
    keys: Vec<u64>,
    groups: Vec<GroupId>,
    priorities: Vec<Priority>,
    slots: Vec<SlotState>,
    /// Per-request hedge timer: `Some(at)` = a hedge fires at `at` if
    /// the slot is still unanswered then; disarmed (`None`) once fired
    /// or settled. All `None` when the cluster has no hedge delay.
    hedge_at: Vec<Option<Instant>>,
    open: Vec<OpenDispatch>,
    values: Vec<Option<Bytes>>,
    servers: Vec<u32>,
    request_ns: Vec<u64>,
    /// Latest server-side completion (+RTT) seen so far.
    latest_completed: Option<Instant>,
    /// Slots served (not terminally failed).
    served: usize,
    retries: u32,
    failure: Option<TaskFailureKind>,
    /// Set once an outcome has been taken (poll path).
    taken: bool,
}

impl std::fmt::Debug for TaskTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskTicket")
            .field("task_id", &self.task_id)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl TaskTicket {
    /// Blocks until every response arrives; latency is measured from the
    /// submit instant.
    ///
    /// # Panics
    /// Panics if the task fails under the overload lane or the cluster
    /// shut down mid-task; overload runs should use
    /// [`TaskTicket::wait_outcome_from`].
    pub fn wait(self) -> TaskResponse {
        let origin = self.started;
        self.wait_from(origin)
    }

    /// Blocks until every response arrives, measuring latency from
    /// `origin` — the corrected recording path shared by both load
    /// generator modes. The recorded latency ends at the *server-side
    /// completion instant* of the last response, so collecting a ticket
    /// long after the task finished (an open-loop generator draining its
    /// backlog) does not inflate the measurement.
    ///
    /// # Panics
    /// Panics if the task fails under the overload lane or the cluster
    /// shut down mid-task.
    pub fn wait_from(self, origin: Instant) -> TaskResponse {
        match self.wait_outcome_from(origin) {
            Ok(TaskResolution {
                outcome: TaskOutcome::Completed(resp),
                ..
            }) => resp,
            Ok(TaskResolution {
                outcome: TaskOutcome::Failed { failure },
                ..
            }) => panic!("task failed under overload: {failure:?}"),
            Err(e) => panic!("cluster has shut down: {e}"),
        }
    }

    /// Blocks until the task resolves — served, terminally failed, or
    /// runtime error — measuring latency from the submit instant.
    pub fn wait_outcome(self) -> Result<TaskResolution, RtError> {
        let origin = self.started;
        self.wait_outcome_from(origin)
    }

    /// Blocks until the task resolves, measuring latency from `origin`.
    /// This is the overload lane's collection path: timeouts, retries
    /// and NACK handling all run inside this wait (or inside
    /// [`TaskTicket::poll_outcome`] for the non-blocking variant).
    pub fn wait_outcome_from(mut self, origin: Instant) -> Result<TaskResolution, RtError> {
        self.advance(true)?;
        debug_assert!(self.resolved());
        self.taken = true;
        Ok(self.take_resolution(origin))
    }

    /// Non-blocking progress: handles any replies, timers and backoffs
    /// that are due, and returns the resolution once the task has one.
    /// Returns `Ok(None)` while the task is still in flight (or after
    /// the resolution was already taken). The open-loop generator calls
    /// this between scheduled submissions so retries fire on time.
    pub fn poll_outcome(&mut self, origin: Instant) -> Result<Option<TaskResolution>, RtError> {
        if self.taken {
            return Ok(None);
        }
        self.advance(false)?;
        if self.resolved() {
            self.taken = true;
            Ok(Some(self.take_resolution(origin)))
        } else {
            Ok(None)
        }
    }

    /// Whether every response has already arrived (`wait*` would not
    /// block). Only meaningful on the legacy path (no timeout config):
    /// under the overload lane replies include NACKs and retries, so
    /// schedulers should use [`TaskTicket::poll_outcome`] instead.
    pub fn is_ready(&self) -> bool {
        self.rx.len() >= self.n
    }

    fn resolved(&self) -> bool {
        self.failure.is_some() || self.served == self.n
    }

    /// Drives the state machine: drains replies, fires due timers and
    /// backoffs; with `block` it waits (in panic-watchdog slices) until
    /// the task resolves.
    fn advance(&mut self, block: bool) -> Result<(), RtError> {
        loop {
            if self.inner.panicked.load(Ordering::SeqCst) {
                return Err(RtError::WorkerPanicked);
            }
            loop {
                if self.resolved() {
                    return Ok(());
                }
                match self.rx.try_recv() {
                    Ok(reply) => self.handle_reply(reply)?,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return Err(RtError::ClusterDown),
                }
            }
            let now = Instant::now();
            self.fire_timers(now)?;
            if self.resolved() {
                return Ok(());
            }
            if !block {
                return Ok(());
            }
            // Sleep until the next deadline/backoff/hedge, a reply, or
            // the watchdog tick — whichever is first.
            let mut wake = now + WATCHDOG;
            for slot in &self.slots {
                match slot {
                    SlotState::Pending {
                        deadline: Some(d), ..
                    } => wake = wake.min(*d),
                    SlotState::Backoff { at, .. } => wake = wake.min(*at),
                    _ => {}
                }
            }
            for at in self.hedge_at.iter().flatten() {
                wake = wake.min(*at);
            }
            match self.rx.recv_deadline(wake) {
                Ok(reply) => self.handle_reply(reply)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(RtError::ClusterDown),
            }
        }
    }

    fn handle_reply(&mut self, reply: RtReply) -> Result<(), RtError> {
        match reply {
            RtReply::Served(resp) => {
                self.on_served(resp);
                Ok(())
            }
            RtReply::Nack(nack) => self.on_nack(nack),
        }
    }

    fn on_served(&mut self, resp: RtResponse) {
        debug_assert_eq!(resp.task_id, self.task_id);
        // Balance this attempt's dispatch with selector feedback.
        if let Some(pos) = self
            .open
            .iter()
            .position(|o| o.req_idx == resp.req_idx as usize && o.attempt == resp.attempt)
        {
            self.open.swap_remove(pos);
            let now_ns = self.inner.epoch.elapsed().as_nanos() as u64;
            self.inner.selector.lock().on_response(
                ServerId::new(resp.server as u64),
                now_ns,
                &feedback_of(&resp, self.inner.rtt_ns),
            );
        } else if self.inner.hedge_ns.is_some() {
            // No open entry: the hedged twin won and this attempt was
            // already purged (its selector slot released at purge time).
            // The server did the work anyway; count and discard.
            self.inner
                .duplicate_responses
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let i = resp.req_idx as usize;
        // Any served reply resolves an unresolved slot — a late original
        // beats its own retry, as in the simulator.
        if matches!(self.slots[i], SlotState::Settled) {
            return;
        }
        self.slots[i] = SlotState::Settled;
        self.served += 1;
        self.values[i] = resp.value;
        self.servers[i] = resp.server;
        self.request_ns[i] = resp.total_ns + self.inner.rtt_ns;
        let done_at = resp.completed + Duration::from_nanos(self.inner.rtt_ns);
        if self.latest_completed.is_none_or(|c| done_at > c) {
            self.latest_completed = Some(done_at);
        }
        // First response wins: purge the losing twin(s) of this request
        // — release their selector slots now and send cancels chasing
        // them, so a still-queued duplicate never occupies a server.
        self.hedge_at[i] = None;
        if self.inner.hedge_ns.is_some() {
            self.purge_losers(i, resp.attempt);
        }
    }

    /// Removes every other open attempt of request `i` after `winner`'s
    /// response settled it: each loser's dispatch is balanced with
    /// `on_abandon` here (never again — `on_served`/`on_nack` find no
    /// open entry for it afterwards), and a cancel chases it to the
    /// router. A send error means the cluster is shutting down; the
    /// cancel is then moot, so it is ignored.
    fn purge_losers(&mut self, i: usize, winner: u32) {
        let mut k = 0;
        while k < self.open.len() {
            let o = self.open[k];
            if o.req_idx != i || o.attempt == winner {
                k += 1;
                continue;
            }
            self.open.swap_remove(k);
            self.inner.selector.lock().on_abandon(o.server);
            let _ = self.inner.senders[o.server.index()].send(RtMessage::Cancel(RtCancel {
                task_id: self.task_id,
                req_idx: i as u32,
                attempt: o.attempt,
            }));
        }
    }

    fn on_nack(&mut self, nack: RtNack) -> Result<(), RtError> {
        debug_assert_eq!(nack.task_id, self.task_id);
        // The NACKed attempt never occupied the server; release it.
        if let Some(pos) = self
            .open
            .iter()
            .position(|o| o.req_idx == nack.req_idx as usize && o.attempt == nack.attempt)
        {
            let o = self.open.swap_remove(pos);
            self.inner.selector.lock().on_abandon(o.server);
        }
        let i = nack.req_idx as usize;
        // Only a NACK for the *current* attempt drives the slot; one for
        // a superseded attempt is accounting only.
        let current = matches!(
            self.slots[i],
            SlotState::Pending { attempt, .. } if attempt == nack.attempt
        );
        if !current {
            return Ok(());
        }
        if self.inner.can_retry(nack.attempt) {
            self.begin_retry(i, nack.attempt + 1)
        } else {
            self.failure = Some(match nack.reason {
                DropReason::Shed => TaskFailureKind::Shed,
                DropReason::QueueFull | DropReason::Sojourn => TaskFailureKind::Dropped,
            });
            self.slots[i] = SlotState::Settled;
            Ok(())
        }
    }

    fn fire_timers(&mut self, now: Instant) -> Result<(), RtError> {
        for i in 0..self.slots.len() {
            if self.failure.is_some() {
                return Ok(());
            }
            if self.hedge_at[i].is_some_and(|at| at <= now) {
                self.fire_hedge(i)?;
            }
            match self.slots[i] {
                SlotState::Pending {
                    attempt,
                    deadline: Some(d),
                } if d <= now => self.on_attempt_timeout(i, attempt)?,
                SlotState::Backoff { next_attempt, at } if at <= now => {
                    self.redispatch(i, next_attempt)?
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The hedge timer for request `i` expired with no response yet.
    /// Duplicate it to a second replica under the sim's gates: skip
    /// requests *forecast* slower than the delay (their silence is not
    /// evidence of trouble — Dean & Barroso's "don't hedge the big
    /// ones"), keep duplicates under the 5% budget, and skip rather
    /// than block when the selector rate-limits. The timer disarms
    /// either way: one hedge per request, never re-armed.
    fn fire_hedge(&mut self, i: usize) -> Result<(), RtError> {
        self.hedge_at[i] = None;
        let hedge_ns = self.inner.hedge_ns.expect("hedge fired without config");
        if matches!(self.slots[i], SlotState::Settled) {
            return Ok(());
        }
        let key = self.keys[i];
        let size = self.inner.sizes.size_of(key);
        if self.inner.cost.forecast_ns(size) >= hedge_ns {
            return Ok(());
        }
        let hedged = self.inner.hedged_total.load(Ordering::Relaxed);
        let dispatched = self.inner.dispatched_total.load(Ordering::Relaxed);
        if hedged * 20 >= dispatched {
            return Ok(());
        }
        let replicas = self.inner.ring.replicas_of_group(self.groups[i]);
        let ctx = SelectionCtx {
            now_ns: self.inner.epoch.elapsed().as_nanos() as u64,
            candidates: &replicas,
            value_bytes: size,
            oracle_queue_depths: None,
        };
        let server = match self.inner.selector.lock().select(&ctx) {
            Selection::Dispatch(server) => server,
            Selection::RateLimited { .. } => return Ok(()),
        };
        let tx = self.reply_tx.as_ref().expect("hedge without reply sender");
        self.inner.dispatched_total.fetch_add(1, Ordering::Relaxed);
        self.inner.hedged_total.fetch_add(1, Ordering::Relaxed);
        // No deadline: the original attempt's timer still owns the
        // slot's timeout; the hedge only races it to a response.
        let sent = self.inner.senders[server.index()].send(RtMessage::Request(RtRequest {
            key,
            priority: self.priorities[i],
            req_idx: i as u32,
            task_id: self.task_id,
            attempt: HEDGE_ATTEMPT,
            submitted: Instant::now(),
            reply: tx.clone(),
        }));
        if sent.is_err() {
            return Err(if self.inner.panicked.load(Ordering::SeqCst) {
                RtError::WorkerPanicked
            } else {
                RtError::ClusterDown
            });
        }
        self.open.push(OpenDispatch {
            req_idx: i,
            attempt: HEDGE_ATTEMPT,
            server,
        });
        Ok(())
    }

    fn on_attempt_timeout(&mut self, i: usize, attempt: u32) -> Result<(), RtError> {
        let tc = self.inner.timeout.expect("timeout fired without config");
        if self.inner.can_retry(attempt) {
            self.begin_retry(i, attempt + 1)
        } else {
            // The sim's terminal classification: a single-attempt config
            // times out; a retrying config exhausts.
            self.failure = Some(if tc.max_retries == 0 {
                TaskFailureKind::TimedOut
            } else {
                TaskFailureKind::RetriesExhausted
            });
            self.slots[i] = SlotState::Settled;
            Ok(())
        }
    }

    fn begin_retry(&mut self, i: usize, next_attempt: u32) -> Result<(), RtError> {
        let tc = self.inner.timeout.expect("retry without timeout config");
        self.inner.retried_total.fetch_add(1, Ordering::Relaxed);
        self.retries += 1;
        let backoff = backoff_ns(&tc, next_attempt);
        if backoff == 0 {
            self.redispatch(i, next_attempt)
        } else {
            self.slots[i] = SlotState::Backoff {
                next_attempt,
                at: Instant::now() + Duration::from_nanos(backoff),
            };
            Ok(())
        }
    }

    /// Dispatches attempt `attempt` of request `i`: replica selection
    /// runs again (the retry may pick a healthier server), the attempt
    /// id is fresh, and the deadline re-arms from this dispatch.
    fn redispatch(&mut self, i: usize, attempt: u32) -> Result<(), RtError> {
        let key = self.keys[i];
        let replicas = self.inner.ring.replicas_of_group(self.groups[i]);
        let server = self
            .inner
            .select_replica(&replicas, self.inner.sizes.size_of(key));
        let tc = self
            .inner
            .timeout
            .expect("redispatch without timeout config");
        let tx = self
            .reply_tx
            .as_ref()
            .expect("redispatch without reply sender");
        let now = Instant::now();
        self.inner.dispatched_total.fetch_add(1, Ordering::Relaxed);
        let sent = self.inner.senders[server.index()].send(RtMessage::Request(RtRequest {
            key,
            priority: self.priorities[i],
            req_idx: i as u32,
            task_id: self.task_id,
            attempt,
            submitted: now,
            reply: tx.clone(),
        }));
        if sent.is_err() {
            return Err(if self.inner.panicked.load(Ordering::SeqCst) {
                RtError::WorkerPanicked
            } else {
                RtError::ClusterDown
            });
        }
        self.open.push(OpenDispatch {
            req_idx: i,
            attempt,
            server,
        });
        self.slots[i] = SlotState::Pending {
            attempt,
            deadline: Some(now + Duration::from_nanos(tc.timeout_ns)),
        };
        Ok(())
    }

    fn take_resolution(&mut self, origin: Instant) -> TaskResolution {
        let outcome = match self.failure {
            Some(failure) => TaskOutcome::Failed { failure },
            None => {
                let completed = self.latest_completed.unwrap_or(origin);
                TaskOutcome::Completed(TaskResponse {
                    task_id: self.task_id,
                    latency: completed.saturating_duration_since(origin),
                    values: std::mem::take(&mut self.values),
                    servers: std::mem::take(&mut self.servers),
                    request_ns: std::mem::take(&mut self.request_ns),
                })
            }
        };
        TaskResolution {
            task_id: self.task_id,
            retries: self.retries,
            outcome,
        }
    }
}

impl Drop for TaskTicket {
    fn drop(&mut self) {
        // With hedging on, the drain must run even with nothing open:
        // a purged loser's reply may be sitting in the channel, and it
        // is counted (as duplicate work) rather than silently dropped.
        if self.open.is_empty() && self.inner.hedge_ns.is_none() {
            return;
        }
        // Balance every still-open dispatch exactly once: replies that
        // already landed take the regular feedback path, the rest release
        // their outstanding slots. A reply landing after this drain is
        // dropped with the receiver; its slot was already released here,
        // so the count stays balanced.
        let mut selector = self.inner.selector.lock();
        while let Ok(reply) = self.rx.try_recv() {
            let (req_idx, attempt) = match &reply {
                RtReply::Served(r) => (r.req_idx as usize, r.attempt),
                RtReply::Nack(n) => (n.req_idx as usize, n.attempt),
            };
            let Some(pos) = self
                .open
                .iter()
                .position(|o| o.req_idx == req_idx && o.attempt == attempt)
            else {
                // Already balanced — under hedging this is a purged
                // loser's reply arriving after its slot was released;
                // count the wasted work like the live path does.
                if matches!(reply, RtReply::Served(_)) && self.inner.hedge_ns.is_some() {
                    self.inner
                        .duplicate_responses
                        .fetch_add(1, Ordering::Relaxed);
                }
                continue;
            };
            let o = self.open.swap_remove(pos);
            match reply {
                RtReply::Served(resp) => {
                    let now_ns = self.inner.epoch.elapsed().as_nanos() as u64;
                    selector.on_response(
                        ServerId::new(resp.server as u64),
                        now_ns,
                        &feedback_of(&resp, self.inner.rtt_ns),
                    );
                }
                RtReply::Nack(_) => selector.on_abandon(o.server),
            }
        }
        for o in self.open.drain(..) {
            selector.on_abandon(o.server);
        }
    }
}

/// A handle for submitting tasks to an [`crate::RtCluster`].
pub struct RtClient {
    inner: Arc<ClientInner>,
    policy: PolicyKind,
    task_counter: Arc<AtomicU64>,
}

impl std::fmt::Debug for RtClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtClient")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl RtClient {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ring: Ring,
        cost: CostModel,
        policy: PolicyKind,
        sizes: SizeModel,
        senders: Vec<Sender<RtMessage>>,
        task_counter: Arc<AtomicU64>,
        selector: Box<dyn ReplicaSelector + Send>,
        rtt_ns: u64,
        timeout: Option<RtTimeoutConfig>,
        hedge_ns: Option<u64>,
        panicked: Arc<AtomicBool>,
    ) -> RtClient {
        RtClient {
            inner: Arc::new(ClientInner {
                ring,
                cost,
                sizes,
                senders,
                selector: Arc::new(Mutex::new(selector)),
                epoch: Instant::now(),
                rtt_ns,
                timeout,
                hedge_ns,
                dispatched_total: AtomicU64::new(0),
                retried_total: AtomicU64::new(0),
                hedged_total: AtomicU64::new(0),
                duplicate_responses: AtomicU64::new(0),
                panicked,
            }),
            policy,
            task_counter,
        }
    }

    /// Submits a batch read and blocks until it completes.
    ///
    /// # Panics
    /// Panics on an empty key list, if the cluster shut down mid-task, or
    /// if the task fails under the overload lane.
    pub fn fetch(&self, keys: &[u64]) -> TaskResponse {
        self.fetch_async(keys).wait()
    }

    /// Submits a batch read and returns a ticket to wait on — lets one
    /// client keep many tasks in flight (the large fan-out pattern).
    pub fn fetch_async(&self, keys: &[u64]) -> TaskTicket {
        assert!(!keys.is_empty(), "a task needs at least one key");
        let task_id = self.task_counter.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let arrival_ns = self.inner.epoch.elapsed().as_nanos() as u64;

        // Split into sub-tasks per replica group and forecast costs from
        // the size catalog (the client-side knowledge BRB assumes).
        let n = keys.len();
        let mut costs = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        for &key in keys {
            groups.push(self.inner.ring.group_of_key(key));
            costs.push(self.inner.cost.forecast_ns(self.inner.sizes.size_of(key)));
        }
        // Group → sub-task index via a dense scratch table: replica
        // groups are few (one per partition set), so this is O(n + G)
        // where the old linear rescan was O(n·g) — quadratic on the
        // SoundCloud-style hundreds-of-keys fan-outs.
        let mut group_slot = vec![usize::MAX; self.inner.ring.num_groups() as usize];
        let mut request_subtask = Vec::with_capacity(n);
        let mut subtask_costs: Vec<u64> = Vec::new();
        for (i, g) in groups.iter().enumerate() {
            let slot = &mut group_slot[g.index()];
            if *slot == usize::MAX {
                *slot = subtask_costs.len();
                subtask_costs.push(0);
            }
            let idx = *slot;
            request_subtask.push(idx);
            subtask_costs[idx] += costs[i];
        }
        let view = TaskView {
            arrival_ns,
            request_costs: &costs,
            request_subtask: &request_subtask,
            subtask_costs: &subtask_costs,
        };
        let priorities: Vec<Priority> = self.policy.assign(&view);

        // One response channel per task: no cross-task interference.
        let (tx, rx) = unbounded();
        let deadline = self
            .inner
            .timeout
            .map(|tc| started + Duration::from_nanos(tc.timeout_ns));
        let mut open = Vec::with_capacity(n);
        let mut hedge_at = vec![None; n];
        for (i, &key) in keys.iter().enumerate() {
            let replicas = self.inner.ring.replicas_of_group(groups[i]);
            let server = self
                .inner
                .select_replica(&replicas, self.inner.sizes.size_of(key));
            self.inner.dispatched_total.fetch_add(1, Ordering::Relaxed);
            self.inner.senders[server.index()]
                .send(RtMessage::Request(RtRequest {
                    key,
                    priority: priorities[i],
                    req_idx: i as u32,
                    task_id,
                    attempt: 0,
                    submitted: started,
                    reply: tx.clone(),
                }))
                .expect("cluster has shut down");
            open.push(OpenDispatch {
                req_idx: i,
                attempt: 0,
                server,
            });
            // Arm the hedge timer from the actual dispatch instant (a
            // rate-limited selector may have stalled the loop above).
            if let Some(ns) = self.inner.hedge_ns {
                hedge_at[i] = Some(Instant::now() + Duration::from_nanos(ns));
            }
        }
        // The reply channel is retained whenever later dispatches are
        // possible: retries (timeout config) or hedges.
        let keep_tx = self.inner.timeout.is_some() || self.inner.hedge_ns.is_some();
        TaskTicket {
            inner: Arc::clone(&self.inner),
            task_id,
            n,
            started,
            rx,
            reply_tx: keep_tx.then_some(tx),
            keys: keys.to_vec(),
            groups,
            priorities,
            slots: vec![
                SlotState::Pending {
                    attempt: 0,
                    deadline,
                };
                n
            ],
            hedge_at,
            open,
            values: (0..n).map(|_| None).collect(),
            servers: vec![0; n],
            request_ns: vec![0; n],
            latest_completed: None,
            served: 0,
            retries: 0,
            failure: None,
            taken: false,
        }
    }

    /// This client's outstanding-request count toward `server`
    /// (selector-tracked; diagnostics).
    pub fn outstanding(&self, server: ServerId) -> u64 {
        self.inner.selector.lock().outstanding(server)
    }

    /// Requests this client has dispatched (originals and retries).
    pub fn dispatched_total(&self) -> u64 {
        self.inner.dispatched_total.load(Ordering::Relaxed)
    }

    /// Retries this client has issued.
    pub fn retried_total(&self) -> u64 {
        self.inner.retried_total.load(Ordering::Relaxed)
    }

    /// Hedge duplicates this client has issued.
    pub fn hedged_total(&self) -> u64 {
        self.inner.hedged_total.load(Ordering::Relaxed)
    }

    /// Purged hedge losers whose replies completed anyway and were
    /// discarded (hedging's duplicate-work cost).
    pub fn duplicate_responses(&self) -> u64 {
        self.inner.duplicate_responses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{
        RtCluster, RtClusterConfig, RtQueueConfig, RtTimeoutConfig, SpikeModel, WorkModel,
    };
    use brb_sched::overload::QueueBound;
    use brb_sched::PolicyKind;
    use brb_select::SelectorSpec;
    use brb_store::service::{ServiceModel, ServiceNoise};

    fn cluster() -> RtCluster {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 4,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::UnifIncr,
            work: WorkModel::Instant,
            store_shards: 8,
            ..Default::default()
        });
        c.populate_etc(2_000);
        c
    }

    /// ~`mean_us` µs of noiseless service per request at 64-byte values.
    fn slow_service(mean_us: f64) -> ServiceModel {
        ServiceModel::calibrated_size_linear(mean_us * 1_000.0, 64.0, 1.0, ServiceNoise::None)
    }

    #[test]
    fn fetch_returns_values_in_request_order() {
        let c = cluster();
        let client = c.client();
        let keys = [5u64, 900, 77, 1_500];
        let resp = client.fetch(&keys);
        for (i, &key) in keys.iter().enumerate() {
            let v = resp.values[i].as_ref().expect("populated key");
            assert_eq!(v.len() as u64, c.size_model().size_of(key), "key {key}");
        }
        assert!(resp.latency.as_nanos() > 0);
        assert_eq!(resp.request_ns.len(), 4);
        c.shutdown();
    }

    #[test]
    fn responses_come_from_replicas_of_the_key() {
        let c = cluster();
        let client = c.client();
        for key in 0..200u64 {
            let resp = client.fetch(&[key]);
            let server = brb_store::ids::ServerId::new(resp.servers[0] as u64);
            assert!(
                c.ring().replicas_of_key(key).contains(&server),
                "key {key} answered by non-replica {server}"
            );
        }
        c.shutdown();
    }

    /// Every selector spec must route correctly against the live
    /// cluster (replica-only dispatch, all responses collected).
    #[test]
    fn all_selectors_route_to_replicas() {
        for selector in [
            SelectorSpec::Random,
            SelectorSpec::RoundRobin,
            SelectorSpec::LeastOutstanding,
            SelectorSpec::C3,
        ] {
            let c = RtCluster::start(RtClusterConfig {
                num_servers: 3,
                workers_per_server: 1,
                replication: 2,
                selector,
                work: WorkModel::Instant,
                store_shards: 8,
                ..Default::default()
            });
            c.populate(500, |_| 32);
            let client = c.client();
            for key in 0..100u64 {
                let resp = client.fetch(&[key, key + 100, key + 200]);
                for (i, &s) in resp.servers.iter().enumerate() {
                    let server = brb_store::ids::ServerId::new(s as u64);
                    let key = [key, key + 100, key + 200][i];
                    assert!(
                        c.ring().replicas_of_key(key).contains(&server),
                        "{:?}: key {key} answered by non-replica {server}",
                        selector
                    );
                }
            }
            c.shutdown();
        }
    }

    /// The sub-task grouping path must stay linear: a 500-key task (the
    /// SoundCloud heavy tail) completes with correct per-group
    /// aggregation. This pins the dense-scratch rewrite of the old
    /// O(g²) `iter().find` scan.
    #[test]
    fn large_fanout_task_groups_correctly() {
        let c = cluster();
        let client = c.client();
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3 % 2_000).collect();
        let resp = client.fetch(&keys);
        assert_eq!(resp.values.len(), 500);
        for (i, &key) in keys.iter().enumerate() {
            assert!(resp.values[i].is_some(), "key {key} missing");
            let server = brb_store::ids::ServerId::new(resp.servers[i] as u64);
            assert!(
                c.ring().replicas_of_key(key).contains(&server),
                "key {key} answered by non-replica"
            );
        }
        c.shutdown();
    }

    #[test]
    fn async_tickets_allow_pipelining() {
        let c = cluster();
        let client = c.client();
        let tickets: Vec<_> = (0..50)
            .map(|i| client.fetch_async(&[i, i + 100, i + 200]))
            .collect();
        let mut ids = std::collections::HashSet::new();
        for t in tickets {
            let resp = t.wait();
            assert_eq!(resp.values.len(), 3);
            assert!(ids.insert(resp.task_id), "duplicate task id");
        }
        c.shutdown();
    }

    #[test]
    fn wait_from_extends_latency_to_the_origin() {
        let c = cluster();
        let client = c.client();
        let origin = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ticket = client.fetch_async(&[1, 2, 3]);
        let resp = ticket.wait_from(origin);
        // Measured from the earlier origin, latency must include the 2ms
        // the task "waited" before submission (the open-loop accounting).
        assert!(
            resp.latency >= std::time::Duration::from_millis(2),
            "{:?}",
            resp.latency
        );
        c.shutdown();
    }

    /// Abandoning tickets must not leak selector accounting: every
    /// dispatch is balanced by either a response or an abandon, so
    /// outstanding counts return to zero and selection stays unbiased.
    #[test]
    fn dropped_tickets_release_selector_accounting() {
        let c = cluster(); // least-outstanding selector by default
        let client = c.client();
        for i in 0..20u64 {
            // Drop immediately: most responses have not arrived yet, so
            // this exercises the abandon path; any that did arrive take
            // the regular feedback path.
            drop(client.fetch_async(&[i, i + 500, i + 1000]));
        }
        // Let in-flight responses land (their sends are ignored errors).
        std::thread::sleep(std::time::Duration::from_millis(20));
        for s in 0..4u64 {
            assert_eq!(
                client.outstanding(brb_store::ids::ServerId::new(s)),
                0,
                "server {s} kept phantom outstanding requests"
            );
        }
        // The client still works after abandoning tasks.
        let resp = client.fetch(&[1, 2, 3]);
        assert_eq!(resp.values.len(), 3);
        c.shutdown();
    }

    /// The configured constant-mesh RTT must appear in every recorded
    /// latency (request and task), even though nothing actually sleeps
    /// for it — the accounting that keeps rt reports comparable to the
    /// simulator's 50µs-mesh numbers.
    #[test]
    fn network_rtt_is_accounted_into_latencies() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            workers_per_server: 1,
            replication: 1,
            network_rtt_ns: 3_000_000, // 3ms round trip
            work: WorkModel::Instant,
            store_shards: 4,
            ..Default::default()
        });
        c.populate(10, |_| 8);
        let client = c.client();
        let resp = client.fetch(&[1, 2]);
        assert!(
            resp.latency >= std::time::Duration::from_millis(3),
            "task latency {:?} misses the accounted RTT",
            resp.latency
        );
        for &ns in &resp.request_ns {
            assert!(ns >= 3_000_000, "request latency {ns}ns misses the RTT");
        }
        c.shutdown();
    }

    #[test]
    fn task_ids_are_unique_across_clients() {
        let c = cluster();
        let a = c.client();
        let b = c.client();
        let ra = a.fetch(&[1]);
        let rb = b.fetch(&[2]);
        assert_ne!(ra.task_id, rb.task_id);
        c.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_task_rejected() {
        let c = cluster();
        let client = c.client();
        // Hold the cluster alive until the panic fires.
        let _ = client.fetch(&[]);
    }

    /// A saturated bounded queue must tail-drop: a burst against one
    /// slow worker with capacity 1 NACKs the overflow back, and with no
    /// retry config those tasks fail typed as `Dropped` — while the
    /// resolution counts conserve (`completed + failed == issued`).
    #[test]
    fn bounded_queue_tail_drops_as_typed_failures() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 1,
            workers_per_server: 1,
            replication: 1,
            work: WorkModel::SimulateService(slow_service(2_000.0)), // ~2ms
            store_shards: 4,
            queue: Some(RtQueueConfig {
                bound: QueueBound {
                    capacity: 1,
                    shed_above: None,
                },
                codel: None,
            }),
            ..Default::default()
        });
        c.populate(64, |_| 64);
        let client = c.client();
        let tickets: Vec<_> = (0..10u64).map(|k| client.fetch_async(&[k])).collect();
        let mut completed = 0;
        let mut dropped = 0;
        for t in tickets {
            match t.wait_outcome().expect("live run failed").outcome {
                TaskOutcome::Completed(_) => completed += 1,
                TaskOutcome::Failed { failure } => {
                    assert_eq!(failure, TaskFailureKind::Dropped);
                    dropped += 1;
                }
            }
        }
        assert_eq!(completed + dropped, 10, "conservation");
        assert!(dropped >= 1, "burst of 10 into capacity 1 never dropped");
        assert_eq!(c.dropped_per_server().iter().sum::<u64>(), dropped);
        c.shutdown();
    }

    /// The shed watermark must refuse work *below* capacity and the
    /// refusal must classify as `Shed`, not `Dropped`.
    #[test]
    fn watermark_shedding_classifies_as_shed() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 1,
            workers_per_server: 1,
            replication: 1,
            work: WorkModel::SimulateService(slow_service(2_000.0)),
            store_shards: 4,
            queue: Some(RtQueueConfig {
                bound: QueueBound {
                    capacity: 100,
                    shed_above: Some(1),
                },
                codel: None,
            }),
            ..Default::default()
        });
        c.populate(64, |_| 64);
        let client = c.client();
        let tickets: Vec<_> = (0..10u64).map(|k| client.fetch_async(&[k])).collect();
        let mut shed = 0;
        for t in tickets {
            if let TaskOutcome::Failed { failure } =
                t.wait_outcome().expect("live run failed").outcome
            {
                assert_eq!(failure, TaskFailureKind::Shed);
                shed += 1;
            }
        }
        assert!(shed >= 1, "watermark 1 never shed a 10-task burst");
        assert_eq!(c.shed_per_server().iter().sum::<u64>(), shed);
        c.shutdown();
    }

    /// Deadline timers: a service far beyond the timeout must resolve as
    /// `TimedOut` with retries disabled, and as `RetriesExhausted` after
    /// exactly `max_retries` fresh attempts otherwise.
    #[test]
    fn deadlines_fire_and_retries_exhaust() {
        for (max_retries, expect, expect_retries) in [
            (0u32, TaskFailureKind::TimedOut, 0u32),
            (2, TaskFailureKind::RetriesExhausted, 2),
        ] {
            let c = RtCluster::start(RtClusterConfig {
                num_servers: 1,
                workers_per_server: 1,
                replication: 1,
                work: WorkModel::SimulateService(slow_service(20_000.0)), // ~20ms
                store_shards: 4,
                timeout: Some(RtTimeoutConfig {
                    timeout_ns: 500_000, // 0.5ms
                    max_retries,
                    backoff_base_ns: 0,
                    backoff_cap_ns: 0,
                    retry_budget_percent: None,
                }),
                ..Default::default()
            });
            c.populate(8, |_| 64);
            let client = c.client();
            let res = client
                .fetch_async(&[1])
                .wait_outcome()
                .expect("live run failed");
            match res.outcome {
                TaskOutcome::Failed { failure } => assert_eq!(failure, expect),
                TaskOutcome::Completed(_) => panic!("20ms service beat a 0.5ms deadline"),
            }
            assert_eq!(res.retries, expect_retries);
            c.shutdown();
        }
    }

    /// The retry budget must dry up long before `max_retries` when the
    /// dispatch denominator is small — the simulator's inequality
    /// (`retried·100 ≥ dispatched·percent`) verbatim.
    #[test]
    fn retry_budget_limits_retries() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 1,
            workers_per_server: 1,
            replication: 1,
            work: WorkModel::SimulateService(slow_service(20_000.0)),
            store_shards: 4,
            timeout: Some(RtTimeoutConfig {
                timeout_ns: 500_000,
                max_retries: 10,
                backoff_base_ns: 0,
                backoff_cap_ns: 0,
                retry_budget_percent: Some(1),
            }),
            ..Default::default()
        });
        c.populate(8, |_| 64);
        let client = c.client();
        let res = client
            .fetch_async(&[1])
            .wait_outcome()
            .expect("live run failed");
        assert!(
            matches!(
                res.outcome,
                TaskOutcome::Failed {
                    failure: TaskFailureKind::RetriesExhausted
                }
            ),
            "{:?}",
            res.outcome
        );
        // One retry doubles the dispatch count to 2; 1·100 ≥ 2·1 dries
        // the 1% budget immediately after.
        assert_eq!(res.retries, 1, "budget did not bind");
        c.shutdown();
    }

    /// A hedged cluster where every request spikes ~20ms while the
    /// forecast stays ~0.1ms: the original goes silent past the hedge
    /// delay, so exactly one duplicate fires (first check always passes
    /// the 5% budget), the first response wins, and the losing twin —
    /// purged mid-service — completes into a counted, discarded
    /// duplicate instead of phantom selector state.
    fn hedging_cluster() -> RtCluster {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            workers_per_server: 1,
            replication: 2,
            work: WorkModel::SimulateService(slow_service(100.0)), // ~0.1ms
            store_shards: 4,
            hedge_delay_ns: Some(2_000_000), // 2ms
            spike: Some(SpikeModel {
                p_spike: 1.0,
                extra_lo_ns: 20_000_000,
                extra_hi_ns: 20_000_000,
            }),
            ..Default::default()
        });
        c.populate(16, |_| 64);
        c
    }

    #[test]
    fn hedges_duplicate_stragglers_and_discard_the_loser() {
        let c = hedging_cluster();
        let client = c.client();
        let origin = Instant::now();
        let mut t = client.fetch_async(&[3]);
        let res = loop {
            match t.poll_outcome(origin).expect("live run failed") {
                Some(r) => break r,
                None => std::thread::sleep(Duration::from_micros(200)),
            }
        };
        let TaskOutcome::Completed(resp) = res.outcome else {
            panic!("hedged task failed");
        };
        assert!(resp.values[0].is_some());
        assert_eq!(client.hedged_total(), 1, "20ms straggler must hedge once");
        // The losing twin is mid-service; let it finish and reply, then
        // drop the ticket — the drain must discard and count the reply.
        std::thread::sleep(Duration::from_millis(45));
        drop(t);
        assert_eq!(
            client.duplicate_responses(),
            1,
            "the purged loser's completion must be counted as duplicate work"
        );
        for s in 0..2u64 {
            assert_eq!(
                client.outstanding(brb_store::ids::ServerId::new(s)),
                0,
                "server {s} kept phantom outstanding requests"
            );
        }
        c.shutdown();
    }

    /// PR 5's leak contract extended to hedging: abandoning a ticket
    /// with a losing duplicate still mid-service balances every
    /// dispatch — selector outstanding returns to zero and the client
    /// keeps working.
    #[test]
    fn hedged_dropped_tickets_release_selector_accounting() {
        let c = hedging_cluster();
        let client = c.client();
        let mut t = client.fetch_async(&[3]);
        // Let the hedge delay pass, then poll once to fire the duplicate
        // (both twins are then held mid-service by the ~20ms spike).
        std::thread::sleep(Duration::from_millis(3));
        let _ = t.poll_outcome(Instant::now()).expect("live run failed");
        assert_eq!(
            client.hedged_total(),
            1,
            "hedge did not fire before abandon"
        );
        drop(t);
        for s in 0..2u64 {
            assert_eq!(
                client.outstanding(brb_store::ids::ServerId::new(s)),
                0,
                "abandoned hedged ticket leaked outstanding on server {s}"
            );
        }
        // Replies landing after the abandon go to a closed channel; the
        // client must still work and stay balanced.
        std::thread::sleep(Duration::from_millis(45));
        let resp = client.fetch(&[5]);
        assert_eq!(resp.values.len(), 1);
        for s in 0..2u64 {
            assert_eq!(client.outstanding(brb_store::ids::ServerId::new(s)), 0);
        }
        c.shutdown();
    }

    /// Exponential backoff mirrors the simulator's curve.
    #[test]
    fn backoff_curve_matches_sim() {
        let tc = RtTimeoutConfig {
            timeout_ns: 1,
            max_retries: 16,
            backoff_base_ns: 100,
            backoff_cap_ns: 1_000,
            retry_budget_percent: None,
        };
        assert_eq!(backoff_ns(&tc, 1), 100);
        assert_eq!(backoff_ns(&tc, 2), 200);
        assert_eq!(backoff_ns(&tc, 3), 400);
        assert_eq!(backoff_ns(&tc, 5), 1_000, "cap binds");
        let uncapped = RtTimeoutConfig {
            backoff_cap_ns: 0,
            ..tc
        };
        assert_eq!(backoff_ns(&uncapped, 5), 1_600, "cap 0 = uncapped");
        let immediate = RtTimeoutConfig {
            backoff_base_ns: 0,
            ..tc
        };
        assert_eq!(backoff_ns(&immediate, 1), 0, "base 0 retries immediately");
    }
}
