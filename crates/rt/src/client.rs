//! The client handle: task splitting, priority assignment, replica
//! selection, dispatch and response collection — §2.1's pipeline against
//! real threads.
//!
//! Replica choice is delegated to a `brb-select` selector fed by the
//! piggybacked `queue_len` / `service_ns` response fields (the C3
//! feedback mechanism), replacing the load-oblivious global round-robin
//! counter this client started with.

use crate::timing;
use crate::transport::{RtRequest, RtResponse};
use brb_sched::{PolicyKind, Priority, PriorityPolicy, TaskView};
use brb_select::{ReplicaSelector, ResponseFeedback, Selection, SelectionCtx};
use brb_store::cost::CostModel;
use brb_store::ids::ServerId;
use brb_store::partition::Ring;
use brb_workload::taskgen::SizeModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The completed result of one task.
#[derive(Debug)]
pub struct TaskResponse {
    /// The task id assigned at submission.
    pub task_id: u64,
    /// End-to-end task latency: measurement origin → the last response's
    /// server-side completion instant. The origin is the submit instant
    /// for [`RtClient::fetch`]/[`TaskTicket::wait`], or an earlier
    /// intended-arrival instant for [`TaskTicket::wait_from`] (the
    /// open-loop generator's coordinated-omission-free accounting).
    pub latency: Duration,
    /// Values in request order (`None` for unknown keys).
    pub values: Vec<Option<Bytes>>,
    /// Which server answered each request.
    pub servers: Vec<u32>,
    /// Per-request total latencies in nanoseconds (submit → response
    /// send, plus the cluster's accounted network RTT).
    pub request_ns: Vec<u64>,
}

type SharedSelector = Arc<Mutex<Box<dyn ReplicaSelector + Send>>>;

/// The piggybacked server state a response carries; `rtt_ns` is the
/// accounted network round trip (the client-observed response time in a
/// constant mesh includes it).
fn feedback_of(resp: &RtResponse, rtt_ns: u64) -> ResponseFeedback {
    ResponseFeedback {
        response_time_ns: resp.total_ns + rtt_ns,
        queue_len: resp.queue_len as u64,
        service_time_ns: resp.service_ns,
    }
}

/// A pending asynchronous task.
///
/// Dropping a ticket without waiting abandons the task: responses that
/// already arrived still feed the selector, and the rest release their
/// outstanding-request accounting (`on_abandon`), so an abandoned
/// large-fanout task cannot permanently steer traffic away from the
/// replicas it touched.
pub struct TaskTicket {
    task_id: u64,
    n: usize,
    started: Instant,
    rx: Receiver<RtResponse>,
    selector: SharedSelector,
    epoch: Instant,
    /// The server each request was dispatched to (by request index).
    dispatched: Vec<ServerId>,
    /// Which request indices have been accounted to the selector
    /// (`on_response`). Shared between `wait_from` and `Drop` so a
    /// panic mid-collection (cluster shutdown) cannot double-account a
    /// dispatch as both response and abandon.
    accounted: Vec<bool>,
    /// Accounted network round trip, nanoseconds.
    rtt_ns: u64,
    /// Set by `wait_from` once every dispatch has been accounted.
    collected: bool,
}

impl TaskTicket {
    /// Blocks until every response arrives; latency is measured from the
    /// submit instant.
    pub fn wait(self) -> TaskResponse {
        let origin = self.started;
        self.wait_from(origin)
    }

    /// Blocks until every response arrives, measuring latency from
    /// `origin` — the corrected recording path shared by both load
    /// generator modes. The recorded latency ends at the *server-side
    /// completion instant* of the last response, so collecting a ticket
    /// long after the task finished (an open-loop generator draining its
    /// backlog) does not inflate the measurement.
    pub fn wait_from(mut self, origin: Instant) -> TaskResponse {
        let rtt = Duration::from_nanos(self.rtt_ns);
        let mut values: Vec<Option<Bytes>> = (0..self.n).map(|_| None).collect();
        let mut servers = vec![0u32; self.n];
        let mut request_ns = vec![0u64; self.n];
        let mut completed = origin;
        for _ in 0..self.n {
            let resp = self.rx.recv().expect("cluster has shut down");
            debug_assert_eq!(resp.task_id, self.task_id);
            // Feed the selector the piggybacked server state.
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            self.selector.lock().on_response(
                ServerId::new(resp.server as u64),
                now_ns,
                &feedback_of(&resp, self.rtt_ns),
            );
            let i = resp.req_idx as usize;
            self.accounted[i] = true;
            values[i] = resp.value;
            servers[i] = resp.server;
            request_ns[i] = resp.total_ns + self.rtt_ns;
            let done = resp.completed + rtt;
            if done > completed {
                completed = done;
            }
        }
        self.collected = true;
        TaskResponse {
            task_id: self.task_id,
            latency: completed.saturating_duration_since(origin),
            values,
            servers,
            request_ns,
        }
    }

    /// Whether every response has already arrived (`wait*` would not
    /// block). Lets an open-loop generator drain completed tasks — and
    /// deliver their selector feedback — while staying on schedule.
    pub fn is_ready(&self) -> bool {
        self.rx.len() >= self.n
    }
}

impl Drop for TaskTicket {
    fn drop(&mut self) {
        if self.collected {
            return;
        }
        // The task was abandoned (or collection panicked part-way).
        // Credit what arrived and was not yet accounted as regular
        // feedback, then release the outstanding slots of the rest —
        // exactly one accounting action per dispatch, even when
        // `wait_from` consumed some responses before unwinding. A
        // response landing after this drain is dropped with the
        // receiver; its slot was already released here, so the count
        // stays balanced.
        let mut selector = self.selector.lock();
        while let Ok(resp) = self.rx.try_recv() {
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            selector.on_response(
                ServerId::new(resp.server as u64),
                now_ns,
                &feedback_of(&resp, self.rtt_ns),
            );
            self.accounted[resp.req_idx as usize] = true;
        }
        for (i, &server) in self.dispatched.iter().enumerate() {
            if !self.accounted[i] {
                selector.on_abandon(server);
            }
        }
    }
}

/// A handle for submitting tasks to an [`crate::RtCluster`].
pub struct RtClient {
    ring: Ring,
    cost: CostModel,
    policy: PolicyKind,
    sizes: SizeModel,
    senders: Vec<Sender<RtRequest>>,
    task_counter: Arc<AtomicU64>,
    selector: SharedSelector,
    epoch: Instant,
    /// Accounted network round trip per request (see
    /// [`crate::RtClusterConfig::network_rtt_ns`]).
    rtt_ns: u64,
}

impl RtClient {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ring: Ring,
        cost: CostModel,
        policy: PolicyKind,
        sizes: SizeModel,
        senders: Vec<Sender<RtRequest>>,
        task_counter: Arc<AtomicU64>,
        selector: Box<dyn ReplicaSelector + Send>,
        rtt_ns: u64,
    ) -> RtClient {
        RtClient {
            ring,
            cost,
            policy,
            sizes,
            senders,
            task_counter,
            selector: Arc::new(Mutex::new(selector)),
            epoch: Instant::now(),
            rtt_ns,
        }
    }

    /// Submits a batch read and blocks until it completes.
    ///
    /// # Panics
    /// Panics on an empty key list or if the cluster shut down mid-task.
    pub fn fetch(&self, keys: &[u64]) -> TaskResponse {
        self.fetch_async(keys).wait()
    }

    /// Submits a batch read and returns a ticket to wait on — lets one
    /// client keep many tasks in flight (the large fan-out pattern).
    pub fn fetch_async(&self, keys: &[u64]) -> TaskTicket {
        assert!(!keys.is_empty(), "a task needs at least one key");
        let task_id = self.task_counter.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let arrival_ns = self.epoch.elapsed().as_nanos() as u64;

        // Split into sub-tasks per replica group and forecast costs from
        // the size catalog (the client-side knowledge BRB assumes).
        let n = keys.len();
        let mut costs = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        for &key in keys {
            groups.push(self.ring.group_of_key(key));
            costs.push(self.cost.forecast_ns(self.sizes.size_of(key)));
        }
        // Group → sub-task index via a dense scratch table: replica
        // groups are few (one per partition set), so this is O(n + G)
        // where the old linear rescan was O(n·g) — quadratic on the
        // SoundCloud-style hundreds-of-keys fan-outs.
        let mut group_slot = vec![usize::MAX; self.ring.num_groups() as usize];
        let mut request_subtask = Vec::with_capacity(n);
        let mut subtask_costs: Vec<u64> = Vec::new();
        for (i, g) in groups.iter().enumerate() {
            let slot = &mut group_slot[g.index()];
            if *slot == usize::MAX {
                *slot = subtask_costs.len();
                subtask_costs.push(0);
            }
            let idx = *slot;
            request_subtask.push(idx);
            subtask_costs[idx] += costs[i];
        }
        let view = TaskView {
            arrival_ns,
            request_costs: &costs,
            request_subtask: &request_subtask,
            subtask_costs: &subtask_costs,
        };
        let priorities: Vec<Priority> = self.policy.assign(&view);

        // One response channel per task: no cross-task interference.
        let (tx, rx) = unbounded();
        let mut dispatched = Vec::with_capacity(n);
        for (i, &key) in keys.iter().enumerate() {
            let replicas = self.ring.replicas_of_group(groups[i]);
            let server = self.select_replica(&replicas, self.sizes.size_of(key));
            dispatched.push(server);
            self.senders[server.index()]
                .send(RtRequest {
                    key,
                    priority: priorities[i],
                    req_idx: i as u32,
                    task_id,
                    submitted: started,
                    reply: tx.clone(),
                })
                .expect("cluster has shut down");
        }
        TaskTicket {
            task_id,
            n,
            started,
            rx,
            selector: Arc::clone(&self.selector),
            epoch: self.epoch,
            dispatched,
            accounted: vec![false; n],
            rtt_ns: self.rtt_ns,
            collected: false,
        }
    }

    /// Runs the selector over a request's replica group. A rate-limiting
    /// selector (C3) may refuse every candidate; the live client then
    /// waits out the earliest token (bounded per iteration so a clock
    /// hiccup cannot park the submission thread for long).
    fn select_replica(&self, candidates: &[ServerId], value_bytes: u64) -> ServerId {
        const MAX_PAUSE: Duration = Duration::from_millis(1);
        loop {
            let ctx = SelectionCtx {
                now_ns: self.epoch.elapsed().as_nanos() as u64,
                candidates,
                value_bytes,
                oracle_queue_depths: None,
            };
            let decision = self.selector.lock().select(&ctx);
            match decision {
                Selection::Dispatch(server) => return server,
                Selection::RateLimited { retry_in_ns } => {
                    timing::wait_for(Duration::from_nanos(retry_in_ns).min(MAX_PAUSE));
                }
            }
        }
    }

    /// This client's outstanding-request count toward `server`
    /// (selector-tracked; diagnostics).
    pub fn outstanding(&self, server: ServerId) -> u64 {
        self.selector.lock().outstanding(server)
    }
}

#[cfg(test)]
mod tests {
    use crate::server::{RtCluster, RtClusterConfig, WorkModel};
    use brb_sched::PolicyKind;
    use brb_select::SelectorSpec;

    fn cluster() -> RtCluster {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 4,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::UnifIncr,
            work: WorkModel::Instant,
            store_shards: 8,
            ..Default::default()
        });
        c.populate_etc(2_000);
        c
    }

    #[test]
    fn fetch_returns_values_in_request_order() {
        let c = cluster();
        let client = c.client();
        let keys = [5u64, 900, 77, 1_500];
        let resp = client.fetch(&keys);
        for (i, &key) in keys.iter().enumerate() {
            let v = resp.values[i].as_ref().expect("populated key");
            assert_eq!(v.len() as u64, c.size_model().size_of(key), "key {key}");
        }
        assert!(resp.latency.as_nanos() > 0);
        assert_eq!(resp.request_ns.len(), 4);
        c.shutdown();
    }

    #[test]
    fn responses_come_from_replicas_of_the_key() {
        let c = cluster();
        let client = c.client();
        for key in 0..200u64 {
            let resp = client.fetch(&[key]);
            let server = brb_store::ids::ServerId::new(resp.servers[0] as u64);
            assert!(
                c.ring().replicas_of_key(key).contains(&server),
                "key {key} answered by non-replica {server}"
            );
        }
        c.shutdown();
    }

    /// Every selector spec must route correctly against the live
    /// cluster (replica-only dispatch, all responses collected).
    #[test]
    fn all_selectors_route_to_replicas() {
        for selector in [
            SelectorSpec::Random,
            SelectorSpec::RoundRobin,
            SelectorSpec::LeastOutstanding,
            SelectorSpec::C3,
        ] {
            let c = RtCluster::start(RtClusterConfig {
                num_servers: 3,
                workers_per_server: 1,
                replication: 2,
                selector,
                work: WorkModel::Instant,
                store_shards: 8,
                ..Default::default()
            });
            c.populate(500, |_| 32);
            let client = c.client();
            for key in 0..100u64 {
                let resp = client.fetch(&[key, key + 100, key + 200]);
                for (i, &s) in resp.servers.iter().enumerate() {
                    let server = brb_store::ids::ServerId::new(s as u64);
                    let key = [key, key + 100, key + 200][i];
                    assert!(
                        c.ring().replicas_of_key(key).contains(&server),
                        "{:?}: key {key} answered by non-replica {server}",
                        selector
                    );
                }
            }
            c.shutdown();
        }
    }

    /// The sub-task grouping path must stay linear: a 500-key task (the
    /// SoundCloud heavy tail) completes with correct per-group
    /// aggregation. This pins the dense-scratch rewrite of the old
    /// O(g²) `iter().find` scan.
    #[test]
    fn large_fanout_task_groups_correctly() {
        let c = cluster();
        let client = c.client();
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3 % 2_000).collect();
        let resp = client.fetch(&keys);
        assert_eq!(resp.values.len(), 500);
        for (i, &key) in keys.iter().enumerate() {
            assert!(resp.values[i].is_some(), "key {key} missing");
            let server = brb_store::ids::ServerId::new(resp.servers[i] as u64);
            assert!(
                c.ring().replicas_of_key(key).contains(&server),
                "key {key} answered by non-replica"
            );
        }
        c.shutdown();
    }

    #[test]
    fn async_tickets_allow_pipelining() {
        let c = cluster();
        let client = c.client();
        let tickets: Vec<_> = (0..50)
            .map(|i| client.fetch_async(&[i, i + 100, i + 200]))
            .collect();
        let mut ids = std::collections::HashSet::new();
        for t in tickets {
            let resp = t.wait();
            assert_eq!(resp.values.len(), 3);
            assert!(ids.insert(resp.task_id), "duplicate task id");
        }
        c.shutdown();
    }

    #[test]
    fn wait_from_extends_latency_to_the_origin() {
        let c = cluster();
        let client = c.client();
        let origin = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ticket = client.fetch_async(&[1, 2, 3]);
        let resp = ticket.wait_from(origin);
        // Measured from the earlier origin, latency must include the 2ms
        // the task "waited" before submission (the open-loop accounting).
        assert!(
            resp.latency >= std::time::Duration::from_millis(2),
            "{:?}",
            resp.latency
        );
        c.shutdown();
    }

    /// Abandoning tickets must not leak selector accounting: every
    /// dispatch is balanced by either a response or an abandon, so
    /// outstanding counts return to zero and selection stays unbiased.
    #[test]
    fn dropped_tickets_release_selector_accounting() {
        let c = cluster(); // least-outstanding selector by default
        let client = c.client();
        for i in 0..20u64 {
            // Drop immediately: most responses have not arrived yet, so
            // this exercises the abandon path; any that did arrive take
            // the regular feedback path.
            drop(client.fetch_async(&[i, i + 500, i + 1000]));
        }
        // Let in-flight responses land (their sends are ignored errors).
        std::thread::sleep(std::time::Duration::from_millis(20));
        for s in 0..4u64 {
            assert_eq!(
                client.outstanding(brb_store::ids::ServerId::new(s)),
                0,
                "server {s} kept phantom outstanding requests"
            );
        }
        // The client still works after abandoning tasks.
        let resp = client.fetch(&[1, 2, 3]);
        assert_eq!(resp.values.len(), 3);
        c.shutdown();
    }

    /// The configured constant-mesh RTT must appear in every recorded
    /// latency (request and task), even though nothing actually sleeps
    /// for it — the accounting that keeps rt reports comparable to the
    /// simulator's 50µs-mesh numbers.
    #[test]
    fn network_rtt_is_accounted_into_latencies() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            workers_per_server: 1,
            replication: 1,
            network_rtt_ns: 3_000_000, // 3ms round trip
            work: WorkModel::Instant,
            store_shards: 4,
            ..Default::default()
        });
        c.populate(10, |_| 8);
        let client = c.client();
        let resp = client.fetch(&[1, 2]);
        assert!(
            resp.latency >= std::time::Duration::from_millis(3),
            "task latency {:?} misses the accounted RTT",
            resp.latency
        );
        for &ns in &resp.request_ns {
            assert!(ns >= 3_000_000, "request latency {ns}ns misses the RTT");
        }
        c.shutdown();
    }

    #[test]
    fn task_ids_are_unique_across_clients() {
        let c = cluster();
        let a = c.client();
        let b = c.client();
        let ra = a.fetch(&[1]);
        let rb = b.fetch(&[2]);
        assert_ne!(ra.task_id, rb.task_id);
        c.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_task_rejected() {
        let c = cluster();
        let client = c.client();
        // Hold the cluster alive until the panic fires.
        let _ = client.fetch(&[]);
    }
}
