//! The client handle: task splitting, priority assignment, dispatch and
//! response collection — §2.1's pipeline against real threads.

use crate::transport::{RtRequest, RtResponse};
use brb_sched::{PolicyKind, Priority, PriorityPolicy, TaskView};
use brb_store::cost::CostModel;
use brb_store::partition::Ring;
use brb_workload::taskgen::SizeModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The completed result of one task.
#[derive(Debug)]
pub struct TaskResponse {
    /// The task id assigned at submission.
    pub task_id: u64,
    /// End-to-end task latency (submit → last response).
    pub latency: Duration,
    /// Values in request order (`None` for unknown keys).
    pub values: Vec<Option<Bytes>>,
    /// Which server answered each request.
    pub servers: Vec<u32>,
    /// Per-request total latencies in nanoseconds.
    pub request_ns: Vec<u64>,
}

/// A pending asynchronous task.
pub struct TaskTicket {
    task_id: u64,
    n: usize,
    started: Instant,
    rx: Receiver<RtResponse>,
}

impl TaskTicket {
    /// Blocks until every response arrives.
    pub fn wait(self) -> TaskResponse {
        collect(self.task_id, self.n, self.started, &self.rx)
    }
}

/// A handle for submitting tasks to an [`crate::RtCluster`].
pub struct RtClient {
    ring: Ring,
    cost: CostModel,
    policy: PolicyKind,
    sizes: SizeModel,
    senders: Vec<Sender<RtRequest>>,
    task_counter: Arc<AtomicU64>,
    rr: AtomicU64,
    epoch: Instant,
}

impl RtClient {
    pub(crate) fn new(
        ring: Ring,
        cost: CostModel,
        policy: PolicyKind,
        sizes: SizeModel,
        senders: Vec<Sender<RtRequest>>,
        task_counter: Arc<AtomicU64>,
    ) -> RtClient {
        RtClient {
            ring,
            cost,
            policy,
            sizes,
            senders,
            task_counter,
            rr: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Submits a batch read and blocks until it completes.
    ///
    /// # Panics
    /// Panics on an empty key list or if the cluster shut down mid-task.
    pub fn fetch(&self, keys: &[u64]) -> TaskResponse {
        self.fetch_async(keys).wait()
    }

    /// Submits a batch read and returns a ticket to wait on — lets one
    /// client keep many tasks in flight (the large fan-out pattern).
    pub fn fetch_async(&self, keys: &[u64]) -> TaskTicket {
        assert!(!keys.is_empty(), "a task needs at least one key");
        let task_id = self.task_counter.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let arrival_ns = self.epoch.elapsed().as_nanos() as u64;

        // Split into sub-tasks per replica group and forecast costs from
        // the size catalog (the client-side knowledge BRB assumes).
        let n = keys.len();
        let mut costs = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        for &key in keys {
            groups.push(self.ring.group_of_key(key));
            costs.push(self.cost.forecast_ns(self.sizes.size_of(key)));
        }
        let mut subtask_of: Vec<(u64, usize)> = Vec::new();
        let mut request_subtask = Vec::with_capacity(n);
        let mut subtask_costs: Vec<u64> = Vec::new();
        for (i, g) in groups.iter().enumerate() {
            let idx = match subtask_of.iter().find(|(gg, _)| *gg == g.raw()) {
                Some((_, idx)) => *idx,
                None => {
                    subtask_of.push((g.raw(), subtask_costs.len()));
                    subtask_costs.push(0);
                    subtask_costs.len() - 1
                }
            };
            request_subtask.push(idx);
            subtask_costs[idx] += costs[i];
        }
        let view = TaskView {
            arrival_ns,
            request_costs: &costs,
            request_subtask: &request_subtask,
            subtask_costs: &subtask_costs,
        };
        let priorities: Vec<Priority> = self.policy.assign(&view);

        // One response channel per task: no cross-task interference.
        let (tx, rx) = unbounded();
        for (i, &key) in keys.iter().enumerate() {
            let replicas = self.ring.replicas_of_group(groups[i]);
            let pick = (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % replicas.len();
            let server = replicas[pick];
            self.senders[server.index()]
                .send(RtRequest {
                    key,
                    priority: priorities[i],
                    req_idx: i as u32,
                    task_id,
                    submitted: started,
                    reply: tx.clone(),
                })
                .expect("cluster has shut down");
        }
        TaskTicket {
            task_id,
            n,
            started,
            rx,
        }
    }
}

fn collect(task_id: u64, n: usize, started: Instant, rx: &Receiver<RtResponse>) -> TaskResponse {
    let mut values: Vec<Option<Bytes>> = (0..n).map(|_| None).collect();
    let mut servers = vec![0u32; n];
    let mut request_ns = vec![0u64; n];
    for _ in 0..n {
        let resp = rx.recv().expect("cluster has shut down");
        debug_assert_eq!(resp.task_id, task_id);
        let i = resp.req_idx as usize;
        values[i] = resp.value;
        servers[i] = resp.server;
        request_ns[i] = resp.total_ns;
    }
    TaskResponse {
        task_id,
        latency: started.elapsed(),
        values,
        servers,
        request_ns,
    }
}

#[cfg(test)]
mod tests {
    use crate::server::{RtCluster, RtClusterConfig, WorkModel};
    use brb_sched::PolicyKind;

    fn cluster() -> RtCluster {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 4,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::UnifIncr,
            work: WorkModel::Instant,
            store_shards: 8,
        });
        c.populate_etc(2_000);
        c
    }

    #[test]
    fn fetch_returns_values_in_request_order() {
        let c = cluster();
        let client = c.client();
        let keys = [5u64, 900, 77, 1_500];
        let resp = client.fetch(&keys);
        for (i, &key) in keys.iter().enumerate() {
            let v = resp.values[i].as_ref().expect("populated key");
            assert_eq!(v.len() as u64, c.size_model().size_of(key), "key {key}");
        }
        assert!(resp.latency.as_nanos() > 0);
        assert_eq!(resp.request_ns.len(), 4);
        c.shutdown();
    }

    #[test]
    fn responses_come_from_replicas_of_the_key() {
        let c = cluster();
        let client = c.client();
        for key in 0..200u64 {
            let resp = client.fetch(&[key]);
            let server = brb_store::ids::ServerId::new(resp.servers[0] as u64);
            assert!(
                c.ring().replicas_of_key(key).contains(&server),
                "key {key} answered by non-replica {server}"
            );
        }
        c.shutdown();
    }

    #[test]
    fn async_tickets_allow_pipelining() {
        let c = cluster();
        let client = c.client();
        let tickets: Vec<_> = (0..50)
            .map(|i| client.fetch_async(&[i, i + 100, i + 200]))
            .collect();
        let mut ids = std::collections::HashSet::new();
        for t in tickets {
            let resp = t.wait();
            assert_eq!(resp.values.len(), 3);
            assert!(ids.insert(resp.task_id), "duplicate task id");
        }
        c.shutdown();
    }

    #[test]
    fn task_ids_are_unique_across_clients() {
        let c = cluster();
        let a = c.client();
        let b = c.client();
        let ra = a.fetch(&[1]);
        let rb = b.fetch(&[2]);
        assert_ne!(ra.task_id, rb.task_id);
        c.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_task_rejected() {
        let c = cluster();
        let client = c.client();
        // Hold the cluster alive until the panic fires.
        let _ = client.fetch(&[]);
    }
}
