//! Typed failures of the live runtime.
//!
//! The threaded cluster can fail in ways the simulator cannot: an OS
//! thread panics mid-run, or channels disconnect while a task is still
//! waiting. Both used to surface as a client-side panic (or, worse, a
//! hang on a silent queue); they now flow out as [`RtError`] so the lab
//! backend fails a run with a typed error instead of poisoning the
//! harness.

use std::fmt;

/// A live-runtime run failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtError {
    /// A server worker or router thread panicked mid-run. The cluster's
    /// panic flag is sticky: every in-flight and subsequent wait fails
    /// fast instead of blocking on replies that will never arrive.
    WorkerPanicked,
    /// The cluster's channels disconnected (shutdown or thread death)
    /// before the task resolved.
    ClusterDown,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::WorkerPanicked => {
                write!(f, "a live worker or router thread panicked mid-run")
            }
            RtError::ClusterDown => {
                write!(f, "the live cluster shut down before the task resolved")
            }
        }
    }
}

impl std::error::Error for RtError {}
