//! # brb-rt — a real-time threaded BRB runtime
//!
//! The simulation crates validate the algorithms; this crate is the
//! *adoptable implementation*: an in-process, multi-threaded storage
//! cluster with BRB task-aware scheduling, following the event-driven,
//! message-passing style of the networking guides (crossbeam channels for
//! requests/responses, a condvar-guarded stable priority queue per server,
//! no blocking on hot paths beyond the queue itself, zero-copy reads via
//! `bytes::Bytes`).
//!
//! Measurement discipline (see `crates/rt/README.md`):
//!
//! * service times are waited out with a hybrid sleep/spin
//!   ([`timing`]) — raw `thread::sleep` adds 50µs–1ms of OS timer slack
//!   per request, more than the differences the strategies create;
//! * the load generator ([`run_load`]) offers both a closed-loop window
//!   and an **open-loop Poisson** mode that records latency from each
//!   task's *intended* arrival, so a saturated cluster cannot hide its
//!   queueing delay (coordinated omission);
//! * replica selection is feedback-driven through `brb-select`
//!   ([`brb_select::SelectorSpec`]), consuming the `queue_len` /
//!   `service_ns` fields servers piggyback on every response.
//!
//! The **overload lane** ports the simulator's saturation story onto
//! real threads: bounded server queues with watermark shedding and a
//! CoDel controller on measured sojourn times ([`RtQueueConfig`]),
//! typed NACKs over the transport, client-side wall-clock deadline
//! timers with budgeted capped-exponential retries ([`RtTimeoutConfig`]),
//! and typed task outcomes ([`TaskOutcome`]) under the conservation
//! contract `completed + dropped + timed_out + shed == issued`. Worker
//! and router threads are panic-guarded: a thread that dies mid-run
//! trips a sticky flag and every wait fails fast with a typed
//! [`RtError`] instead of hanging the harness.
//!
//! The **credits and duplication lanes** close the last strategy gaps
//! with the simulator: a controller thread ([`RtCreditsConfig`]) runs
//! `brb-sched`'s demand-driven credit allocation over real demand
//! reports and congestion signals, clients enforce the published grants
//! through per-client token buckets; the model realization's single
//! cross-server queue runs live as a work-pull global queue
//! ([`RtQueueMode::Global`]); and hedged requests
//! ([`RtClusterConfig::hedge_delay_ns`]) duplicate stragglers with
//! first-response-wins and duplicate-aware cancellation over
//! [`RtCancel`] control messages.
//!
//! ```
//! use brb_rt::{RtClusterConfig, RtCluster, WorkModel};
//! use brb_sched::PolicyKind;
//!
//! let cluster = RtCluster::start(RtClusterConfig {
//!     num_servers: 3,
//!     workers_per_server: 2,
//!     replication: 2,
//!     policy: PolicyKind::UnifIncr,
//!     work: WorkModel::Instant,
//!     ..Default::default()
//! });
//! cluster.populate(1_000, |k| (k % 64) + 1);
//! let client = cluster.client();
//! let resp = client.fetch(&[1, 2, 3]);
//! assert_eq!(resp.values.len(), 3);
//! cluster.shutdown();
//! ```

pub mod client;
pub mod credits;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod timing;
pub mod transport;

pub use client::{
    RtClient, TaskFailureKind, TaskOutcome, TaskResolution, TaskResponse, TaskTicket,
};
pub use credits::RtCreditsConfig;
pub use error::RtError;
pub use loadgen::{run_load, try_run_load, LoadGenConfig, LoadMode, LoadReport};
pub use server::{
    RtCluster, RtClusterConfig, RtQueueConfig, RtQueueMode, RtTimeoutConfig, SpikeModel, WorkModel,
};
pub use transport::{RtCancel, RtMessage, RtNack, RtReply, RtRequest, RtResponse};
