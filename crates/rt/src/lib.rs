//! # brb-rt — a real-time threaded BRB runtime
//!
//! The simulation crates validate the algorithms; this crate is the
//! *adoptable implementation*: an in-process, multi-threaded storage
//! cluster with BRB task-aware scheduling, following the event-driven,
//! message-passing style of the networking guides (crossbeam channels for
//! requests/responses, a condvar-guarded stable priority queue per server,
//! no blocking on hot paths beyond the queue itself, zero-copy reads via
//! `bytes::Bytes`).
//!
//! ```
//! use brb_rt::{RtClusterConfig, RtCluster, WorkModel};
//! use brb_sched::PolicyKind;
//!
//! let cluster = RtCluster::start(RtClusterConfig {
//!     num_servers: 3,
//!     workers_per_server: 2,
//!     replication: 2,
//!     policy: PolicyKind::UnifIncr,
//!     work: WorkModel::Instant,
//!     ..Default::default()
//! });
//! cluster.populate(1_000, |k| (k % 64) + 1);
//! let client = cluster.client();
//! let resp = client.fetch(&[1, 2, 3]);
//! assert_eq!(resp.values.len(), 3);
//! cluster.shutdown();
//! ```

pub mod client;
pub mod loadgen;
pub mod server;
pub mod transport;

pub use client::{RtClient, TaskResponse};
pub use loadgen::{run_load, LoadGenConfig, LoadReport};
pub use server::{RtCluster, RtClusterConfig, WorkModel};
pub use transport::{RtRequest, RtResponse};
