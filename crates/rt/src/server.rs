//! The threaded storage cluster: servers, worker pools, shared queues.
//!
//! Each server owns a [`ShardedStore`] replica of its partitions, a
//! condvar-guarded *stable* priority queue and `workers_per_server` OS
//! threads that pull the most urgent request, read the value, optionally
//! simulate a size-proportional service cost and reply over the request's
//! channel.
//!
//! The overload lane runs on real queues: the router applies the
//! configured [`QueueBound`] at admission (tail-drop at capacity, shed
//! at the watermark) and workers feed a [`CoDel`] controller with each
//! dequeued request's *measured* sojourn time — drops and sheds NACK
//! back over the transport as typed [`RtNack`] replies instead of
//! silently growing the queue.
//!
//! Two further lanes complete the figure-2 strategy set natively:
//!
//! * **Credits** ([`crate::credits`]): a controller thread adapts grant
//!   allocations from live demand reports and router-raised congestion
//!   signals; clients gate dispatch through token buckets. The router
//!   detects congestion exactly as the sim server does — queue depth at
//!   arrival against the threshold, plus an arrival-rate window.
//! * **Model** ([`RtQueueMode::Global`]): one [`GlobalQueue`] shared by
//!   every server; idle workers pull the highest-priority request their
//!   replica constraint allows — the paper's unrealizable ideal, made
//!   "realizable" here only because the cluster is in-process.
//!
//! Routers also honor [`crate::transport::RtCancel`]: a hedged request
//! whose twin already won is removed from the queue in place (O(n),
//! cold path), so duplicate work is bounded by in-service requests.

use crate::client::RtClient;
use crate::credits::{self, CreditMsg, CreditSelector, CreditsHub, RtCreditsConfig};
use crate::timing;
use crate::transport::{RtMessage, RtNack, RtReply, RtRequest, RtResponse};
use brb_sched::overload::{CoDel, CoDelConfig, DropReason, EnqueueOutcome, QueueBound};
use brb_sched::{GlobalQueue, PolicyKind, PriorityQueue, RequestQueue};
use brb_select::{ReplicaSelector, SelectorSpec};
use brb_store::cost::{CostModel, ForecastQuality};
use brb_store::ids::{ClientId, ServerId};
use brb_store::partition::Ring;
use brb_store::service::{ServiceModel, ServiceNoise};
use brb_store::ShardedStore;
use brb_workload::taskgen::SizeModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How servers spend service time.
#[derive(Debug, Clone, Copy)]
pub enum WorkModel {
    /// Serve as fast as the store allows (unit tests, throughput benches).
    Instant,
    /// Wait out a service time *sampled* from the model for the value's
    /// size (noise included — the same service process the simulator
    /// draws, so sim-vs-rt comparisons face the same distribution) —
    /// turns the cluster into a scale model of the paper's servers. The
    /// wait is a hybrid sleep/spin ([`crate::timing`]): a raw
    /// `thread::sleep` overshoots tens-of-µs services by 50µs–1ms of OS
    /// timer slack, which would drown every strategy difference.
    SimulateService(ServiceModel),
}

/// Which queue topology the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtQueueMode {
    /// One priority queue per server (the realizable deployments:
    /// direct dispatch, credits).
    #[default]
    PerServer,
    /// One global priority queue shared by all servers; workers pull
    /// the best request their replica constraint allows — the paper's
    /// "model" realization.
    Global,
}

/// Bounded-queue knobs for every live server queue (the overload lane).
#[derive(Debug, Clone, Copy)]
pub struct RtQueueConfig {
    /// Tail-drop capacity and optional shed watermark, applied by the
    /// router at admission against the queue-length mirror.
    pub bound: QueueBound,
    /// CoDel AQM at dequeue (`None` disables it), driven by measured
    /// sojourn timestamps (enqueue `Instant` → dequeue `Instant`).
    pub codel: Option<CoDelConfig>,
}

/// Client-side timeout/retry knobs (the overload lane), in wall-clock
/// nanoseconds. Mirrors the simulator's `TimeoutConfig` semantics:
/// per-attempt deadlines, capped exponential backoff, and a per-client
/// retry budget as a percentage of dispatches.
#[derive(Debug, Clone, Copy)]
pub struct RtTimeoutConfig {
    /// Per-attempt timeout, dispatch → reply (ns).
    pub timeout_ns: u64,
    /// Retries allowed after the first attempt (0 = a single timeout is
    /// terminal).
    pub max_retries: u32,
    /// First-retry backoff (ns); doubles per retry. 0 retries
    /// immediately — the retry-storm configuration.
    pub backoff_base_ns: u64,
    /// Cap on the exponential backoff (ns); 0 = uncapped.
    pub backoff_cap_ns: u64,
    /// Retry budget: a client stops retrying once its retries reach
    /// this percentage of its dispatches (`None` = unbudgeted).
    pub retry_budget_percent: Option<u32>,
}

/// Transient service spikes: with probability `p_spike` a request's
/// service wait stretches by a uniform `[extra_lo_ns, extra_hi_ns]`
/// draw. This is the live lowering of the simulator's in-network spike
/// fault — the in-process transport has no wire to delay, so the spike
/// occupies the serving worker instead (a deliberate, documented
/// approximation: spiked requests still hit client deadlines and still
/// consume server capacity).
#[derive(Debug, Clone, Copy)]
pub struct SpikeModel {
    /// Per-request spike probability in `[0, 1]`.
    pub p_spike: f64,
    /// Minimum additional delay (ns).
    pub extra_lo_ns: u64,
    /// Maximum additional delay (ns), inclusive.
    pub extra_hi_ns: u64,
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct RtClusterConfig {
    /// Number of servers.
    pub num_servers: u32,
    /// Worker threads per server (the paper's "cores").
    pub workers_per_server: u32,
    /// Replication factor.
    pub replication: u32,
    /// Partitions on the ring; `None` = one per server.
    pub num_partitions: Option<u32>,
    /// Priority-assignment policy clients use.
    pub policy: PolicyKind,
    /// Replica selection strategy clients run (fed by the piggybacked
    /// `queue_len` / `service_ns` response fields).
    pub selector: SelectorSpec,
    /// Service-time behaviour.
    pub work: WorkModel,
    /// Store shards per server.
    pub store_shards: usize,
    /// Value-size model used by `populate_etc` and client cost
    /// forecasts.
    pub sizes: SizeModel,
    /// How accurately clients forecast service costs from value sizes.
    pub forecast: ForecastQuality,
    /// Declared client population — C3's concurrency-compensation
    /// weight (`q̂ = 1 + outstanding·w + q̄`). Keeping it equal to the
    /// scenario's client count makes the live C3 the *same algorithm*
    /// the simulator runs, even when fewer live clients exist.
    pub num_clients: u32,
    /// Constant network round trip accounted per request (ns). The
    /// in-process transport has no real propagation delay; for a
    /// constant-latency mesh a uniform shift leaves queueing dynamics
    /// untouched, so the RTT is *added to the recorded latencies*
    /// (request, task completion, selector feedback) rather than slept.
    pub network_rtt_ns: u64,
    /// Queue topology: per-server queues or the model realization's
    /// single global work-pull queue.
    pub queue_mode: RtQueueMode,
    /// Credits lane (`None` = no controller): spawns the controller
    /// thread and replaces each client's selector with the token-bucket
    /// credits admission.
    pub credits: Option<RtCreditsConfig>,
    /// Hedged requests: after this many nanoseconds without a response,
    /// a client duplicates the request to another replica; first
    /// response wins, the loser is cancelled (`None` = no hedging).
    pub hedge_delay_ns: Option<u64>,
    /// Bounded server queues + AQM (`None` = unbounded, the legacy
    /// behavior).
    pub queue: Option<RtQueueConfig>,
    /// Client-side deadline timers and retries (`None` = clients wait
    /// forever, the legacy behavior).
    pub timeout: Option<RtTimeoutConfig>,
    /// Per-server speed factors: service times divide by the factor
    /// (0.5 = half speed, the degraded-node fault). Empty or shorter
    /// than the server count means nominal speed for the rest.
    pub speed_factors: Vec<f64>,
    /// Transient service spikes (`None` = no spikes).
    pub spike: Option<SpikeModel>,
    /// Fault injection for panic-safety tests: a worker that pops this
    /// key panics mid-service. Never set outside tests.
    pub panic_on_key: Option<u64>,
}

impl Default for RtClusterConfig {
    fn default() -> Self {
        RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            num_partitions: None,
            policy: PolicyKind::UnifIncr,
            selector: SelectorSpec::LeastOutstanding,
            work: WorkModel::Instant,
            store_shards: 16,
            sizes: SizeModel::facebook_etc(),
            forecast: ForecastQuality::Exact,
            num_clients: 1,
            network_rtt_ns: 0,
            queue_mode: RtQueueMode::PerServer,
            credits: None,
            hedge_delay_ns: None,
            queue: None,
            timeout: None,
            speed_factors: Vec::new(),
            spike: None,
            panic_on_key: None,
        }
    }
}

/// A queued request plus the instant it entered the queue — the AQM's
/// sojourn clock.
pub(crate) struct Queued {
    pub(crate) req: RtRequest,
    pub(crate) enqueued: Instant,
}

/// The priority queue and its (optional) CoDel controller, guarded by
/// one mutex: drop decisions must serialize with dequeues anyway, so a
/// second lock would only add an acquisition per request.
pub(crate) struct ServerQueue {
    pub(crate) pq: PriorityQueue<Queued>,
    pub(crate) codel: Option<CoDel>,
}

/// Shared state of one server.
pub(crate) struct ServerShared {
    pub(crate) queue: Mutex<ServerQueue>,
    pub(crate) available: Condvar,
    /// Queue length mirror maintained by router push / worker pop, so
    /// the piggybacked feedback read (and bounded admission) costs no
    /// queue lock.
    pub(crate) queue_len: AtomicUsize,
    /// Admission bound, applied by the router (`None` = unbounded).
    pub(crate) bound: Option<QueueBound>,
    /// Time base for the CoDel controller's `now_ns`.
    pub(crate) epoch: Instant,
    pub(crate) store: ShardedStore,
    pub(crate) stop: AtomicBool,
    pub(crate) served: AtomicU64,
    /// Requests tail-dropped at capacity or CoDel-dropped at dequeue.
    pub(crate) dropped: AtomicU64,
    /// Requests shed by the admission watermark.
    pub(crate) shed: AtomicU64,
    /// Total nanoseconds workers spent in service (utilization).
    pub(crate) busy_ns: AtomicU64,
}

/// The model realization's single work-pull queue, shared by every
/// server's workers.
pub(crate) struct GlobalServerQueue {
    pub(crate) gq: GlobalQueue<Queued>,
    pub(crate) codel: Option<CoDel>,
}

/// Shared state of the global queue mode: one mutex + condvar for the
/// whole cluster (the coordination cost the paper calls unrealizable —
/// here it is one in-process lock).
pub(crate) struct GlobalShared {
    pub(crate) queue: Mutex<GlobalServerQueue>,
    pub(crate) available: Condvar,
    /// Cluster-wide queue length mirror (admission + piggyback).
    pub(crate) queue_len: AtomicUsize,
    /// Ring copy for the replica-constrained pull.
    pub(crate) ring: Ring,
    /// Time base for the shared CoDel controller.
    pub(crate) epoch: Instant,
}

/// Router-side congestion detection for the credits lane, mirroring the
/// sim server's two triggers: queue depth at arrival ≥ threshold, and a
/// windowed arrival rate above capacity. Signals are rate-limited to
/// one per measurement interval, as in the sim.
struct CongestionMonitor {
    tx: Sender<CreditMsg>,
    threshold: usize,
    capacity_rps: f64,
    interval: Duration,
    window_start: Instant,
    arrivals: u64,
    last_signal: Option<Instant>,
}

impl CongestionMonitor {
    fn new(hub: &CreditsHub) -> Self {
        CongestionMonitor {
            tx: hub.tx.clone(),
            threshold: hub.cfg.congestion_queue_threshold,
            capacity_rps: hub.cfg.server_capacity_rps,
            interval: Duration::from_nanos(hub.cfg.config.measurement_interval_ns),
            window_start: Instant::now(),
            arrivals: 0,
            last_signal: None,
        }
    }

    fn on_arrival(&mut self, server_id: u32, queue_len: usize) {
        let now = Instant::now();
        self.arrivals += 1;
        let mut congested = queue_len >= self.threshold;
        let elapsed = now.saturating_duration_since(self.window_start);
        if elapsed >= self.interval {
            let rate = self.arrivals as f64 / elapsed.as_secs_f64();
            // The 5% margin keeps rate jitter at exactly-capacity from
            // flapping the signal (sim semantics).
            if rate > self.capacity_rps * 1.05 {
                congested = true;
            }
            self.arrivals = 0;
            self.window_start = now;
        }
        if congested
            && self
                .last_signal
                .is_none_or(|t| now.saturating_duration_since(t) >= self.interval)
        {
            let _ = self.tx.send(CreditMsg::Congestion { server: server_id });
            self.last_signal = Some(now);
        }
    }
}

/// A running in-process cluster.
pub struct RtCluster {
    config: RtClusterConfig,
    ring: Ring,
    cost: CostModel,
    servers: Vec<Arc<ServerShared>>,
    /// The global queue when `queue_mode == Global`, else `None`.
    global: Option<Arc<GlobalShared>>,
    /// Credits lane state when `credits` is configured, else `None`.
    credits: Option<CreditsHub>,
    credits_thread: Option<JoinHandle<()>>,
    senders: Vec<Sender<RtMessage>>,
    workers: Vec<JoinHandle<()>>,
    routers: Vec<JoinHandle<()>>,
    /// Dropped on shutdown to stop routers even while clients still hold
    /// cloned request senders.
    stop_tx: Option<Sender<()>>,
    /// Sticky flag set when any worker or router thread panics; clients
    /// poll it so a dead thread fails runs fast instead of hanging them.
    panicked: Arc<AtomicBool>,
    next_task_id: Arc<AtomicU64>,
    next_client_id: AtomicU64,
}

impl std::fmt::Debug for RtCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtCluster")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl RtCluster {
    /// Starts the cluster: spawns one router and `workers_per_server`
    /// worker threads per server.
    ///
    /// # Panics
    /// Panics on a structurally invalid configuration.
    pub fn start(config: RtClusterConfig) -> RtCluster {
        assert!(config.num_servers > 0, "need at least one server");
        assert!(config.workers_per_server > 0, "need at least one worker");
        if let Some(q) = &config.queue {
            q.bound.validate().expect("invalid queue bound");
            if let Some(codel) = &q.codel {
                codel.validate().expect("invalid CoDel config");
            }
        }
        if let Some(t) = &config.timeout {
            assert!(t.timeout_ns > 0, "timeout must be positive");
        }
        assert!(
            config.speed_factors.len() <= config.num_servers as usize,
            "more speed factors than servers"
        );
        assert!(
            config
                .speed_factors
                .iter()
                .all(|f| f.is_finite() && *f > 0.0),
            "speed factors must be positive and finite"
        );
        if let Some(s) = &config.spike {
            assert!(
                (0.0..=1.0).contains(&s.p_spike) && s.extra_lo_ns <= s.extra_hi_ns,
                "invalid spike model"
            );
        }
        let ring = Ring::new(
            config.num_servers,
            config.num_partitions.unwrap_or(config.num_servers),
            config.replication,
        );
        let service = match config.work {
            WorkModel::SimulateService(m) => m,
            WorkModel::Instant => ServiceModel::calibrated_size_linear(
                1e9 / 3500.0,
                config.sizes.mean_bytes(),
                0.2,
                ServiceNoise::None,
            ),
        };
        let cost = CostModel::new(service, config.forecast);

        let mut servers = Vec::with_capacity(config.num_servers as usize);
        let mut senders = Vec::with_capacity(config.num_servers as usize);
        let mut workers = Vec::new();
        let mut routers = Vec::new();
        let (stop_tx, stop_rx) = unbounded::<()>();
        let panicked = Arc::new(AtomicBool::new(false));

        let global = match config.queue_mode {
            RtQueueMode::PerServer => None,
            RtQueueMode::Global => Some(Arc::new(GlobalShared {
                queue: Mutex::new(GlobalServerQueue {
                    gq: GlobalQueue::new(ring.num_groups()),
                    codel: config.queue.and_then(|q| q.codel).map(CoDel::new),
                }),
                available: Condvar::new(),
                queue_len: AtomicUsize::new(0),
                ring: ring.clone(),
                epoch: Instant::now(),
            })),
        };

        let (credits_hub, credits_thread) = match config.credits {
            Some(cfg) => {
                let (hub, handle) = credits::spawn_controller(
                    cfg,
                    config.num_servers as usize,
                    stop_rx.clone(),
                    Arc::clone(&panicked),
                );
                (Some(hub), Some(handle))
            }
            None => (None, None),
        };

        for s in 0..config.num_servers {
            let shared = Arc::new(ServerShared {
                queue: Mutex::new(ServerQueue {
                    pq: PriorityQueue::new(),
                    codel: config.queue.and_then(|q| q.codel).map(CoDel::new),
                }),
                available: Condvar::new(),
                queue_len: AtomicUsize::new(0),
                bound: config.queue.map(|q| q.bound),
                epoch: Instant::now(),
                store: ShardedStore::new(config.store_shards),
                stop: AtomicBool::new(false),
                served: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
            });
            let (tx, rx): (Sender<RtMessage>, Receiver<RtMessage>) = unbounded();

            // Router: drains the channel into the priority queue so that
            // priorities take effect the moment requests arrive, not in
            // channel FIFO order — and applies bounded admission there,
            // NACKing drops/sheds back before they ever consume queue
            // space. Exits when the cluster's stop channel closes
            // (clients may still hold request senders then).
            {
                let shared = Arc::clone(&shared);
                let global = global.clone();
                let stop_rx = stop_rx.clone();
                let panicked = Arc::clone(&panicked);
                let congestion = credits_hub.as_ref().map(CongestionMonitor::new);
                routers.push(
                    std::thread::Builder::new()
                        .name(format!("brb-router-{s}"))
                        .spawn(move || {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    router_loop(
                                        s,
                                        &shared,
                                        global.as_deref(),
                                        &rx,
                                        &stop_rx,
                                        congestion,
                                    )
                                }));
                            // Wake workers so they observe the stop flag.
                            // The queue lock MUST be taken between the
                            // store and the notify: a worker that checked
                            // `stop` and is about to park holds it, so
                            // locking here blocks until the worker is
                            // actually parked — otherwise the notify can
                            // land in that window and be lost forever
                            // (lost-wakeup deadlock; the stop flag is the
                            // one predicate not written under the mutex).
                            shared.stop.store(true, Ordering::SeqCst);
                            drop(shared.queue.lock());
                            shared.available.notify_all();
                            if let Some(g) = &global {
                                drop(g.queue.lock());
                                g.available.notify_all();
                            }
                            if result.is_err() {
                                panicked.store(true, Ordering::SeqCst);
                            }
                        })
                        .expect("spawn router"),
                );
            }

            let speed = config.speed_factors.get(s as usize).copied().unwrap_or(1.0);
            for w in 0..config.workers_per_server {
                let shared = Arc::clone(&shared);
                let global = global.clone();
                let work = config.work;
                let spike = config.spike;
                let panic_on_key = config.panic_on_key;
                let panicked = Arc::clone(&panicked);
                // Per-worker service-noise stream, seeded by position so
                // the draw sequences are reproducible run to run.
                let noise_seed = ((s as u64) << 32) | w as u64;
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("brb-worker-{s}-{w}"))
                        .spawn(move || {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    worker_loop(
                                        s,
                                        &shared,
                                        global.as_deref(),
                                        work,
                                        noise_seed,
                                        speed,
                                        spike,
                                        panic_on_key,
                                    )
                                }));
                            if result.is_err() {
                                panicked.store(true, Ordering::SeqCst);
                                // Wake sibling workers parked on the
                                // condvar so a fully-dead server cannot
                                // strand them (lock bracket for the same
                                // lost-wakeup reason as the router exit).
                                drop(shared.queue.lock());
                                shared.available.notify_all();
                                if let Some(g) = &global {
                                    drop(g.queue.lock());
                                    g.available.notify_all();
                                }
                            }
                        })
                        .expect("spawn worker"),
                );
            }

            servers.push(shared);
            senders.push(tx);
        }

        RtCluster {
            config,
            ring,
            cost,
            servers,
            global,
            credits: credits_hub,
            credits_thread,
            senders,
            workers,
            routers,
            stop_tx: Some(stop_tx),
            panicked,
            next_task_id: Arc::new(AtomicU64::new(0)),
            next_client_id: AtomicU64::new(0),
        }
    }

    /// Populates every replica with `num_keys` keys; the value of key `k`
    /// is a zero-filled buffer of `size_of(k)` bytes, stored on exactly
    /// the `R` servers that replicate `k`.
    pub fn populate<F: Fn(u64) -> u64>(&self, num_keys: u64, size_of: F) {
        for key in 0..num_keys {
            let size = size_of(key).max(1) as usize;
            let value = Bytes::from(vec![0u8; size]);
            for server in self.ring.replicas_of_key(key) {
                self.servers[server.index()].store.put(key, value.clone());
            }
        }
    }

    /// Populates with the configured size model (the paper's ETC sizes by
    /// default).
    pub fn populate_etc(&self, num_keys: u64) {
        let m = self.config.sizes;
        self.populate(num_keys, |k| m.size_of(k));
    }

    /// Creates a client handle sharing the cluster's task-id counter.
    /// Each client runs its own selector instance (the decentralized
    /// setting): the selector's random stream is seeded by the client's
    /// creation index, so clusters behave reproducibly run to run.
    pub fn client(&self) -> RtClient {
        let client_idx = self.next_client_id.fetch_add(1, Ordering::Relaxed);
        self.build_client(client_idx, client_idx)
    }

    /// [`Self::client`] with an explicit selector seed — the load
    /// generator passes the run seed through here so a random selector
    /// draws a different stream per seeded run (matching the
    /// simulator's per-run selector seeding), not the same stream for
    /// every run of a fresh cluster.
    pub fn client_seeded(&self, selector_seed: u64) -> RtClient {
        let client_idx = self.next_client_id.fetch_add(1, Ordering::Relaxed);
        self.build_client(client_idx, selector_seed)
    }

    fn build_client(&self, client_idx: u64, selector_seed: u64) -> RtClient {
        // With the credits lane on, every client runs the token-bucket
        // credits admission (identified to the controller by its
        // creation index); the configured selector only applies to the
        // direct-dispatch realizations.
        let selector: Box<dyn ReplicaSelector + Send> = match &self.credits {
            Some(hub) => Box::new(CreditSelector::new(
                ClientId::new(client_idx),
                hub,
                self.config.num_servers as usize,
                self.config.num_clients.max(1) as usize,
            )),
            None => self
                .config
                .selector
                .build(selector_seed, self.config.num_clients.max(1)),
        };
        RtClient::new(
            self.ring.clone(),
            self.cost,
            self.config.policy,
            self.config.sizes,
            self.senders.clone(),
            Arc::clone(&self.next_task_id),
            selector,
            self.config.network_rtt_ns,
            self.config.timeout,
            self.config.hedge_delay_ns,
            Arc::clone(&self.panicked),
        )
    }

    /// Requests served per server.
    pub fn served_per_server(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|s| s.served.load(Ordering::Relaxed))
            .collect()
    }

    /// Requests tail-dropped or CoDel-dropped per server (overload lane).
    pub fn dropped_per_server(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .collect()
    }

    /// Requests shed by admission control per server (overload lane).
    pub fn shed_per_server(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|s| s.shed.load(Ordering::Relaxed))
            .collect()
    }

    /// Nanoseconds each server's workers have spent in service so far.
    pub fn busy_ns_per_server(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|s| s.busy_ns.load(Ordering::Relaxed))
            .collect()
    }

    /// Demand reports the credits controller has received (0 when the
    /// credits lane is off).
    pub fn demand_reports(&self) -> u64 {
        self.credits
            .as_ref()
            .map_or(0, |h| h.demand_reports.load(Ordering::Relaxed))
    }

    /// Congestion signals the credits controller has received (0 when
    /// the credits lane is off).
    pub fn congestion_signals(&self) -> u64 {
        self.credits
            .as_ref()
            .map_or(0, |h| h.congestion_signals.load(Ordering::Relaxed))
    }

    /// Whether any worker or router thread has panicked.
    pub fn panicked(&self) -> bool {
        self.panicked.load(Ordering::SeqCst)
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &RtClusterConfig {
        &self.config
    }

    /// The cluster's ring (for tests and demos).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The size model used by `populate_etc` and client forecasts.
    pub fn size_model(&self) -> &SizeModel {
        &self.config.sizes
    }

    /// Stops all threads and joins them, reporting a panicked thread as
    /// a typed error instead of a harness panic. Callers should drain
    /// their tasks first: requests still queued when shutdown starts are
    /// dropped.
    pub fn shutdown_checked(mut self) -> Result<(), crate::error::RtError> {
        // Closing the stop channel ends the routers and the credits
        // controller (even if clients still hold request senders);
        // routers set stop and wake workers.
        drop(self.stop_tx.take());
        drop(self.senders);
        for r in self.routers {
            // The catch_unwind wrapper makes join errors impossible in
            // practice; a failed join still counts as a panic.
            if r.join().is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
        }
        if let Some(h) = self.credits_thread.take() {
            if h.join().is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
        }
        for s in &self.servers {
            s.stop.store(true, Ordering::SeqCst);
            // Lock bracket between store and notify: a worker between its
            // `stop` check and the park holds the queue lock, so locking
            // here waits until it is parked — without it the notify can
            // be lost and the worker parks forever (observed as a hung
            // join on a loaded single-CPU host).
            drop(s.queue.lock());
            s.available.notify_all();
        }
        // Global-mode workers park on the shared condvar, not their
        // server's.
        if let Some(g) = &self.global {
            drop(g.queue.lock());
            g.available.notify_all();
        }
        for w in self.workers {
            if w.join().is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
        }
        if self.panicked.load(Ordering::SeqCst) {
            Err(crate::error::RtError::WorkerPanicked)
        } else {
            Ok(())
        }
    }

    /// [`Self::shutdown_checked`], panicking on a panicked thread (test
    /// ergonomics).
    pub fn shutdown(self) {
        self.shutdown_checked().expect("worker panicked");
    }
}

/// Sends a typed drop/shed notice back to the request's owner. The
/// client may have given up (dropped receiver); ignore errors.
fn send_nack(server_id: u32, req: &RtRequest, reason: DropReason) {
    let _ = req.reply.send(RtReply::Nack(RtNack {
        key: req.key,
        req_idx: req.req_idx,
        task_id: req.task_id,
        attempt: req.attempt,
        server: server_id,
        reason,
    }));
}

fn router_loop(
    server_id: u32,
    shared: &Arc<ServerShared>,
    global: Option<&GlobalShared>,
    rx: &Receiver<RtMessage>,
    stop_rx: &Receiver<()>,
    mut congestion: Option<CongestionMonitor>,
) {
    loop {
        crossbeam::channel::select! {
            recv(rx) -> msg => match msg {
                Ok(RtMessage::Request(req)) => {
                    // Bounded admission against the mirror — the same
                    // length feedback responses piggyback, so admission
                    // costs no queue lock. Global mode admits against
                    // the cluster-wide mirror.
                    let len = match global {
                        Some(g) => g.queue_len.load(Ordering::Relaxed),
                        None => shared.queue_len.load(Ordering::Relaxed),
                    };
                    if let Some(monitor) = congestion.as_mut() {
                        monitor.on_arrival(server_id, len);
                    }
                    if let Some(bound) = shared.bound {
                        if let EnqueueOutcome::Dropped(reason) = bound.admit(len) {
                            match reason {
                                DropReason::Shed => {
                                    shared.shed.fetch_add(1, Ordering::Relaxed)
                                }
                                DropReason::QueueFull | DropReason::Sojourn => {
                                    shared.dropped.fetch_add(1, Ordering::Relaxed)
                                }
                            };
                            send_nack(server_id, &req, reason);
                            continue;
                        }
                    }
                    match global {
                        None => {
                            // Increment the mirror *before* the push: a
                            // worker may pop (and decrement) the instant
                            // the lock drops, and the counter must never
                            // underflow.
                            shared.queue_len.fetch_add(1, Ordering::Relaxed);
                            let mut q = shared.queue.lock();
                            let priority = req.priority;
                            q.pq.push(
                                priority,
                                Queued {
                                    req,
                                    enqueued: Instant::now(),
                                },
                            );
                            drop(q);
                            shared.available.notify_one();
                        }
                        Some(g) => {
                            g.queue_len.fetch_add(1, Ordering::Relaxed);
                            let group = g.ring.group_of_key(req.key);
                            let priority = req.priority;
                            let mut q = g.queue.lock();
                            q.gq.push(
                                group,
                                priority,
                                Queued {
                                    req,
                                    enqueued: Instant::now(),
                                },
                            );
                            drop(q);
                            // notify_all, not notify_one: a single wake
                            // could land on a worker outside this
                            // group's replica set, which would re-park
                            // and strand the request.
                            g.available.notify_all();
                        }
                    }
                }
                Ok(RtMessage::Cancel(cancel)) => {
                    // Purge the still-queued loser of a hedged pair.
                    // Per-channel FIFO means its request (if any)
                    // already passed through; a miss just means a
                    // worker got there first. Hedging never lowers to
                    // global mode, where a cancel is a no-op.
                    if global.is_none() {
                        let mut q = shared.queue.lock();
                        let removed = q.pq.retain(|queued| {
                            !(queued.req.task_id == cancel.task_id
                                && queued.req.req_idx == cancel.req_idx
                                && queued.req.attempt == cancel.attempt)
                        });
                        if removed > 0 {
                            shared.queue_len.fetch_sub(removed, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => break,
            },
            recv(stop_rx) -> _ => break,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    server_id: u32,
    shared: &Arc<ServerShared>,
    global: Option<&GlobalShared>,
    work: WorkModel,
    noise_seed: u64,
    speed: f64,
    spike: Option<SpikeModel>,
    panic_on_key: Option<u64>,
) {
    let mut service_rng = StdRng::seed_from_u64(noise_seed);
    // CoDel rejects collected under the queue lock, NACKed after it
    // drops — the reply channel's own lock stays out of the queue's
    // critical section.
    let mut codel_rejects: Vec<RtRequest> = Vec::new();
    loop {
        let popped = match global {
            None => {
                let mut q = shared.queue.lock();
                loop {
                    if let Some((_, queued)) = q.pq.pop() {
                        shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                        if let Some(codel) = q.codel.as_mut() {
                            let now = Instant::now();
                            let now_ns =
                                now.saturating_duration_since(shared.epoch).as_nanos() as u64;
                            let sojourn_ns =
                                now.saturating_duration_since(queued.enqueued).as_nanos() as u64;
                            if codel.on_dequeue(now_ns, sojourn_ns) {
                                codel_rejects.push(queued.req);
                                continue; // drop head-of-line, pop the next
                            }
                        }
                        break Some(queued.req);
                    }
                    if shared.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    shared.available.wait(&mut q);
                }
            }
            Some(g) => {
                // Work-pulling against the global queue: take the best
                // request this server's replica constraint allows.
                let me = ServerId::new(server_id as u64);
                let mut q = g.queue.lock();
                loop {
                    if let Some((_, _, queued)) = q.gq.pull_for(me, &g.ring) {
                        g.queue_len.fetch_sub(1, Ordering::Relaxed);
                        if let Some(codel) = q.codel.as_mut() {
                            let now = Instant::now();
                            let now_ns = now.saturating_duration_since(g.epoch).as_nanos() as u64;
                            let sojourn_ns =
                                now.saturating_duration_since(queued.enqueued).as_nanos() as u64;
                            if codel.on_dequeue(now_ns, sojourn_ns) {
                                codel_rejects.push(queued.req);
                                continue;
                            }
                        }
                        break Some(queued.req);
                    }
                    if shared.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    g.available.wait(&mut q);
                }
            }
        };
        for rejected in codel_rejects.drain(..) {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            send_nack(server_id, &rejected, DropReason::Sojourn);
        }
        let Some(req) = popped else {
            return;
        };
        if panic_on_key == Some(req.key) {
            panic!("injected worker fault on key {}", req.key);
        }
        let started = Instant::now();
        let value = shared.store.get(req.key);
        if let WorkModel::SimulateService(model) = work {
            let bytes = value.as_ref().map_or(0, |v| v.len() as u64);
            // Sample, not expected_ns: the simulator draws noisy service
            // times, and the live lane must face the same distribution.
            let mut ns = model.sample(bytes, &mut service_rng).as_nanos();
            // Degraded-node fault: service times divide by the speed
            // factor, the simulator's semantics exactly.
            if speed != 1.0 {
                ns = ((ns as f64) / speed).round() as u64;
            }
            // Transient spike fault: the extra delay occupies the worker
            // (see `SpikeModel` for why the live lane spikes service, not
            // the wire).
            if let Some(spike) = spike {
                if service_rng.random::<f64>() < spike.p_spike {
                    ns = ns.saturating_add(
                        service_rng.random_range(spike.extra_lo_ns..=spike.extra_hi_ns),
                    );
                }
            }
            timing::wait_for(std::time::Duration::from_nanos(ns));
        }
        let completed = Instant::now();
        let service_ns = (completed - started).as_nanos() as u64;
        let total_ns = completed
            .saturating_duration_since(req.submitted)
            .as_nanos() as u64;
        // Piggyback feedback from the atomic mirror — no second trip
        // through the queue mutex per request. Global mode piggybacks
        // the cluster-wide backlog (the only queue that exists there).
        let queue_len = match global {
            Some(g) => g.queue_len.load(Ordering::Relaxed),
            None => shared.queue_len.load(Ordering::Relaxed),
        };
        shared.served.fetch_add(1, Ordering::Relaxed);
        shared.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
        // The client may have given up (dropped receiver); ignore errors.
        let _ = req.reply.send(RtReply::Served(RtResponse {
            key: req.key,
            req_idx: req.req_idx,
            task_id: req.task_id,
            attempt: req.attempt,
            value,
            server: server_id,
            queue_len,
            service_ns,
            total_ns,
            completed,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(policy: PolicyKind) -> RtCluster {
        RtCluster::start(RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            policy,
            work: WorkModel::Instant,
            store_shards: 8,
            ..Default::default()
        })
    }

    #[test]
    fn populate_places_replicas_on_ring() {
        let c = cluster(PolicyKind::Fifo);
        c.populate(300, |_| 8);
        for key in 0..300u64 {
            let replicas = c.ring.replicas_of_key(key);
            assert_eq!(replicas.len(), 2);
            for s in 0..3u64 {
                let has = c.servers[s as usize].store.contains(key);
                let should = replicas.contains(&brb_store::ids::ServerId::new(s));
                assert_eq!(has, should, "key {key} server {s}");
            }
        }
        c.shutdown();
    }

    #[test]
    fn serves_and_counts() {
        let c = cluster(PolicyKind::EqualMax);
        c.populate(100, |_| 16);
        let client = c.client();
        for _ in 0..50 {
            let resp = client.fetch(&[1, 2, 3, 4, 5]);
            assert_eq!(resp.values.len(), 5);
            assert!(resp.values.iter().all(|v| v.is_some()));
        }
        let served: u64 = c.served_per_server().iter().sum();
        assert_eq!(served, 250);
        c.shutdown();
    }

    #[test]
    fn missing_keys_return_none() {
        let c = cluster(PolicyKind::Fifo);
        c.populate(10, |_| 4);
        let client = c.client();
        let resp = client.fetch(&[99_999]);
        assert!(resp.values[0].is_none());
        c.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let c = cluster(PolicyKind::UnifIncr);
        c.populate(10, |_| 4);
        let client = c.client();
        let _ = client.fetch(&[0, 1]);
        c.shutdown(); // must not hang or panic
    }

    #[test]
    fn partition_count_is_honored() {
        // Default: one partition per server.
        let c = cluster(PolicyKind::Fifo);
        assert_eq!(c.ring().num_partitions(), 3);
        c.shutdown();
        // Explicit partition counts reshape the ring (the lab shim
        // passes the scenario's num_partitions through here).
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            num_partitions: Some(8),
            replication: 2,
            ..Default::default()
        });
        assert_eq!(c.ring().num_partitions(), 8);
        c.populate(100, |_| 8);
        let client = c.client();
        let resp = client.fetch(&[1, 2, 3]);
        assert!(resp.values.iter().all(|v| v.is_some()));
        c.shutdown();
    }

    #[test]
    fn busy_time_accumulates_under_simulated_service() {
        let service =
            ServiceModel::calibrated_size_linear(100_000.0, 64.0, 1.0, ServiceNoise::None);
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            workers_per_server: 1,
            replication: 1,
            work: WorkModel::SimulateService(service),
            store_shards: 4,
            ..Default::default()
        });
        c.populate(20, |_| 64);
        let client = c.client();
        for k in 0..20u64 {
            let _ = client.fetch(&[k]);
        }
        let busy: u64 = c.busy_ns_per_server().iter().sum();
        // 20 requests at ~100µs each.
        assert!(busy >= 20 * 90_000, "busy {busy}ns");
        c.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_cluster() {
        let c = Arc::new(cluster(PolicyKind::UnifIncr));
        c.populate(1_000, |k| (k % 100) + 1);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let client = c.client();
                for i in 0..100u64 {
                    let keys: Vec<u64> = (0..5).map(|j| (t * 211 + i * 7 + j) % 1_000).collect();
                    let resp = client.fetch(&keys);
                    assert_eq!(resp.values.len(), 5);
                    assert!(resp.values.iter().all(|v| v.is_some()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let served: u64 = c.served_per_server().iter().sum();
        assert_eq!(served, 4 * 100 * 5);
        match Arc::try_unwrap(c) {
            Ok(cluster) => cluster.shutdown(),
            Err(_) => panic!("sole owner"),
        }
    }

    /// A degraded server (speed factor 0.25) must take ~4× the nominal
    /// service time — the live lowering of the degraded-node fault.
    #[test]
    fn speed_factor_slows_service() {
        let service =
            ServiceModel::calibrated_size_linear(200_000.0, 64.0, 1.0, ServiceNoise::None);
        let mut busy = Vec::new();
        for factors in [vec![], vec![0.25]] {
            let c = RtCluster::start(RtClusterConfig {
                num_servers: 1,
                workers_per_server: 1,
                replication: 1,
                work: WorkModel::SimulateService(service),
                store_shards: 4,
                speed_factors: factors,
                ..Default::default()
            });
            c.populate(10, |_| 64);
            let client = c.client();
            for k in 0..10u64 {
                let _ = client.fetch(&[k]);
            }
            busy.push(c.busy_ns_per_server()[0]);
            c.shutdown();
        }
        assert!(
            busy[1] as f64 >= busy[0] as f64 * 2.5,
            "degraded server not slower: nominal {}ns vs degraded {}ns",
            busy[0],
            busy[1]
        );
    }

    /// The model realization: one global work-pull queue. Every request
    /// must still land on a replica of its key and be served exactly
    /// once.
    #[test]
    fn global_queue_mode_serves_with_replica_constraint() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::EqualMax,
            selector: SelectorSpec::RoundRobin,
            queue_mode: RtQueueMode::Global,
            work: WorkModel::Instant,
            store_shards: 8,
            ..Default::default()
        });
        c.populate(300, |k| (k % 64) + 1);
        let client = c.client();
        for i in 0..60u64 {
            let keys: Vec<u64> = (0..5).map(|j| (i * 5 + j) % 300).collect();
            let resp = client.fetch(&keys);
            assert!(resp.values.iter().all(|v| v.is_some()));
        }
        let served: u64 = c.served_per_server().iter().sum();
        assert_eq!(served, 300);
        c.shutdown();
    }

    /// The credits lane end to end: clients run the token-bucket
    /// admission, demand reports reach the controller thread, and the
    /// run completes without starving (grants adapt upward from the
    /// fair-share seed).
    #[test]
    fn credits_cluster_serves_and_reports_demand() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::EqualMax,
            work: WorkModel::Instant,
            store_shards: 8,
            num_clients: 2,
            credits: Some(RtCreditsConfig {
                config: brb_sched::CreditsConfig {
                    measurement_interval_ns: 2_000_000, // 2 ms
                    adaptation_interval_ns: 10_000_000, // 10 ms
                    ..Default::default()
                },
                server_capacity_rps: 50_000.0,
                congestion_queue_threshold: 96,
            }),
            ..Default::default()
        });
        c.populate(200, |_| 16);
        let client = c.client();
        let t0 = Instant::now();
        while t0.elapsed() < std::time::Duration::from_millis(40) {
            let resp = client.fetch(&[1, 2, 3, 4, 5]);
            assert!(resp.values.iter().all(|v| v.is_some()));
        }
        assert!(
            c.demand_reports() >= 1,
            "no demand report reached the controller"
        );
        c.shutdown();
    }

    /// A cancel for a queued request must remove exactly that attempt
    /// and fix the length mirror; a cancel that matches nothing (wrong
    /// attempt) must be a no-op.
    #[test]
    fn router_cancel_dequeues_matching_attempt_only() {
        use crate::transport::RtCancel;
        let shared = Arc::new(ServerShared {
            queue: Mutex::new(ServerQueue {
                pq: PriorityQueue::new(),
                codel: None,
            }),
            available: Condvar::new(),
            queue_len: AtomicUsize::new(0),
            bound: None,
            epoch: Instant::now(),
            store: ShardedStore::new(1),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        });
        let (tx, rx) = unbounded();
        let (stop_tx, stop_rx) = unbounded::<()>();
        let router = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || router_loop(0, &shared, None, &rx, &stop_rx, None))
        };
        let (reply_tx, reply_rx) = unbounded();
        let req = |req_idx: u32, attempt: u32| {
            RtMessage::Request(RtRequest {
                key: 1,
                priority: brb_sched::Priority(1),
                req_idx,
                task_id: 7,
                attempt,
                submitted: Instant::now(),
                reply: reply_tx.clone(),
            })
        };
        tx.send(req(0, 0)).unwrap();
        tx.send(req(1, 0)).unwrap();
        // Wrong attempt: must remove nothing.
        tx.send(RtMessage::Cancel(RtCancel {
            task_id: 7,
            req_idx: 0,
            attempt: 9,
        }))
        .unwrap();
        // Exact match: removes req_idx 0.
        tx.send(RtMessage::Cancel(RtCancel {
            task_id: 7,
            req_idx: 0,
            attempt: 0,
        }))
        .unwrap();
        let t0 = Instant::now();
        while shared.queue_len.load(Ordering::Relaxed) != 1 {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(5),
                "cancel never drained: len {}",
                shared.queue_len.load(Ordering::Relaxed)
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let q = shared.queue.lock();
            assert_eq!(q.pq.len(), 1);
            assert_eq!(q.pq.peek_item().unwrap().req.req_idx, 1);
        }
        drop(stop_tx);
        router.join().unwrap();
        // No reply was ever sent for the cancelled request.
        drop(reply_tx);
        assert!(reply_rx.try_recv().is_err());
    }

    /// A panicking worker must trip the cluster's sticky panic flag and
    /// surface from `shutdown_checked` as a typed error — never a
    /// harness panic, never a hang.
    #[test]
    fn injected_worker_panic_is_reported_typed() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 1,
            workers_per_server: 2,
            replication: 1,
            work: WorkModel::Instant,
            store_shards: 4,
            panic_on_key: Some(3),
            ..Default::default()
        });
        c.populate(10, |_| 8);
        let client = c.client();
        // Benign traffic first, then the poisoned key; the sibling
        // worker keeps the server alive for the benign requests.
        let _ = client.fetch(&[1, 2]);
        let ticket = client.fetch_async(&[3]);
        // The poisoned request never gets a reply; the flag goes up.
        let t0 = Instant::now();
        while !c.panicked() && t0.elapsed() < std::time::Duration::from_secs(5) {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(c.panicked(), "worker panic not observed");
        drop(ticket);
        assert_eq!(
            c.shutdown_checked(),
            Err(crate::error::RtError::WorkerPanicked)
        );
    }
}
