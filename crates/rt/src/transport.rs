//! Message types and the in-process transport.
//!
//! Requests travel over a per-server channel into the server's priority
//! queue; replies return over a per-task channel. A reply is either a
//! served [`RtResponse`] or a typed [`RtNack`] — the overload lane's
//! drop/shed notice, so a bounded server queue can refuse work without
//! silently stranding the client. The channel also carries [`RtCancel`]
//! control messages (the hedging lane's duplicate purge): a cancel
//! de-queues a still-queued request at the router; a request already in
//! service completes normally and the client discards the duplicate
//! reply. Payloads are [`bytes::Bytes`] so values move by reference
//! count, never by copy.

use brb_sched::overload::DropReason;
use brb_sched::Priority;
use bytes::Bytes;
use crossbeam::channel::Sender;
use std::time::Instant;

/// What a client sends to a server's router: work, or a retraction of
/// work it no longer wants.
#[derive(Debug)]
pub enum RtMessage {
    /// A read request to enqueue.
    Request(RtRequest),
    /// Retract a specific queued attempt (hedged duplication's
    /// purge-on-first-win). Races are benign: a cancel for an attempt
    /// already popped removes nothing, and per-channel FIFO ordering
    /// guarantees the cancel can never arrive before its request.
    Cancel(RtCancel),
}

/// Identifies one dispatched attempt to retract. Matches on the full
/// `(task_id, req_idx, attempt)` triple so a cancel can never remove a
/// retry or another task's request by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtCancel {
    /// Task id of the attempt to retract.
    pub task_id: u64,
    /// Task-local request index of the attempt.
    pub req_idx: u32,
    /// Attempt number of the attempt.
    pub attempt: u32,
}

/// A read request submitted to a server.
#[derive(Debug)]
pub struct RtRequest {
    /// The key to read.
    pub key: u64,
    /// Scheduling priority (lower serves first).
    pub priority: Priority,
    /// Task-local request index, echoed in the reply.
    pub req_idx: u32,
    /// Task id, echoed in the reply.
    pub task_id: u64,
    /// Attempt number of this logical request (0 = original; each retry
    /// gets a fresh attempt id, so stale replies are distinguishable).
    pub attempt: u32,
    /// When the client submitted it (for latency accounting).
    pub submitted: Instant,
    /// Where to deliver the reply.
    pub reply: Sender<RtReply>,
}

/// What a server sends back for one request: served data or a typed
/// refusal.
#[derive(Debug)]
pub enum RtReply {
    /// The request was served.
    Served(RtResponse),
    /// The request was dropped or shed by the overload lane.
    Nack(RtNack),
}

/// A server's response to one served request.
#[derive(Debug)]
pub struct RtResponse {
    /// The requested key.
    pub key: u64,
    /// Task-local request index from the request.
    pub req_idx: u32,
    /// Task id from the request.
    pub task_id: u64,
    /// Attempt number from the request.
    pub attempt: u32,
    /// The value, or `None` if the key is unknown.
    pub value: Option<Bytes>,
    /// Which server served it.
    pub server: u32,
    /// Queue length observed when the response left (piggyback feedback,
    /// as in C3; maintained by an atomic counter, so reading it costs no
    /// queue lock).
    pub queue_len: usize,
    /// Wall-clock service latency, nanoseconds (queue wait excluded).
    pub service_ns: u64,
    /// Wall-clock total latency, nanoseconds (submit → response send).
    pub total_ns: u64,
    /// The instant the server finished this request. Task latency is
    /// computed from the *latest* `completed` of a task's responses, so
    /// a client that drains its tickets late (the open-loop generator
    /// collecting after the submission schedule ends) records the true
    /// completion time, not the drain time.
    pub completed: Instant,
}

/// A drop/shed notice for one request attempt. Carries the attempt id
/// so the client can tell a NACK for its *current* attempt (retry or
/// fail) from one for an attempt a retry already superseded (accounting
/// only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtNack {
    /// The requested key.
    pub key: u64,
    /// Task-local request index from the request.
    pub req_idx: u32,
    /// Task id from the request.
    pub task_id: u64,
    /// Attempt number from the request.
    pub attempt: u32,
    /// Which server refused it.
    pub server: u32,
    /// Which overload mechanism refused it (tail-drop, shed, or CoDel
    /// sojourn).
    pub reason: DropReason,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn request_round_trips_over_channels() {
        let (tx, rx) = unbounded();
        let req = RtRequest {
            key: 7,
            priority: Priority(3),
            req_idx: 0,
            task_id: 1,
            attempt: 0,
            submitted: Instant::now(),
            reply: tx,
        };
        // Simulate a server answering.
        req.reply
            .send(RtReply::Served(RtResponse {
                key: req.key,
                req_idx: req.req_idx,
                task_id: req.task_id,
                attempt: req.attempt,
                value: Some(Bytes::from_static(b"v")),
                server: 0,
                queue_len: 0,
                service_ns: 10,
                total_ns: 20,
                completed: Instant::now(),
            }))
            .unwrap();
        let RtReply::Served(resp) = rx.recv().unwrap() else {
            panic!("expected a served response");
        };
        assert_eq!(resp.key, 7);
        assert_eq!(resp.task_id, 1);
        assert_eq!(resp.value.unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn nack_carries_attempt_and_reason() {
        let (tx, rx) = unbounded();
        let req = RtRequest {
            key: 3,
            priority: Priority(1),
            req_idx: 2,
            task_id: 5,
            attempt: 1,
            submitted: Instant::now(),
            reply: tx,
        };
        req.reply
            .send(RtReply::Nack(RtNack {
                key: req.key,
                req_idx: req.req_idx,
                task_id: req.task_id,
                attempt: req.attempt,
                server: 4,
                reason: DropReason::Shed,
            }))
            .unwrap();
        let RtReply::Nack(nack) = rx.recv().unwrap() else {
            panic!("expected a NACK");
        };
        assert_eq!(nack.attempt, 1);
        assert_eq!(nack.reason, DropReason::Shed);
    }
}
