//! Message types and the in-process transport.
//!
//! Requests travel over a per-server channel into the server's priority
//! queue; responses return over a per-client channel. Payloads are
//! [`bytes::Bytes`] so values move by reference count, never by copy.

use brb_sched::Priority;
use bytes::Bytes;
use crossbeam::channel::Sender;
use std::time::Instant;

/// A read request submitted to a server.
#[derive(Debug)]
pub struct RtRequest {
    /// The key to read.
    pub key: u64,
    /// Scheduling priority (lower serves first).
    pub priority: Priority,
    /// Task-local request index, echoed in the response.
    pub req_idx: u32,
    /// Task id, echoed in the response.
    pub task_id: u64,
    /// When the client submitted it (for latency accounting).
    pub submitted: Instant,
    /// Where to deliver the response.
    pub reply: Sender<RtResponse>,
}

/// A server's response to one request.
#[derive(Debug)]
pub struct RtResponse {
    /// The requested key.
    pub key: u64,
    /// Task-local request index from the request.
    pub req_idx: u32,
    /// Task id from the request.
    pub task_id: u64,
    /// The value, or `None` if the key is unknown.
    pub value: Option<Bytes>,
    /// Which server served it.
    pub server: u32,
    /// Queue length observed when the response left (piggyback feedback,
    /// as in C3; maintained by an atomic counter, so reading it costs no
    /// queue lock).
    pub queue_len: usize,
    /// Wall-clock service latency, nanoseconds (queue wait excluded).
    pub service_ns: u64,
    /// Wall-clock total latency, nanoseconds (submit → response send).
    pub total_ns: u64,
    /// The instant the server finished this request. Task latency is
    /// computed from the *latest* `completed` of a task's responses, so
    /// a client that drains its tickets late (the open-loop generator
    /// collecting after the submission schedule ends) records the true
    /// completion time, not the drain time.
    pub completed: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn request_round_trips_over_channels() {
        let (tx, rx) = unbounded();
        let req = RtRequest {
            key: 7,
            priority: Priority(3),
            req_idx: 0,
            task_id: 1,
            submitted: Instant::now(),
            reply: tx,
        };
        // Simulate a server answering.
        req.reply
            .send(RtResponse {
                key: req.key,
                req_idx: req.req_idx,
                task_id: req.task_id,
                value: Some(Bytes::from_static(b"v")),
                server: 0,
                queue_len: 0,
                service_ns: 10,
                total_ns: 20,
                completed: Instant::now(),
            })
            .unwrap();
        let resp = rx.recv().unwrap();
        assert_eq!(resp.key, 7);
        assert_eq!(resp.task_id, 1);
        assert_eq!(resp.value.unwrap(), Bytes::from_static(b"v"));
    }
}
