//! A closed-loop load generator for the threaded runtime.
//!
//! Drives an [`RtCluster`] with playlist-style batch reads at a fixed
//! concurrency (window of in-flight tasks), measuring wall-clock task
//! latencies — the runtime equivalent of the simulator's experiment
//! runner.

use crate::client::RtClient;
use crate::server::RtCluster;
use brb_metrics::{Histogram, Percentiles};
use brb_workload::FanoutDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Total tasks to issue.
    pub tasks: usize,
    /// In-flight task window (closed loop).
    pub concurrency: usize,
    /// Fan-out distribution for task sizes.
    pub fanout: FanoutDist,
    /// Keys are drawn uniformly from `0..key_range` (populate the cluster
    /// with at least this many keys first).
    pub key_range: u64,
    /// RNG seed for the key/fan-out stream.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            tasks: 1_000,
            concurrency: 16,
            fanout: FanoutDist::soundcloud_like(),
            key_range: 10_000,
            seed: 1,
        }
    }
}

/// Results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Wall-clock task latency percentiles (ms).
    pub task_latency_ms: Percentiles,
    /// Total wall time of the run.
    pub wall: Duration,
    /// Completed tasks per second.
    pub tasks_per_sec: f64,
    /// Requests served per server (load-balance check).
    pub served_per_server: Vec<u64>,
}

/// Runs a closed-loop load against `cluster` through a fresh client.
///
/// # Panics
/// Panics if the configuration is degenerate (no tasks, zero concurrency)
/// or the cluster shuts down mid-run.
pub fn run_load(cluster: &RtCluster, cfg: &LoadGenConfig) -> LoadReport {
    assert!(cfg.tasks > 0, "need at least one task");
    assert!(cfg.concurrency > 0, "need at least one in-flight slot");
    cfg.fanout.validate().expect("invalid fan-out distribution");

    let client: RtClient = cluster.client();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut hist = Histogram::for_latency_ns();
    let mut inflight = VecDeque::with_capacity(cfg.concurrency);
    let started = Instant::now();

    for _ in 0..cfg.tasks {
        let n = cfg.fanout.sample(&mut rng) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..cfg.key_range)).collect();
        inflight.push_back(client.fetch_async(&keys));
        if inflight.len() >= cfg.concurrency {
            let resp = inflight.pop_front().expect("non-empty window").wait();
            hist.record(resp.latency.as_nanos() as u64);
        }
    }
    for ticket in inflight {
        let resp = ticket.wait();
        hist.record(resp.latency.as_nanos() as u64);
    }

    let wall = started.elapsed();
    LoadReport {
        task_latency_ms: Percentiles::from_histogram_ns(&hist).expect("recorded tasks"),
        wall,
        tasks_per_sec: cfg.tasks as f64 / wall.as_secs_f64(),
        served_per_server: cluster.served_per_server(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{RtClusterConfig, WorkModel};
    use brb_sched::PolicyKind;

    fn cluster() -> RtCluster {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::UnifIncr,
            work: WorkModel::Instant,
            store_shards: 8,
        });
        c.populate(2_000, |k| (k % 256) + 1);
        c
    }

    #[test]
    fn load_run_completes_and_reports() {
        let c = cluster();
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 300,
                concurrency: 8,
                key_range: 2_000,
                ..Default::default()
            },
        );
        assert_eq!(report.task_latency_ms.count, 300);
        assert!(report.task_latency_ms.p50 > 0.0);
        assert!(report.tasks_per_sec > 0.0);
        let total: u64 = report.served_per_server.iter().sum();
        assert!(total >= 300, "at least one request per task");
        c.shutdown();
    }

    #[test]
    fn replication_spreads_load_across_servers() {
        let c = cluster();
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 500,
                concurrency: 16,
                key_range: 2_000,
                ..Default::default()
            },
        );
        // Every server holds replicas for 2/3 of the key space; none
        // should be idle.
        assert!(
            report.served_per_server.iter().all(|&s| s > 0),
            "idle server: {:?}",
            report.served_per_server
        );
        c.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn degenerate_config_rejected() {
        let c = cluster();
        let _ = run_load(
            &c,
            &LoadGenConfig {
                tasks: 0,
                ..Default::default()
            },
        );
    }
}
