//! Load generation for the threaded runtime.
//!
//! Two modes drive an [`RtCluster`] with batch reads:
//!
//! * **Closed loop** — a fixed window of in-flight tasks; a new task is
//!   issued only when an old one completes. Simple, but it *coordinates
//!   with the system under test*: when the cluster stalls, the generator
//!   stops offering load, so queueing delay silently vanishes from the
//!   recorded distribution (coordinated omission).
//! * **Open loop** — tasks arrive on a Poisson schedule of *intended*
//!   arrival times that does not care how the cluster is doing, and each
//!   task's latency is measured from its intended arrival. A saturated
//!   cluster therefore records the queueing delay it actually inflicts —
//!   the measurement model the simulator (and the paper) uses.
//!
//! Both modes share one corrected recording path
//! ([`crate::client::TaskTicket::wait_outcome_from`]): latency runs from
//! the measurement origin (submit instant or intended arrival) to the
//! server-side completion instant of the task's last response, so
//! draining tickets late never inflates a sample.
//!
//! Under the overload lane tasks can *fail* — dropped, shed, or timed
//! out — and the report splits them out with the same conservation
//! contract the simulator pins: `completed + dropped + timed_out + shed
//! == issued`, checked at the end of every run. Latency histograms
//! record completed tasks only; failed tasks count against goodput.

use crate::client::{RtClient, TaskFailureKind, TaskOutcome, TaskResolution, TaskTicket};
use crate::error::RtError;
use crate::server::RtCluster;
use crate::timing;
use brb_metrics::{Histogram, Percentiles};
use brb_workload::{FanoutDist, PoissonProcess, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How tasks are offered to the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// A fixed window of in-flight tasks (latency from submit).
    Closed {
        /// In-flight task window.
        concurrency: usize,
    },
    /// Poisson arrivals at a fixed rate, latency from *intended* arrival
    /// (coordinated-omission-free).
    Open {
        /// Mean task arrival rate, tasks/second.
        task_rate_per_sec: f64,
    },
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Total tasks to issue.
    pub tasks: usize,
    /// Closed- or open-loop offering.
    pub mode: LoadMode,
    /// Fan-out distribution for task sizes.
    pub fanout: FanoutDist,
    /// Keys are drawn from `0..key_range` (populate the cluster with at
    /// least this many keys first).
    pub key_range: u64,
    /// Zipf exponent for key popularity (`0.0` = uniform; `> 0` makes
    /// low keys hot, reproducing replica-group hot spots).
    pub key_zipf: f64,
    /// RNG seed for the arrival/key/fan-out stream.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            tasks: 1_000,
            mode: LoadMode::Closed { concurrency: 16 },
            fanout: FanoutDist::soundcloud_like(),
            key_range: 10_000,
            key_zipf: 0.0,
            seed: 1,
        }
    }
}

/// Results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Wall-clock task latency percentiles (ms) over *completed* tasks,
    /// measured from each task's origin (submit or intended arrival by
    /// mode).
    pub task_latency_ms: Percentiles,
    /// Wall-clock per-request latency percentiles (ms): submit →
    /// response send, plus the cluster's accounted network RTT
    /// ([`crate::RtClusterConfig::network_rtt_ns`]).
    pub request_latency_ms: Percentiles,
    /// Total wall time of the run (first submission → last drain).
    pub wall: Duration,
    /// Completed tasks per second (== `goodput`).
    pub tasks_per_sec: f64,
    /// Tasks issued.
    pub tasks: usize,
    /// Served requests recorded across completed tasks.
    pub requests: u64,
    /// Requests served per server during this run (load-balance check).
    pub served_per_server: Vec<u64>,
    /// Mean worker utilization during the run: service time accumulated
    /// by all workers over `wall × total_workers`.
    pub utilization: f64,
    /// Tasks issued (alias of `tasks`; the conservation denominator).
    pub issued: usize,
    /// Tasks every request of which was served.
    pub completed: usize,
    /// Tasks that failed on a tail/CoDel drop with no retry left.
    pub dropped: u64,
    /// Tasks that failed on a deadline (including retries-exhausted).
    pub timed_out: u64,
    /// Tasks refused by the admission watermark with no retry left.
    pub shed: u64,
    /// Retries issued across all tasks.
    pub retries: u64,
    /// Completed tasks per second of wall time — the run's goodput.
    pub goodput: f64,
    /// Hedge duplicates the client issued (0 unless the cluster has a
    /// hedge delay).
    pub hedges_issued: u64,
    /// Purged hedge losers that completed anyway and were discarded —
    /// hedging's duplicate-work cost.
    pub duplicate_responses: u64,
    /// Demand reports the credits controller consumed during the run (0
    /// without a credits lane).
    pub demand_reports: u64,
    /// Congestion signals routers raised during the run (0 without a
    /// credits lane).
    pub congestion_signals: u64,
}

/// Accumulates task resolutions into histograms and overload counters.
struct Collector {
    task_hist: Histogram,
    request_hist: Histogram,
    requests: u64,
    completed: usize,
    dropped: u64,
    timed_out: u64,
    shed: u64,
    retries: u64,
}

impl Collector {
    fn new() -> Self {
        Collector {
            task_hist: Histogram::for_latency_ns(),
            request_hist: Histogram::for_latency_ns(),
            requests: 0,
            completed: 0,
            dropped: 0,
            timed_out: 0,
            shed: 0,
            retries: 0,
        }
    }

    fn record(&mut self, res: TaskResolution) {
        self.retries += res.retries as u64;
        match res.outcome {
            TaskOutcome::Completed(resp) => {
                self.completed += 1;
                self.task_hist.record(resp.latency.as_nanos() as u64);
                for &ns in &resp.request_ns {
                    self.request_hist.record(ns);
                }
                self.requests += resp.request_ns.len() as u64;
            }
            TaskOutcome::Failed { failure } => match failure {
                TaskFailureKind::Dropped => self.dropped += 1,
                TaskFailureKind::Shed => self.shed += 1,
                TaskFailureKind::TimedOut | TaskFailureKind::RetriesExhausted => {
                    self.timed_out += 1
                }
            },
        }
    }

    fn collect(&mut self, ticket: TaskTicket, origin: Instant) -> Result<(), RtError> {
        let res = ticket.wait_outcome_from(origin)?;
        self.record(res);
        Ok(())
    }
}

/// Polls every in-flight ticket once, collecting those that resolved —
/// the overload lane's drain: retries and deadline timers progress
/// through these polls while the generator holds the submission
/// schedule.
fn poll_inflight(
    inflight: &mut VecDeque<(TaskTicket, Instant)>,
    col: &mut Collector,
) -> Result<(), RtError> {
    let mut i = 0;
    while i < inflight.len() {
        let (ticket, origin) = &mut inflight[i];
        let origin = *origin;
        if let Some(res) = ticket.poll_outcome(origin)? {
            col.record(res);
            inflight.swap_remove_back(i);
        } else {
            i += 1;
        }
    }
    Ok(())
}

/// Runs a load against `cluster` through a fresh client.
///
/// # Panics
/// Panics if the configuration is degenerate (no tasks, zero
/// concurrency, non-positive rate) or the run fails
/// ([`try_run_load`] is the non-panicking form).
pub fn run_load(cluster: &RtCluster, cfg: &LoadGenConfig) -> LoadReport {
    try_run_load(cluster, cfg).expect("live run failed")
}

/// [`run_load`], returning runtime failures (a panicked worker thread, a
/// shut-down cluster) as a typed [`RtError`] instead of panicking.
///
/// # Panics
/// Still panics on a degenerate configuration (no tasks, zero
/// concurrency, non-positive rate) — those are caller bugs, not runtime
/// conditions.
pub fn try_run_load(cluster: &RtCluster, cfg: &LoadGenConfig) -> Result<LoadReport, RtError> {
    assert!(cfg.tasks > 0, "need at least one task");
    cfg.fanout.validate().expect("invalid fan-out distribution");
    assert!(
        cfg.key_zipf >= 0.0 && cfg.key_zipf.is_finite(),
        "key_zipf must be a finite non-negative exponent"
    );

    // The run seed also seeds the client's selector stream, so seeded
    // runs differ in replica choice the way the simulator's do.
    let client: RtClient = cluster.client_seeded(cfg.seed);
    // Hedging rides the overload lane's poll path too: its timers live
    // inside ticket polls, and duplicate replies break the legacy
    // `is_ready` reply-count shortcut.
    let overload_lane = cluster.config().queue.is_some()
        || cluster.config().timeout.is_some()
        || cluster.config().hedge_delay_ns.is_some();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut col = Collector::new();
    let served_before = cluster.served_per_server();
    let busy_before = cluster.busy_ns_per_server();
    let demand_before = cluster.demand_reports();
    let congestion_before = cluster.congestion_signals();
    let started = Instant::now();

    // Alias-table Zipf ranks when popularity is skewed; plain uniform
    // draws otherwise (building the table for exponent 0 would be waste).
    let zipf = (cfg.key_zipf > 0.0).then(|| Zipf::new(cfg.key_range, cfg.key_zipf));
    let sample_keys = |rng: &mut StdRng| -> Vec<u64> {
        let n = cfg.fanout.sample(rng) as usize;
        (0..n)
            .map(|_| match &zipf {
                Some(z) => z.sample(rng),
                None => rng.random_range(0..cfg.key_range),
            })
            .collect()
    };

    match cfg.mode {
        LoadMode::Closed { concurrency } => {
            assert!(concurrency > 0, "need at least one in-flight slot");
            let mut inflight: VecDeque<(TaskTicket, Instant)> =
                VecDeque::with_capacity(concurrency);
            for _ in 0..cfg.tasks {
                let keys = sample_keys(&mut rng);
                // Origin *before* dispatch: submission itself (selection,
                // rate-limit stalls, channel sends) is part of the latency.
                let origin = Instant::now();
                inflight.push_back((client.fetch_async(&keys), origin));
                if inflight.len() >= concurrency {
                    let (ticket, origin) = inflight.pop_front().expect("non-empty window");
                    col.collect(ticket, origin)?;
                }
            }
            for (ticket, origin) in inflight {
                col.collect(ticket, origin)?;
            }
        }
        LoadMode::Open { task_rate_per_sec } => {
            assert!(
                task_rate_per_sec > 0.0 && task_rate_per_sec.is_finite(),
                "need a positive task rate"
            );
            let mut arrivals = PoissonProcess::new(task_rate_per_sec);
            let mut inflight: VecDeque<(TaskTicket, Instant)> = VecDeque::new();
            // Poll slice while holding the schedule: deadline timers and
            // backoff redispatches live inside ticket polls, so under the
            // overload lane the generator must keep polling between
            // submissions or retries would only fire at collection time.
            const POLL_SLICE: Duration = Duration::from_millis(1);
            for _ in 0..cfg.tasks {
                // Draw the schedule and the task before waiting, so the
                // random stream is a deterministic function of the seed.
                let due = started + Duration::from_nanos(arrivals.next_arrival_ns(&mut rng));
                let keys = sample_keys(&mut rng);
                if overload_lane {
                    loop {
                        poll_inflight(&mut inflight, &mut col)?;
                        let now = Instant::now();
                        if now >= due {
                            break;
                        }
                        timing::wait_until(due.min(now + POLL_SLICE));
                    }
                } else {
                    timing::wait_until(due);
                }
                inflight.push_back((client.fetch_async(&keys), due));
                if !overload_lane {
                    // Legacy drain: pop finished heads without blocking —
                    // the selector only learns from responses at
                    // collection time, so feedback must flow *during* the
                    // run, not after it.
                    while inflight.front().is_some_and(|(t, _)| t.is_ready()) {
                        let (ticket, origin) = inflight.pop_front().expect("non-empty front");
                        col.collect(ticket, origin)?;
                    }
                }
            }
            for (ticket, origin) in inflight {
                col.collect(ticket, origin)?;
            }
        }
    }

    let wall = started.elapsed();
    let served_after = cluster.served_per_server();
    let busy_after = cluster.busy_ns_per_server();
    let served_per_server: Vec<u64> = served_after
        .iter()
        .zip(&served_before)
        .map(|(a, b)| a - b)
        .collect();
    let busy_ns: u64 = busy_after
        .iter()
        .zip(&busy_before)
        .map(|(a, b)| a - b)
        .sum();
    let total_workers = (cluster.config().num_servers * cluster.config().workers_per_server) as f64;
    let utilization = (busy_ns as f64 / 1e9) / (wall.as_secs_f64() * total_workers);

    // The conservation contract both backends pin: every issued task
    // resolved exactly one way.
    assert_eq!(
        col.completed as u64 + col.dropped + col.timed_out + col.shed,
        cfg.tasks as u64,
        "task conservation violated"
    );
    let goodput = col.completed as f64 / wall.as_secs_f64();
    let zeroed = Percentiles {
        count: 0,
        mean: 0.0,
        p50: 0.0,
        p95: 0.0,
        p99: 0.0,
        max: 0.0,
    };
    Ok(LoadReport {
        // A fully-failed run (total collapse) has no latency samples.
        task_latency_ms: Percentiles::from_histogram_ns(&col.task_hist).unwrap_or(zeroed),
        request_latency_ms: Percentiles::from_histogram_ns(&col.request_hist).unwrap_or(zeroed),
        wall,
        tasks_per_sec: goodput,
        tasks: cfg.tasks,
        requests: col.requests,
        served_per_server,
        utilization,
        issued: cfg.tasks,
        completed: col.completed,
        dropped: col.dropped,
        timed_out: col.timed_out,
        shed: col.shed,
        retries: col.retries,
        goodput,
        hedges_issued: client.hedged_total(),
        duplicate_responses: client.duplicate_responses(),
        demand_reports: cluster.demand_reports() - demand_before,
        congestion_signals: cluster.congestion_signals() - congestion_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{RtClusterConfig, RtQueueConfig, RtTimeoutConfig, WorkModel};
    use brb_sched::overload::QueueBound;
    use brb_sched::PolicyKind;
    use brb_store::service::{ServiceModel, ServiceNoise};

    fn cluster() -> RtCluster {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::UnifIncr,
            work: WorkModel::Instant,
            store_shards: 8,
            ..Default::default()
        });
        c.populate(2_000, |k| (k % 256) + 1);
        c
    }

    #[test]
    fn load_run_completes_and_reports() {
        let c = cluster();
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 300,
                mode: LoadMode::Closed { concurrency: 8 },
                key_range: 2_000,
                ..Default::default()
            },
        );
        assert_eq!(report.task_latency_ms.count, 300);
        assert_eq!(report.tasks, 300);
        assert!(report.task_latency_ms.p50 > 0.0);
        assert!(report.request_latency_ms.count >= 300);
        assert_eq!(report.request_latency_ms.count, report.requests);
        assert!(report.tasks_per_sec > 0.0);
        // Knobs off: every task completes and nothing is dropped.
        assert_eq!(report.completed, 300);
        assert_eq!(report.dropped + report.timed_out + report.shed, 0);
        assert_eq!(report.retries, 0);
        let total: u64 = report.served_per_server.iter().sum();
        assert!(total >= 300, "at least one request per task");
        assert_eq!(total, report.requests);
        c.shutdown();
    }

    #[test]
    fn open_loop_run_completes_and_reports() {
        let c = cluster();
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 200,
                // Fast arrivals; Instant service keeps the run short.
                mode: LoadMode::Open {
                    task_rate_per_sec: 20_000.0,
                },
                key_range: 2_000,
                ..Default::default()
            },
        );
        assert_eq!(report.task_latency_ms.count, 200);
        assert_eq!(report.request_latency_ms.count, report.requests);
        assert_eq!(report.completed, 200);
        c.shutdown();
    }

    #[test]
    fn replication_spreads_load_across_servers() {
        let c = cluster();
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 500,
                mode: LoadMode::Closed { concurrency: 16 },
                key_range: 2_000,
                ..Default::default()
            },
        );
        // Every server holds replicas for 2/3 of the key space; none
        // should be idle.
        assert!(
            report.served_per_server.iter().all(|&s| s > 0),
            "idle server: {:?}",
            report.served_per_server
        );
        c.shutdown();
    }

    /// The coordinated-omission regression. A closed-loop generator
    /// measuring from submit would report ≈ the service time no matter
    /// how overloaded the cluster is (it politely waits before
    /// offering). Open-loop arrivals at 1.3× capacity build a backlog;
    /// latency measured from *intended* arrival must surface that
    /// queueing delay.
    #[test]
    fn open_loop_records_queueing_delay_under_saturation() {
        const SERVICE_NS: f64 = 300_000.0; // 300µs per request
        let service =
            ServiceModel::calibrated_size_linear(SERVICE_NS, 64.0, 1.0, ServiceNoise::None);
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 1,
            workers_per_server: 1,
            replication: 1,
            work: WorkModel::SimulateService(service),
            store_shards: 4,
            ..Default::default()
        });
        c.populate(64, |_| 64);
        // Capacity is 1/300µs ≈ 3333 tasks/s at fan-out 1; offer 1.3×.
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 400,
                mode: LoadMode::Open {
                    task_rate_per_sec: 1.3 / (SERVICE_NS / 1e9),
                },
                fanout: FanoutDist::Fixed(1),
                key_range: 64,
                ..Default::default()
            },
        );
        // 400 tasks at 30% overload leave ≈ 400·0.3·300µs ≈ 36ms of
        // backlog by the end; the *median* recorded latency must be many
        // service times of queueing delay, which submit-based recording
        // structurally cannot observe.
        let service_ms = SERVICE_NS / 1e6;
        assert!(
            report.task_latency_ms.p50 >= 5.0 * service_ms,
            "open-loop p50 {}ms does not reflect queueing (service {}ms)",
            report.task_latency_ms.p50,
            service_ms
        );
        assert!(
            report.task_latency_ms.mean >= 2.0,
            "mean {}ms",
            report.task_latency_ms.mean
        );
        c.shutdown();
    }

    /// The overload lane end to end: sustained 1.5× overload into a
    /// tightly bounded queue with immediate-retry timeouts must fail
    /// some tasks — and the report must conserve
    /// `completed + dropped + timed_out + shed == issued` while
    /// recording latency for completed tasks only.
    #[test]
    fn overload_run_conserves_tasks_and_reports_goodput() {
        const SERVICE_NS: f64 = 300_000.0;
        let service =
            ServiceModel::calibrated_size_linear(SERVICE_NS, 64.0, 1.0, ServiceNoise::None);
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            workers_per_server: 1,
            replication: 2,
            work: WorkModel::SimulateService(service),
            store_shards: 4,
            queue: Some(RtQueueConfig {
                bound: QueueBound {
                    capacity: 8,
                    shed_above: None,
                },
                codel: None,
            }),
            timeout: Some(RtTimeoutConfig {
                timeout_ns: 3_000_000, // 3ms
                max_retries: 2,
                backoff_base_ns: 0,
                backoff_cap_ns: 0,
                retry_budget_percent: None,
            }),
            ..Default::default()
        });
        c.populate(64, |_| 64);
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 300,
                mode: LoadMode::Open {
                    task_rate_per_sec: 2.0 * 1.5 / (SERVICE_NS / 1e9),
                },
                fanout: FanoutDist::Fixed(1),
                key_range: 64,
                ..Default::default()
            },
        );
        assert_eq!(
            report.completed as u64 + report.dropped + report.timed_out + report.shed,
            report.issued as u64,
            "conservation"
        );
        assert!(
            report.dropped + report.timed_out > 0,
            "1.5× overload into capacity 8 never failed a task"
        );
        assert!(report.completed > 0, "overload must not starve everything");
        assert_eq!(report.task_latency_ms.count as usize, report.completed);
        assert!(report.goodput > 0.0 && report.goodput == report.tasks_per_sec);
        c.shutdown();
    }

    /// A hedged live run: spiked stragglers trigger duplicates, the
    /// report surfaces the hedge counters, and the conservation
    /// contract holds with duplicate replies in flight — losing twins
    /// must never double-count a task or strand accounting.
    #[test]
    fn hedged_run_reports_hedges_and_conserves_tasks() {
        use crate::server::SpikeModel;
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 2,
            workers_per_server: 1,
            replication: 2,
            // ~50µs forecast, every request spiked ~4ms: all stragglers.
            work: WorkModel::SimulateService(ServiceModel::calibrated_size_linear(
                50_000.0,
                64.0,
                1.0,
                ServiceNoise::None,
            )),
            store_shards: 4,
            hedge_delay_ns: Some(1_000_000), // 1ms
            spike: Some(SpikeModel {
                p_spike: 1.0,
                extra_lo_ns: 4_000_000,
                extra_hi_ns: 4_000_000,
            }),
            ..Default::default()
        });
        c.populate(64, |_| 64);
        let report = run_load(
            &c,
            &LoadGenConfig {
                tasks: 60,
                mode: LoadMode::Closed { concurrency: 4 },
                fanout: FanoutDist::Fixed(1),
                key_range: 64,
                ..Default::default()
            },
        );
        assert_eq!(
            report.completed as u64 + report.dropped + report.timed_out + report.shed,
            report.issued as u64,
            "conservation under hedging"
        );
        assert_eq!(report.completed, 60, "hedging must not fail tasks");
        assert!(
            report.hedges_issued >= 1,
            "60 spiked tasks under a 1ms hedge delay never hedged"
        );
        // The 5% budget binds: hedges·20 < dispatches (60 + hedges),
        // so at most ~3 duplicates across 60 single-request tasks.
        assert!(
            report.hedges_issued <= 4,
            "hedge budget failed to bind: {}",
            report.hedges_issued
        );
        assert!(report.duplicate_responses <= report.hedges_issued);
        // No credits lane: those counters stay zero.
        assert_eq!(report.demand_reports, 0);
        assert_eq!(report.congestion_signals, 0);
        c.shutdown();
    }

    /// Fault injection: a worker that panics mid-run must fail the run
    /// with a typed error — never hang the generator. The timeout
    /// config keeps every other task resolving while the poisoned key's
    /// task dies with the worker.
    #[test]
    fn worker_panic_fails_the_run_typed() {
        let c = RtCluster::start(RtClusterConfig {
            num_servers: 1,
            workers_per_server: 1,
            replication: 1,
            work: WorkModel::Instant,
            store_shards: 4,
            panic_on_key: Some(13),
            timeout: Some(RtTimeoutConfig {
                timeout_ns: 5_000_000,
                max_retries: 0,
                backoff_base_ns: 0,
                backoff_cap_ns: 0,
                retry_budget_percent: None,
            }),
            ..Default::default()
        });
        c.populate(64, |_| 8);
        let err = try_run_load(
            &c,
            &LoadGenConfig {
                tasks: 200,
                mode: LoadMode::Closed { concurrency: 4 },
                fanout: FanoutDist::Fixed(1),
                key_range: 64, // key 13 is in range: the fault will fire
                ..Default::default()
            },
        )
        .expect_err("run over a poisoned key must fail");
        assert_eq!(err, RtError::WorkerPanicked);
        assert!(c.panicked());
        assert!(c.shutdown_checked().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn degenerate_config_rejected() {
        let c = cluster();
        let _ = run_load(
            &c,
            &LoadGenConfig {
                tasks: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "in-flight slot")]
    fn zero_concurrency_rejected() {
        let c = cluster();
        let _ = run_load(
            &c,
            &LoadGenConfig {
                tasks: 1,
                mode: LoadMode::Closed { concurrency: 0 },
                ..Default::default()
            },
        );
    }
}
