//! The live credits lane: `brb-sched`'s controller math on real threads.
//!
//! The simulator and the runtime share ONE credits implementation —
//! [`brb_sched::CreditController`] / [`brb_sched::CreditBucket`] — with
//! two clocks. Here the controller runs as its own thread: clients send
//! [`CreditMsg::Demand`] reports and routers send
//! [`CreditMsg::Congestion`] signals over a channel; every adaptation
//! interval the thread runs one `allocate_into` epoch and publishes the
//! grant table on a shared [`GrantBoard`]. Clients poll the board's
//! epoch counter on their dispatch path (one atomic load when nothing
//! changed) and enforce their grants with per-server token buckets,
//! exactly as the sim engine does.
//!
//! The admission rule is kept line-for-line equivalent to the sim's
//! credits realization: among replicas holding at least one token, pick
//! the one with the lowest `queue_ewma + outstanding × num_clients`
//! (ties to the lower server id), spend a token, dispatch; otherwise
//! rate-limit for the earliest token's ETA. The sim parks rate-limited
//! requests in a client hold queue and folds the backlog into its
//! demand reports (`held / (replication × dt)` per replica); the rt
//! client blocks in `select_replica` instead, so the live proxy for
//! that backlog is the rate-limited attempt count — each refused
//! select adds `1 / candidates` to every candidate's demand, and the
//! retry cadence (one attempt per token ETA) keeps the two estimates
//! within a small factor of each other.

#[cfg(test)]
use crate::timing;
use brb_sched::{CreditBucket, CreditController, CreditsConfig, GrantTable};
use brb_select::{ReplicaSelector, ResponseFeedback, Selection, SelectionCtx};
use brb_store::ids::{ClientId, ServerId};
use crossbeam::channel::{select, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Credits tuning for the live runtime: the shared controller config
/// plus the two cluster-level numbers the sim derives from its own
/// config — per-server capacity (grants are shares of it) and the queue
/// depth at which a router raises a congestion signal.
#[derive(Debug, Clone, Copy)]
pub struct RtCreditsConfig {
    /// Controller tuning (intervals, AIMD constants, burst).
    pub config: CreditsConfig,
    /// Full capacity of each server, requests/second (the sim's
    /// `server_capacity_rps()`).
    pub server_capacity_rps: f64,
    /// Router queue depth at/above which an arrival counts as congested
    /// (the sim's `congestion_queue_threshold`).
    pub congestion_queue_threshold: usize,
}

impl Default for RtCreditsConfig {
    fn default() -> Self {
        RtCreditsConfig {
            config: CreditsConfig::default(),
            // Paper cluster: 4 cores × 3500 req/s per core.
            server_capacity_rps: 14_000.0,
            congestion_queue_threshold: 96,
        }
    }
}

/// What flows *to* the controller thread.
#[derive(Debug)]
pub(crate) enum CreditMsg {
    /// One client's demand report for one measurement tick: the >0
    /// per-server EWMA rates, requests/second. One message per client
    /// per tick, mirroring the sim's one report event per client.
    Demand {
        /// Reporting client.
        client: ClientId,
        /// `(server index, rate_rps)` pairs, only servers with demand.
        rates: Vec<(u32, f64)>,
    },
    /// A router observed congestion at its server.
    Congestion {
        /// Congested server index.
        server: u32,
    },
}

/// The published allocation: grant table plus an epoch counter so
/// clients can skip the lock when nothing changed since their last look.
pub(crate) struct GrantBoard {
    epoch: AtomicU64,
    grants: Mutex<GrantTable>,
}

impl GrantBoard {
    fn new() -> Self {
        GrantBoard {
            epoch: AtomicU64::new(0),
            grants: Mutex::new(GrantTable::new()),
        }
    }
}

/// Everything the cluster and its clients need to participate in the
/// credits lane. Held by `RtCluster`; clients clone the channel sender
/// and share the board.
pub(crate) struct CreditsHub {
    pub(crate) board: Arc<GrantBoard>,
    pub(crate) tx: Sender<CreditMsg>,
    pub(crate) demand_reports: Arc<AtomicU64>,
    pub(crate) congestion_signals: Arc<AtomicU64>,
    pub(crate) cfg: RtCreditsConfig,
}

/// Spawns the controller thread. It adapts every
/// `adaptation_interval_ns`, publishing each epoch's grants on the
/// board, and exits when `stop_rx` disconnects (cluster shutdown) — not
/// when the message channel drains, because clients may outlive the
/// cluster handle and still hold senders.
pub(crate) fn spawn_controller(
    cfg: RtCreditsConfig,
    num_servers: usize,
    stop_rx: Receiver<()>,
    panicked: Arc<AtomicBool>,
) -> (CreditsHub, JoinHandle<()>) {
    let (tx, rx) = unbounded();
    let board = Arc::new(GrantBoard::new());
    let demand_reports = Arc::new(AtomicU64::new(0));
    let congestion_signals = Arc::new(AtomicU64::new(0));
    let hub = CreditsHub {
        board: Arc::clone(&board),
        tx,
        demand_reports: Arc::clone(&demand_reports),
        congestion_signals: Arc::clone(&congestion_signals),
        cfg,
    };
    let handle = std::thread::Builder::new()
        .name("brb-credits".into())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                controller_loop(
                    cfg,
                    num_servers,
                    &rx,
                    &stop_rx,
                    &board,
                    &demand_reports,
                    &congestion_signals,
                );
            }));
            if result.is_err() {
                panicked.store(true, Ordering::Release);
            }
        })
        .expect("spawn credits controller");
    (hub, handle)
}

fn controller_loop(
    cfg: RtCreditsConfig,
    num_servers: usize,
    rx: &Receiver<CreditMsg>,
    stop_rx: &Receiver<()>,
    board: &GrantBoard,
    demand_reports: &AtomicU64,
    congestion_signals: &AtomicU64,
) {
    let mut controller =
        CreditController::new(vec![cfg.server_capacity_rps; num_servers], cfg.config);
    // Pooled table: epochs swap it with the board's, so steady state
    // allocates nothing (the two tables ping-pong).
    let mut table = GrantTable::new();
    let interval = Duration::from_nanos(cfg.config.adaptation_interval_ns);
    let mut next_epoch = Instant::now() + interval;
    loop {
        select! {
            recv(rx) -> msg => match msg {
                Ok(CreditMsg::Demand { client, rates }) => {
                    demand_reports.fetch_add(1, Ordering::Relaxed);
                    for (server, rate) in rates {
                        controller.report_demand(client, ServerId::new(server as u64), rate);
                    }
                }
                Ok(CreditMsg::Congestion { server }) => {
                    congestion_signals.fetch_add(1, Ordering::Relaxed);
                    controller.signal_congestion(ServerId::new(server as u64));
                }
                // All senders gone: the cluster and every client are
                // dropped; nothing left to serve.
                Err(_) => break,
            },
            recv(stop_rx) -> _ => break,
            default(next_epoch.saturating_duration_since(Instant::now())) => {
                controller.allocate_into(&mut table);
                {
                    let mut published = board.grants.lock();
                    std::mem::swap(&mut *published, &mut table);
                }
                board.epoch.fetch_add(1, Ordering::Release);
                next_epoch += interval;
            }
        }
    }
}

/// The credits realization as a [`ReplicaSelector`], so the existing
/// client dispatch path (select → dispatch, `RateLimited` → bounded
/// wait → re-select) needs no new plumbing. State and update rules
/// mirror the sim engine's credits client exactly; only the clock
/// (client-epoch nanoseconds from `SelectionCtx::now_ns`) differs.
pub(crate) struct CreditSelector {
    client: ClientId,
    board: Arc<GrantBoard>,
    tx: Sender<CreditMsg>,
    measurement_interval_ns: u64,
    burst_secs: f64,
    /// Load weight on outstanding requests: one in-flight request of
    /// ours stands in for `num_clients` cluster-wide (the sim's `w`).
    weight: f64,
    seen_epoch: u64,
    buckets: Vec<CreditBucket>,
    queue_ewma: Vec<f64>,
    outstanding: Vec<u64>,
    dispatched_since: Vec<u64>,
    /// Rate-limited attempts this interval, `1 / candidates` per
    /// candidate — the live stand-in for the sim's held-request backlog,
    /// so starved clients still report the demand they could not send.
    unmet_since: Vec<f64>,
    demand_ewma: Vec<f64>,
    last_measure_ns: u64,
}

impl CreditSelector {
    /// Builds a selector for `client` against `num_servers` servers.
    /// Buckets start at the fair share — capacity ÷ clients — exactly
    /// as the sim seeds its buckets before the first epoch lands.
    pub(crate) fn new(
        client: ClientId,
        hub: &CreditsHub,
        num_servers: usize,
        num_clients: usize,
    ) -> Self {
        let num_clients = num_clients.max(1);
        let burst_secs = hub.cfg.config.burst_secs;
        let fair_rate = hub.cfg.server_capacity_rps / num_clients as f64;
        CreditSelector {
            client,
            board: Arc::clone(&hub.board),
            tx: hub.tx.clone(),
            measurement_interval_ns: hub.cfg.config.measurement_interval_ns,
            burst_secs,
            weight: num_clients as f64,
            seen_epoch: 0,
            buckets: (0..num_servers)
                .map(|_| CreditBucket::new(fair_rate, (fair_rate * burst_secs).max(1.0)))
                .collect(),
            queue_ewma: vec![0.0; num_servers],
            outstanding: vec![0; num_servers],
            dispatched_since: vec![0; num_servers],
            unmet_since: vec![0.0; num_servers],
            demand_ewma: vec![0.0; num_servers],
            last_measure_ns: 0,
        }
    }

    /// Applies the latest grant epoch, if one landed since we last
    /// looked. Servers absent from our grant row keep their old rate
    /// (sim behavior: `set_rate` only for granted servers).
    fn refresh_grants(&mut self, now_ns: u64) {
        let epoch = self.board.epoch.load(Ordering::Acquire);
        if epoch == self.seen_epoch {
            return;
        }
        let table = self.board.grants.lock();
        for (i, bucket) in self.buckets.iter_mut().enumerate() {
            if let Some(rate) = table.rate(ServerId::new(i as u64), self.client) {
                bucket.set_rate(now_ns, rate, self.burst_secs);
            }
        }
        drop(table);
        self.seen_epoch = epoch;
    }

    /// Flushes one demand report if a measurement interval elapsed:
    /// per-server instantaneous dispatch rate folded into a
    /// fast-attack / slow-decay EWMA (the sim's demand estimator), sent
    /// as one message carrying only the >0 rates.
    fn maybe_report(&mut self, now_ns: u64) {
        if now_ns
            < self
                .last_measure_ns
                .saturating_add(self.measurement_interval_ns)
        {
            return;
        }
        let dt_secs = (now_ns - self.last_measure_ns) as f64 / 1e9;
        self.last_measure_ns = now_ns;
        if dt_secs <= 0.0 {
            return;
        }
        let mut rates = Vec::new();
        for i in 0..self.buckets.len() {
            let inst = (self.dispatched_since[i] as f64 + self.unmet_since[i]) / dt_secs;
            self.dispatched_since[i] = 0;
            self.unmet_since[i] = 0.0;
            let ewma = &mut self.demand_ewma[i];
            *ewma = if inst > *ewma {
                inst
            } else {
                0.3 * inst + 0.7 * *ewma
            };
            if *ewma > 0.0 {
                rates.push((i as u32, *ewma));
            }
        }
        if !rates.is_empty() {
            // Send failure means the controller is gone (shutdown mid-
            // flight); the dispatch path handles that via the cluster's
            // own channels, so the lost report is irrelevant.
            let _ = self.tx.send(CreditMsg::Demand {
                client: self.client,
                rates,
            });
        }
    }
}

impl ReplicaSelector for CreditSelector {
    fn name(&self) -> &'static str {
        "credits"
    }

    fn select(&mut self, ctx: &SelectionCtx<'_>) -> Selection {
        debug_assert!(!ctx.candidates.is_empty());
        let now_ns = ctx.now_ns;
        self.refresh_grants(now_ns);
        self.maybe_report(now_ns);
        // Sim-exact admission: among candidates holding a token, lowest
        // queue_ewma + outstanding × num_clients wins; ties to the
        // lower server id.
        let mut best: Option<(f64, ServerId)> = None;
        for &s in ctx.candidates {
            let i = s.index();
            if self.buckets[i].tokens_at(now_ns) >= 1.0 {
                let load = self.queue_ewma[i] + self.outstanding[i] as f64 * self.weight;
                let better = match best {
                    None => true,
                    Some((bl, br)) => load < bl || (load == bl && s.raw() < br.raw()),
                };
                if better {
                    best = Some((load, s));
                }
            }
        }
        if let Some((_, s)) = best {
            let i = s.index();
            if self.buckets[i].try_take(now_ns) {
                self.outstanding[i] += 1;
                self.dispatched_since[i] += 1;
                return Selection::Dispatch(s);
            }
        }
        // Refused: this attempt is demand the grants could not carry.
        // Attribute it across the group like the sim spreads a held
        // request across its replicas.
        let share = 1.0 / ctx.candidates.len() as f64;
        let mut retry_in_ns = u64::MAX;
        for &s in ctx.candidates {
            self.unmet_since[s.index()] += share;
            retry_in_ns = retry_in_ns.min(self.buckets[s.index()].ns_until_token(now_ns));
        }
        if retry_in_ns == u64::MAX {
            // Every candidate granted at rate zero: probe again in 1 ms
            // (the sim's fallback for the same corner).
            retry_in_ns = 1_000_000;
        }
        Selection::RateLimited { retry_in_ns }
    }

    fn on_response(&mut self, server: ServerId, _now_ns: u64, feedback: &ResponseFeedback) {
        let i = server.index();
        self.queue_ewma[i] = 0.3 * feedback.queue_len as f64 + 0.7 * self.queue_ewma[i];
        self.outstanding[i] = self.outstanding[i].saturating_sub(1);
    }

    fn on_abandon(&mut self, server: ServerId) {
        let i = server.index();
        self.outstanding[i] = self.outstanding[i].saturating_sub(1);
    }

    fn outstanding(&self, server: ServerId) -> u64 {
        self.outstanding[server.index()]
    }
}

/// Waits (bounded) until the board has published at least `epoch`
/// epochs. Test helper; uses the hybrid sleep so short intervals are
/// honored.
#[cfg(test)]
fn wait_for_epoch(board: &GrantBoard, epoch: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while board.epoch.load(Ordering::Acquire) < epoch {
        if Instant::now() >= deadline {
            return false;
        }
        timing::wait_for(Duration::from_micros(200));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(adaptation_ms: u64) -> RtCreditsConfig {
        RtCreditsConfig {
            config: CreditsConfig {
                adaptation_interval_ns: adaptation_ms * 1_000_000,
                measurement_interval_ns: 10_000_000, // 10 ms
                ..CreditsConfig::default()
            },
            server_capacity_rps: 10_000.0,
            congestion_queue_threshold: 4,
        }
    }

    fn bare_hub(cfg: RtCreditsConfig) -> (CreditsHub, Receiver<CreditMsg>) {
        let (tx, rx) = unbounded();
        let hub = CreditsHub {
            board: Arc::new(GrantBoard::new()),
            tx,
            demand_reports: Arc::new(AtomicU64::new(0)),
            congestion_signals: Arc::new(AtomicU64::new(0)),
            cfg,
        };
        (hub, rx)
    }

    fn ctx(candidates: &[ServerId], now_ns: u64) -> SelectionCtx<'_> {
        SelectionCtx {
            now_ns,
            candidates,
            value_bytes: 100,
            oracle_queue_depths: None,
        }
    }

    #[test]
    fn controller_thread_adapts_and_publishes_grants() {
        let (_stop_tx, stop_rx) = unbounded::<()>();
        let panicked = Arc::new(AtomicBool::new(false));
        let (hub, handle) = spawn_controller(test_cfg(5), 2, stop_rx, Arc::clone(&panicked));
        hub.tx
            .send(CreditMsg::Demand {
                client: ClientId::new(0),
                rates: vec![(0, 4_000.0), (1, 1_000.0)],
            })
            .unwrap();
        hub.tx.send(CreditMsg::Congestion { server: 1 }).unwrap();
        assert!(
            wait_for_epoch(&hub.board, 3, Duration::from_secs(10)),
            "controller never published an epoch"
        );
        {
            let table = hub.board.grants.lock();
            let g0 = table.rate(ServerId::new(0), ClientId::new(0)).unwrap();
            // Uncontended: demand × headroom.
            assert!(
                (g0 - 4_000.0 * hub.cfg.config.headroom).abs() < 1e-6,
                "{g0}"
            );
            // Client never reported for a third server — and there is
            // none; the row for server 1 exists.
            assert!(table.rate(ServerId::new(1), ClientId::new(0)).is_some());
        }
        assert_eq!(hub.demand_reports.load(Ordering::Relaxed), 1);
        assert_eq!(hub.congestion_signals.load(Ordering::Relaxed), 1);
        // Dropping the stop channel ends the thread even though `hub`
        // (and its sender) is still alive — the client-outlives-cluster
        // shutdown path.
        drop(_stop_tx);
        handle.join().unwrap();
        assert!(!panicked.load(Ordering::Acquire));
    }

    #[test]
    fn selector_enforces_buckets_and_rate_limits() {
        // Capacity 10k over 1000 clients → fair rate 10 rps, burst 1:
        // exactly one token banked at t=0.
        let mut cfg = test_cfg(1_000);
        cfg.server_capacity_rps = 10_000.0;
        let (hub, _rx) = bare_hub(cfg);
        let mut sel = CreditSelector::new(ClientId::new(0), &hub, 1, 1000);
        let servers = [ServerId::new(0)];
        assert_eq!(
            sel.select(&ctx(&servers, 0)),
            Selection::Dispatch(ServerId::new(0))
        );
        // Bucket drained; next token ~100 ms out at 10 rps.
        match sel.select(&ctx(&servers, 1)) {
            Selection::RateLimited { retry_in_ns } => {
                assert!(
                    (50_000_000..=150_000_000).contains(&retry_in_ns),
                    "{retry_in_ns}"
                );
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
        assert_eq!(sel.outstanding(ServerId::new(0)), 1);
    }

    #[test]
    fn selector_applies_published_grants() {
        let mut cfg = test_cfg(1_000);
        cfg.server_capacity_rps = 10_000.0;
        let (hub, _rx) = bare_hub(cfg);
        let mut sel = CreditSelector::new(ClientId::new(7), &hub, 1, 1000);
        let servers = [ServerId::new(0)];
        // Drain the single fair-share token.
        assert!(matches!(
            sel.select(&ctx(&servers, 0)),
            Selection::Dispatch(_)
        ));
        assert!(matches!(
            sel.select(&ctx(&servers, 1)),
            Selection::RateLimited { .. }
        ));
        // Controller grants this client 2000 rps; publish epoch 1.
        let mut controller = CreditController::new(vec![10_000.0], cfg.config);
        controller.report_demand(ClientId::new(7), ServerId::new(0), 2_000.0);
        controller.allocate_into(&mut hub.board.grants.lock());
        hub.board.epoch.fetch_add(1, Ordering::Release);
        // At 2600 rps (2000 × 1.3 headroom) the next token is ~0.4 ms
        // out where the old 10 rps rate needed ~100 ms; following the
        // rate-limit hint once must reach a dispatch.
        let now = 5_000_000;
        match sel.select(&ctx(&servers, now)) {
            Selection::Dispatch(s) => assert_eq!(s, ServerId::new(0)),
            Selection::RateLimited { retry_in_ns } => {
                assert!(retry_in_ns < 2_000_000, "grant not applied: {retry_in_ns}");
                assert_eq!(
                    sel.select(&ctx(&servers, now + retry_in_ns)),
                    Selection::Dispatch(ServerId::new(0))
                );
            }
        }
    }

    #[test]
    fn selector_reports_demand_once_per_interval() {
        let cfg = test_cfg(1_000); // measurement interval 10 ms
        let (hub, rx) = bare_hub(cfg);
        let mut sel = CreditSelector::new(ClientId::new(3), &hub, 2, 2);
        let servers = [ServerId::new(0), ServerId::new(1)];
        // Dispatches inside the first interval accumulate...
        for t in [0u64, 1_000_000, 2_000_000] {
            let _ = sel.select(&ctx(&servers, t));
        }
        assert!(rx.try_recv().is_err(), "no report before the interval");
        // ...and flush as ONE message when a select crosses it.
        let _ = sel.select(&ctx(&servers, 11_000_000));
        let msg = rx.try_recv().expect("demand report after interval");
        let CreditMsg::Demand { client, rates } = msg else {
            panic!("expected a demand report");
        };
        assert_eq!(client, ClientId::new(3));
        assert!(!rates.is_empty());
        assert!(rates.iter().all(|&(_, r)| r > 0.0));
        assert!(rx.try_recv().is_err(), "one message per tick");
    }

    #[test]
    fn rate_limited_attempts_fold_into_demand_reports() {
        // Capacity 10k over 1000 clients → 10 rps fair share: one
        // banked token, then starvation. The starved attempts must
        // still show up as demand, or the controller can never learn
        // this client wants more than it is granted.
        let mut cfg = test_cfg(1_000); // measurement interval 10 ms
        cfg.server_capacity_rps = 10_000.0;
        let (hub, rx) = bare_hub(cfg);
        let mut sel = CreditSelector::new(ClientId::new(0), &hub, 1, 1000);
        let servers = [ServerId::new(0)];
        assert!(matches!(
            sel.select(&ctx(&servers, 0)),
            Selection::Dispatch(_)
        ));
        for t in [1_000_000u64, 2_000_000, 3_000_000] {
            assert!(matches!(
                sel.select(&ctx(&servers, t)),
                Selection::RateLimited { .. }
            ));
        }
        let _ = sel.select(&ctx(&servers, 11_000_000));
        let CreditMsg::Demand { rates, .. } = rx.try_recv().expect("report after interval") else {
            panic!("expected a demand report");
        };
        // 1 dispatch + 3 refused attempts over 11 ms ≈ 363 rps; the
        // dispatch alone would report ~91 rps.
        assert!(
            rates[0].1 > 250.0,
            "unmet demand missing from report: {} rps",
            rates[0].1
        );
    }

    #[test]
    fn selector_balances_by_outstanding_and_releases_on_abandon() {
        let cfg = test_cfg(1_000);
        let (hub, _rx) = bare_hub(cfg);
        // 2 clients → fair rate 5000 rps each, plenty of burst.
        let mut sel = CreditSelector::new(ClientId::new(0), &hub, 2, 2);
        let servers = [ServerId::new(0), ServerId::new(1)];
        let Selection::Dispatch(first) = sel.select(&ctx(&servers, 0)) else {
            panic!("expected dispatch");
        };
        let Selection::Dispatch(second) = sel.select(&ctx(&servers, 0)) else {
            panic!("expected dispatch");
        };
        // Outstanding weighting spreads consecutive picks.
        assert_ne!(first, second);
        sel.on_abandon(first);
        assert_eq!(sel.outstanding(first), 0);
        sel.on_response(
            second,
            10,
            &ResponseFeedback {
                response_time_ns: 10,
                queue_len: 6,
                service_time_ns: 5,
            },
        );
        assert_eq!(sel.outstanding(second), 0);
        // Queue EWMA from piggybacked feedback steers the next pick
        // away from the slow server.
        assert_eq!(sel.select(&ctx(&servers, 20)), Selection::Dispatch(first));
    }
}
