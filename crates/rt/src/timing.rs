//! Precise short waits for the live runtime.
//!
//! `std::thread::sleep` is the wrong tool for service times in the tens
//! of microseconds: the OS timer adds ~50 µs–1 ms of slack per call,
//! which inflates *every* simulated service by more than the gaps the
//! scheduling strategies create — the strategy comparison flattens into
//! timer noise. The hybrid here hands the bulk of long waits to the OS
//! (so simulated service does not burn a core) but finishes the last
//! stretch — and short waits entirely — with a spin on the monotonic
//! clock, which lands within a microsecond or two of the deadline.
//!
//! The spin reserve (how early we bail out of `thread::sleep`) is
//! calibrated once per process from the observed oversleep of a short
//! OS sleep, so a machine with tighter timers spins less.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Floor and ceiling for the calibrated spin reserve. The floor covers
/// the best hrtimer machines; the ceiling keeps a badly-loaded
/// calibration run from turning sub-millisecond service waits into
/// pure busy-spins — with typical simulated services around a
/// millisecond, a reserve beyond 500µs would burn cores and make
/// wall-clock comparisons scheduler-bound on small CI runners.
const RESERVE_MIN: Duration = Duration::from_micros(50);
const RESERVE_MAX: Duration = Duration::from_micros(500);

/// How much of a wait is finished by spinning rather than sleeping —
/// calibrated once from the worst observed oversleep of a short
/// `thread::sleep`, then clamped to `[RESERVE_MIN, RESERVE_MAX]`.
pub fn spin_reserve() -> Duration {
    static RESERVE: OnceLock<Duration> = OnceLock::new();
    *RESERVE.get_or_init(|| {
        let ask = Duration::from_micros(200);
        let mut worst = Duration::ZERO;
        for _ in 0..4 {
            let t0 = Instant::now();
            std::thread::sleep(ask);
            worst = worst.max(t0.elapsed().saturating_sub(ask));
        }
        // Twice the worst observed slack: oversleep varies run to run.
        (worst * 2).clamp(RESERVE_MIN, RESERVE_MAX)
    })
}

/// Blocks until `deadline`: sleeps while more than the spin reserve
/// remains, then spins the rest. Returns immediately if the deadline has
/// already passed (an open-loop generator running behind schedule must
/// not add recovery sleep on top).
pub fn wait_until(deadline: Instant) {
    let reserve = spin_reserve();
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return;
        }
        if remaining <= reserve {
            break;
        }
        std::thread::sleep(remaining - reserve);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Blocks for `duration` with [`wait_until`]'s sleep/spin hybrid.
pub fn wait_for(duration: Duration) {
    wait_until(Instant::now() + duration);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_is_sane() {
        let r = spin_reserve();
        assert!(r >= RESERVE_MIN && r <= RESERVE_MAX, "{r:?}");
    }

    /// The regression the live lane depends on: a simulated service time
    /// in the tens of microseconds must come out within a few µs of the
    /// request, not inflated by OS timer slack. `thread::sleep(40µs)`
    /// typically overshoots by 50µs–1ms — more than the service itself —
    /// which flattens every strategy difference; the hybrid's median
    /// overshoot must stay below the threshold at which strategies
    /// become indistinguishable (well under one small service time).
    #[test]
    fn short_waits_are_tight() {
        let requested = Duration::from_micros(40);
        let mut overshoot: Vec<Duration> = (0..100)
            .map(|_| {
                let t0 = Instant::now();
                wait_for(requested);
                let elapsed = t0.elapsed();
                assert!(elapsed >= requested, "undershoot: {elapsed:?}");
                elapsed - requested
            })
            .collect();
        overshoot.sort();
        // Median, not max: a preempted spin can lose the CPU for a whole
        // scheduler quantum, but the typical wait must be tight.
        let p50 = overshoot[overshoot.len() / 2];
        assert!(
            p50 < Duration::from_micros(20),
            "median overshoot {p50:?} — OS timer slack is leaking into service times"
        );
    }

    /// Long waits must still mostly sleep — the calibration only spins
    /// the reserve tail, so a 5 ms wait lands close to 5 ms too.
    #[test]
    fn long_waits_complete() {
        let requested = Duration::from_millis(5);
        let t0 = Instant::now();
        wait_for(requested);
        let elapsed = t0.elapsed();
        assert!(elapsed >= requested);
        assert!(
            elapsed < requested + Duration::from_millis(20),
            "{elapsed:?}"
        );
    }

    #[test]
    fn past_deadlines_return_immediately() {
        let t0 = Instant::now();
        wait_until(t0); // already passed by the time wait_until reads the clock
        assert!(t0.elapsed() < Duration::from_millis(5));
    }
}
