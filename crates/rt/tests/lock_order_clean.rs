//! Clean-run check for the debug lock-order detector: a live `RtCluster`
//! smoke scenario (router + workers + client fetches + shutdown) must
//! complete without tripping a lock-order panic. Because the detector is
//! global and always-on in debug builds, *every* `brb-rt` test doubles
//! as a deadlock check — this one pins the representative end-to-end
//! path so a future locking change can't regress it silently.

use brb_rt::{RtCluster, RtClusterConfig, WorkModel};
use brb_sched::PolicyKind;

#[test]
fn rt_cluster_smoke_is_lock_order_clean() {
    let cluster = RtCluster::start(RtClusterConfig {
        num_servers: 3,
        workers_per_server: 2,
        replication: 2,
        policy: PolicyKind::UnifIncr,
        work: WorkModel::Instant,
        ..Default::default()
    });
    cluster.populate(1_000, |k| (k % 64) + 1);
    let client = cluster.client();
    for batch in 0..20u64 {
        let keys: Vec<u64> = (0..8).map(|i| (batch * 37 + i * 11) % 1_000).collect();
        let resp = client.fetch(&keys);
        assert_eq!(resp.values.len(), keys.len());
    }
    // Under debug_assertions the detector would have panicked on any
    // cyclic acquisition order anywhere in the router/worker/client
    // paths; reaching shutdown means the scenario is lock-order clean.
    cluster
        .shutdown_checked()
        .expect("no rt thread may panic during the smoke scenario");
}

/// Shutdown-storm regression for the stop-flag lost wakeup: `stop` is
/// the one worker-wait predicate not written under the queue mutex, so
/// the stop/notify sequence must bracket the queue lock or a worker
/// sitting between its `stop` check and the condvar park misses the
/// wake and `shutdown` joins forever (observed on a loaded 1-CPU host).
/// The race is timing-dependent; cycling start → park → shutdown many
/// times keeps the fixed path hot under whatever load the test host has.
#[test]
fn repeated_start_shutdown_never_strands_a_worker() {
    for round in 0..25u64 {
        let cluster = RtCluster::start(RtClusterConfig {
            num_servers: 3,
            workers_per_server: 2,
            replication: 2,
            policy: PolicyKind::UnifIncr,
            work: WorkModel::Instant,
            ..Default::default()
        });
        // Odd rounds shut down an idle cluster (workers parked since
        // startup); even rounds park the workers again after real work.
        if round % 2 == 0 {
            cluster.populate(16, |k| k + 1);
            let client = cluster.client();
            let resp = client.fetch(&[0, 5, 10]);
            assert_eq!(resp.values.len(), 3);
        }
        cluster
            .shutdown_checked()
            .expect("shutdown must terminate every worker");
    }
}
