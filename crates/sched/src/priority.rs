//! The priority type shared by policies, queues and servers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheduling priority. **Lower values serve first.**
///
/// Priorities are forecast costs (nanoseconds) or deadlines, so they are
/// naturally comparable across clients without coordination — a property
/// the decentralized design depends on: two clients that never talk still
/// rank each other's requests consistently.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(pub u64);

impl Priority {
    /// The most urgent priority.
    pub const URGENT: Priority = Priority(0);
    /// The least urgent priority.
    pub const IDLE: Priority = Priority(u64::MAX);

    /// Builds a priority from a forecast cost in nanoseconds.
    pub const fn from_cost_ns(ns: u64) -> Self {
        Priority(ns)
    }

    /// Builds a priority from an absolute deadline in nanoseconds.
    pub const fn from_deadline_ns(ns: u64) -> Self {
        Priority(ns)
    }

    /// The raw ordering key.
    pub const fn key(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Priority({})", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_is_more_urgent() {
        assert!(Priority::from_cost_ns(100) < Priority::from_cost_ns(200));
        assert!(Priority::URGENT < Priority::IDLE);
    }

    #[test]
    fn round_trips_key() {
        assert_eq!(Priority::from_cost_ns(42).key(), 42);
        assert_eq!(Priority::from_deadline_ns(7).key(), 7);
    }
}
