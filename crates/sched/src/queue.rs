//! Server-side queue disciplines.
//!
//! Each server owns one request queue per the paper's credits realization
//! ("each server maintains a separate priority-queue"); the C3 baseline
//! uses FIFO. Both disciplines share one trait so the server model is
//! generic over them. The priority queue is *stable*: among equal
//! priorities it serves in insertion order, which keeps simulations
//! deterministic and avoids starvation-by-tie.

use crate::priority::Priority;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A queue of prioritized items.
pub trait RequestQueue<T> {
    /// Enqueues `item` with `priority`.
    fn push(&mut self, priority: Priority, item: T);

    /// Dequeues the next item to serve.
    fn pop(&mut self) -> Option<(Priority, T)>;

    /// The priority the next `pop` would return.
    fn peek_priority(&self) -> Option<Priority>;

    /// Queued item count.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// First-in, first-out; ignores priorities (task-oblivious servers).
#[derive(Debug, Clone, Default)]
pub struct FifoQueue<T> {
    items: VecDeque<(Priority, T)>,
}

impl<T> FifoQueue<T> {
    /// Creates an empty FIFO queue.
    pub fn new() -> Self {
        FifoQueue {
            items: VecDeque::new(),
        }
    }
}

impl<T> RequestQueue<T> for FifoQueue<T> {
    fn push(&mut self, priority: Priority, item: T) {
        self.items.push_back((priority, item));
    }

    fn pop(&mut self) -> Option<(Priority, T)> {
        self.items.pop_front()
    }

    fn peek_priority(&self) -> Option<Priority> {
        self.items.front().map(|(p, _)| *p)
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

struct Entry<T> {
    priority: Priority,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    /// Reversed so `BinaryHeap` (max-heap) pops the lowest priority value;
    /// FIFO tie-break on the insertion sequence.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .priority
            .cmp(&self.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Stable min-priority queue: pops the lowest priority value first, FIFO
/// among ties.
#[derive(Default)]
pub struct PriorityQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> PriorityQueue<T> {
    /// Creates an empty priority queue.
    pub fn new() -> Self {
        PriorityQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` items — hot-path
    /// queues (client hold queues, server queues) are built once per run
    /// and should never reallocate in steady state.
    pub fn with_capacity(cap: usize) -> Self {
        PriorityQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Borrows the item the next `pop` would return.
    pub fn peek_item(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.item)
    }

    /// Drops all items, keeping the allocation *and* the sequence
    /// counter (so FIFO tie-breaking stays globally consistent across
    /// reuse).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Removes every item for which `keep` returns `false`, preserving
    /// the priority/FIFO order of the survivors (their sequence numbers
    /// are untouched). Returns how many items were removed — callers
    /// that mirror the queue length (the live router's atomic counter)
    /// need the exact count. O(n); used by cold paths only (duplicate
    /// cancellation), never per-request.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) -> usize {
        let before = self.heap.len();
        self.heap.retain(|e| keep(&e.item));
        before - self.heap.len()
    }
}

impl<T> std::fmt::Debug for PriorityQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PriorityQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<T> RequestQueue<T> for PriorityQueue<T> {
    fn push(&mut self, priority: Priority, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            priority,
            seq,
            item,
        });
    }

    fn pop(&mut self) -> Option<(Priority, T)> {
        self.heap.pop().map(|e| (e.priority, e.item))
    }

    fn peek_priority(&self) -> Option<Priority> {
        self.heap.peek().map(|e| e.priority)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ignores_priority() {
        let mut q = FifoQueue::new();
        q.push(Priority(9), "first");
        q.push(Priority(1), "second");
        assert_eq!(q.peek_priority(), Some(Priority(9)));
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn priority_queue_orders_by_priority() {
        let mut q = PriorityQueue::new();
        q.push(Priority(30), "c");
        q.push(Priority(10), "a");
        q.push(Priority(20), "b");
        assert_eq!(q.peek_priority(), Some(Priority(10)));
        assert_eq!(q.pop().unwrap(), (Priority(10), "a"));
        assert_eq!(q.pop().unwrap(), (Priority(20), "b"));
        assert_eq!(q.pop().unwrap(), (Priority(30), "c"));
    }

    #[test]
    fn priority_queue_is_fifo_stable_on_ties() {
        let mut q = PriorityQueue::new();
        for i in 0..100 {
            q.push(Priority(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap(), (Priority(7), i));
        }
    }

    #[test]
    fn interleaved_ties_and_urgencies() {
        let mut q = PriorityQueue::new();
        q.push(Priority(5), "a5");
        q.push(Priority(5), "b5");
        q.push(Priority(1), "c1");
        assert_eq!(q.pop().unwrap().1, "c1");
        q.push(Priority(5), "d5");
        q.push(Priority(0), "e0");
        assert_eq!(q.pop().unwrap().1, "e0");
        assert_eq!(q.pop().unwrap().1, "a5");
        assert_eq!(q.pop().unwrap().1, "b5");
        assert_eq!(q.pop().unwrap().1, "d5");
        assert!(q.is_empty());
    }

    #[test]
    fn clear_keeps_capacity_and_seq_counter() {
        let mut q = PriorityQueue::with_capacity(8);
        q.push(Priority(5), "before-a");
        q.push(Priority(5), "before-b");
        q.clear();
        assert!(q.is_empty());
        // Ties pushed after a clear still pop after re-pushed earlier
        // items would have — the seq counter must survive the clear.
        q.push(Priority(5), "after-a");
        q.push(Priority(5), "after-b");
        assert_eq!(q.pop().unwrap().1, "after-a");
        assert_eq!(q.pop().unwrap().1, "after-b");
    }

    #[test]
    fn retain_removes_and_keeps_stable_order() {
        let mut q = PriorityQueue::new();
        q.push(Priority(5), "a5");
        q.push(Priority(5), "b5");
        q.push(Priority(1), "c1");
        q.push(Priority(5), "d5");
        // Remove one tie from the middle; survivors keep priority order
        // and FIFO stability among remaining ties.
        assert_eq!(q.retain(|item| *item != "b5"), 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "c1");
        assert_eq!(q.pop().unwrap().1, "a5");
        assert_eq!(q.pop().unwrap().1, "d5");
        // Retaining nothing reports the full count.
        q.push(Priority(2), "x");
        q.push(Priority(3), "y");
        assert_eq!(q.retain(|_| false), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_both_disciplines() {
        let mut f: FifoQueue<u32> = FifoQueue::new();
        let mut p: PriorityQueue<u32> = PriorityQueue::new();
        for q in [&mut f as &mut dyn RequestQueue<u32>, &mut p] {
            assert!(q.is_empty());
            q.push(Priority(1), 1);
            q.push(Priority(2), 2);
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
        }
    }
}
